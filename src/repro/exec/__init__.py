"""Real-process execution tier: transport-agnostic worker RPC.

The tiers below this package simulate parallelism with per-worker busy
clocks inside one process.  This package makes the worker boundary
real: :class:`~repro.exec.router.ExecRouter` speaks a small RPC surface
(:class:`~repro.exec.transport.WorkerTransport`) to its shard workers
and does not care who answers —

* :class:`~repro.exec.simulated.SimulatedBackend` runs the workers
  in-process over shared state (deterministic; the test oracle), while
* :class:`~repro.exec.mp.MultiprocessBackend` runs each worker in its
  own OS process with the read-mostly blocks in
  ``multiprocessing.shared_memory`` and only deltas/queries on the
  pipe.

Both backends drive identical :class:`ShardWorker` numerics, so their
outputs agree bit for bit; the real backend adds what the simulation
cannot — true wall-clock overlap, crash surfaces, and wire costs.
"""

from repro.exec.mp import MultiprocessBackend, ProcessTransport
from repro.exec.router import ExecCounters, ExecRouter, ExecStats
from repro.exec.service import Substrate, WorkerService
from repro.exec.shm import ArraySpec, map_array, share_array, \
    snapshot_from_shared
from repro.exec.simulated import LocalTransport, SimulatedBackend
from repro.exec.transport import TransportStats, WorkerBoot, \
    WorkerStats, WorkerTransport

__all__ = [
    "ArraySpec",
    "ExecCounters",
    "ExecRouter",
    "ExecStats",
    "LocalTransport",
    "MultiprocessBackend",
    "ProcessTransport",
    "SimulatedBackend",
    "Substrate",
    "TransportStats",
    "WorkerBoot",
    "WorkerService",
    "WorkerStats",
    "WorkerTransport",
    "map_array",
    "share_array",
    "snapshot_from_shared",
]
