"""Real-process execution tier: transport-agnostic worker RPC.

The tiers below this package simulate parallelism with per-worker busy
clocks inside one process.  This package makes the worker boundary
real: :class:`~repro.exec.router.ExecRouter` speaks a small RPC surface
(:class:`~repro.exec.transport.WorkerTransport`) to its shard workers
and does not care who answers —

* :class:`~repro.exec.simulated.SimulatedBackend` runs the workers
  in-process over shared state (deterministic; the test oracle), while
* :class:`~repro.exec.mp.MultiprocessBackend` runs each worker in its
  own OS process with the read-mostly blocks in
  ``multiprocessing.shared_memory`` and only deltas/queries on the
  pipe.

Both backends drive identical :class:`ShardWorker` numerics, so their
outputs agree bit for bit; the real backend adds what the simulation
cannot — true wall-clock overlap, crash surfaces, and wire costs.

On top of the transports sits the resilience layer:
:class:`~repro.exec.channel.ShardChannel` replicates each shard,
retries idempotent reads with backoff, sequences mutating writes for
exactly-once application, trips per-replica circuit breakers and fails
reads over to live replicas; :class:`~repro.exec.faults.FaultPlan`
injects deterministic, seeded wire faults (drops, delays, duplicates,
crashes, detectable corruption) underneath any transport for chaos
testing.
"""

from repro.exec.channel import CircuitBreaker, IDEMPOTENT_VERBS, \
    MUTATING_VERBS, RetryPolicy, ShardChannel
from repro.exec.faults import FAULT_KINDS, FaultPlan, FaultSpec, \
    FaultyTransport
from repro.exec.mp import MultiprocessBackend, ProcessTransport
from repro.exec.router import ExecCounters, ExecRouter, ExecStats
from repro.exec.service import Substrate, WorkerService
from repro.exec.shm import ArraySpec, map_array, share_array, \
    snapshot_from_shared
from repro.exec.simulated import LocalTransport, SimulatedBackend
from repro.exec.transport import TransportStats, WorkerBoot, \
    WorkerStats, WorkerTransport

__all__ = [
    "ArraySpec",
    "CircuitBreaker",
    "ExecCounters",
    "ExecRouter",
    "ExecStats",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "FaultyTransport",
    "IDEMPOTENT_VERBS",
    "LocalTransport",
    "MUTATING_VERBS",
    "MultiprocessBackend",
    "ProcessTransport",
    "RetryPolicy",
    "ShardChannel",
    "SimulatedBackend",
    "Substrate",
    "TransportStats",
    "WorkerBoot",
    "WorkerService",
    "WorkerStats",
    "WorkerTransport",
    "map_array",
    "share_array",
    "snapshot_from_shared",
]
