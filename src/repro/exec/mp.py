"""The real backend: one OS process per shard worker.

:class:`MultiprocessBackend` spawns each shard worker into its own
process (fork start method).  The read-mostly blocks — canonical edge
list, edge values, degree features, inverse-degree vector, and the
worker's embedding block — live in ``multiprocessing.shared_memory``
segments mapped once at spawn; the pipe carries only GD deltas, row
sets, scores, and control messages.  The worker binds its engine's
output layer directly onto the shared embedding block, so the router
reads served rows with a memcpy instead of an RPC round-trip.

Failure surface (the part the simulated backend cannot have): a broken
pipe or EOF raises :class:`~repro.errors.WorkerDeadError`, a reply that
misses the call timeout kills the worker and raises
:class:`~repro.errors.WorkerTimeoutError`; the router's crash-recovery
path (:meth:`ExecRouter._revive`) handles both.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time

import numpy as np

import repro.errors as errors
from repro.errors import ExecError, ReproError, WorkerDeadError, \
    WorkerTimeoutError
from repro.graph.snapshot import GraphSnapshot
from repro.exec.service import WorkerService
from repro.exec.shm import ArraySpec, map_array, share_array, \
    snapshot_from_shared
from repro.exec.transport import TransportStats, WorkerBoot, WorkerTransport

__all__ = ["ProcessTransport", "MultiprocessBackend"]


def _worker_main(conn, boot: WorkerBoot, manifest: dict) -> None:
    """Worker-process entry: map segments, build the service, serve RPCs."""
    handles = []
    mapped = 0
    views = {}
    for key in ("edges", "values", "features", "dinv"):
        seg, view = map_array(manifest[key])
        handles.append(seg)
        views[key] = view
        mapped += manifest[key].nbytes
    emb_seg, emb_view = map_array(manifest["embeddings"], writeable=True)
    handles.append(emb_seg)
    mapped += manifest["embeddings"].nbytes

    boot.snapshot = snapshot_from_shared(manifest["num_vertices"],
                                         views["edges"], views["values"])
    boot.features = views["features"]
    boot.dinv = views["dinv"]
    service = WorkerService(boot)

    def bind_embeddings() -> None:
        # the engine recomputes in place, so once the output layer IS
        # the shared block every refresh lands in shared memory; state
        # restores may swap the array object, hence the identity check
        cache = service.worker.engine.cache
        z = cache.layer_outputs[-1]
        if z is not emb_view:
            emb_view[...] = z
            cache.layer_outputs[-1] = emb_view

    service.on_embeddings = bind_embeddings
    bind_embeddings()

    conn.send_bytes(pickle.dumps(("ok", ("ready", mapped))))
    try:
        while True:
            # envelope: (method, args) untraced — byte-identical to the
            # pre-tracing wire — (method, args, trace_ctx) when the
            # router carries a trace context, or (method, args,
            # trace_ctx, seq) when the call is sequenced for dedup
            msg = pickle.loads(conn.recv_bytes())
            method, args = msg[0], msg[1]
            ctx = msg[2] if len(msg) > 2 else None
            seq = msg[3] if len(msg) > 3 else None
            if method == "shutdown":
                conn.send_bytes(pickle.dumps(("ok", None)))
                break
            if method == "debug_exit":
                os._exit(17)  # crash simulation: no reply, no cleanup
            try:
                out = service.dispatch(method, args, ctx, seq=seq)
                reply = ("ok", out)
            except Exception as exc:
                reply = ("err", (type(exc).__name__, str(exc)))
            conn.send_bytes(pickle.dumps(reply))
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        del service, views, boot
        for seg in handles:
            seg.close()


def _rebuild_error(name: str, message: str) -> Exception:
    cls = getattr(errors, name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        return cls(message)
    return ExecError(f"worker raised {name}: {message}")


class ProcessTransport(WorkerTransport):
    """RPC over a pipe to one worker process."""

    def __init__(self, shard_id: int, process, conn, emb_view,
                 emb_handle, call_timeout_s: float) -> None:
        self.shard_id = shard_id
        self.process = process
        self.conn = conn
        self.call_timeout_s = call_timeout_s
        self.stats = TransportStats()
        self._pending = False
        self._dead = False
        self._emb_view = emb_view
        self._emb_handle = emb_handle

    # -- wire -------------------------------------------------------------------------
    def submit(self, method: str, *args, seq: int | None = None) -> None:
        if self._pending:
            raise WorkerDeadError(
                f"shard {self.shard_id}: RPC already pending")
        if not self.alive:
            raise WorkerDeadError(
                f"shard {self.shard_id} worker process is dead")
        # tracing off and unsequenced => the wire stays the plain
        # (method, args) 2-tuple: zero envelope overhead on the hot path
        ctx = self._trace_context()
        if seq is not None:
            envelope = (method, args, ctx, seq)
        elif ctx is not None:
            envelope = (method, args, ctx)
        else:
            envelope = (method, args)
        payload = pickle.dumps(envelope)
        t0 = time.perf_counter()
        try:
            self.conn.send_bytes(payload)
        except (BrokenPipeError, OSError) as exc:
            self._dead = True
            raise WorkerDeadError(
                f"shard {self.shard_id}: pipe broke on send") from exc
        self.stats.send_seconds += time.perf_counter() - t0
        self.stats.roundtrips += 1
        self.stats.bytes_sent += len(payload)
        self._pending = True

    def result(self, timeout: float | None = None):
        if not self._pending:
            raise WorkerDeadError(f"shard {self.shard_id}: no RPC pending")
        self._pending = False
        timeout = self.call_timeout_s if timeout is None else timeout
        if not self.conn.poll(timeout):
            # a worker that blew its deadline is indistinguishable from
            # a hung one — kill it so recovery can respawn cleanly
            self._dead = True
            self.process.terminate()
            raise WorkerTimeoutError(
                f"shard {self.shard_id}: no reply within {timeout:.1f}s")
        try:
            raw = self.conn.recv_bytes()
        except (EOFError, OSError) as exc:
            self._dead = True
            raise WorkerDeadError(
                f"shard {self.shard_id}: worker died mid-call") from exc
        self.stats.bytes_received += len(raw)
        status, out = pickle.loads(raw)
        if status == "err":
            raise _rebuild_error(*out)
        return out

    # -- shared-memory fast path -------------------------------------------------------
    def embedding_rows(self, rows: np.ndarray) -> np.ndarray:
        """Read served rows straight from the worker's shared embedding
        block (the worker binds its output layer onto it, and the
        router only reads after the owning refresh RPC completed)."""
        if self._emb_view is not None and not self._pending and self.alive:
            out = self._emb_view[rows].copy()
            self.stats.shm_rows_read += len(rows)
            self.stats.shm_bytes_read += out.nbytes
            return out
        return self.call("embedding_rows", rows)

    # -- liveness ----------------------------------------------------------------------
    def ping(self, timeout: float | None = None) -> bool:
        timeout = 1.0 if timeout is None else timeout
        if not self.alive:
            return False
        try:
            self.submit("ping")
        except WorkerDeadError:
            return False
        try:
            return self.result(timeout=timeout) == "pong"
        except (WorkerDeadError, WorkerTimeoutError):
            return False

    @property
    def alive(self) -> bool:
        return not self._dead and self.process.is_alive()

    def close(self) -> None:
        if self.alive and not self._pending:
            try:
                self.call("shutdown")
            except (WorkerDeadError, WorkerTimeoutError):
                pass
        self.process.join(timeout=1.0)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=1.0)
        self._dead = True
        self.conn.close()
        if self._emb_handle is not None:
            self._emb_handle.close()
            self._emb_handle = None
            self._emb_view = None

    def debug_exit(self) -> None:
        """Hard-kill the worker from inside (``os._exit``): no reply,
        no shutdown handshake — the crash the recovery tests inject."""
        try:
            self.conn.send_bytes(pickle.dumps(("debug_exit", ())))
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=5.0)


class MultiprocessBackend:
    """Spawns one worker process per shard over shared-memory blocks."""

    name = "multiprocess"
    shares_substrate = False  # workers fold deltas into private mirrors

    def __init__(self, *, call_timeout_s: float = 120.0) -> None:
        self.call_timeout_s = call_timeout_s
        self._ctx = multiprocessing.get_context("fork")
        self._segments = []            # every handle this backend created
        self._topology = None          # (snapshot id, manifest fragment)
        self.shm_bytes_mapped = 0      # summed across worker mappings

    def attach(self, snapshot: GraphSnapshot) -> None:
        """No shared substrate: workers mirror the topology privately."""

    def publish(self, snapshot, features, dinv, diff=None) -> None:
        """No-op — deltas reach real workers through apply_delta RPCs."""

    def _topology_manifest(self, boot: WorkerBoot) -> dict:
        """Share the boot snapshot's read-mostly blocks once; sibling
        workers booted from the same resident reuse the segments."""
        if self._topology is not None and \
                self._topology[0] is boot.snapshot:
            return self._topology[1]
        snap = boot.snapshot
        features, dinv = boot.features, boot.dinv
        if features is None:
            from repro.serve.engine import derive_serving_features
            features, dinv = derive_serving_features(snap)
        fragment = {"num_vertices": snap.num_vertices}
        for key, arr in (("edges", snap.edges), ("values", snap.values),
                         ("features", features), ("dinv", dinv)):
            seg, spec = share_array(arr, key)
            self._segments.append(seg)
            fragment[key] = spec
        self._topology = (snap, fragment)
        return fragment

    def spawn(self, boot: WorkerBoot, *, solo: bool = False,
              clock=None) -> ProcessTransport:
        # ``solo`` and ``clock`` are oracle-backend knobs: every real
        # worker is always its own process with its own perf_counter
        manifest = dict(self._topology_manifest(boot))
        n = boot.snapshot.num_vertices
        emb_seg, emb_spec = share_array(
            np.zeros((n, boot.model.embed_dim)), f"emb{boot.shard_id}")
        self._segments.append(emb_seg)
        manifest["embeddings"] = emb_spec

        lite = WorkerBoot(shard_id=boot.shard_id, model=boot.model,
                          snapshot=None, owner=boot.owner,
                          num_shards=boot.num_shards, k_hops=boot.k_hops,
                          link_head=boot.link_head,
                          fraud_head=boot.fraud_head,
                          replica_id=boot.replica_id,
                          kernel_backend=boot.kernel_backend)
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(target=_worker_main,
                                 args=(child_conn, lite, manifest),
                                 daemon=True)
        proc.start()
        child_conn.close()

        emb_handle, emb_view = map_array(emb_spec)
        transport = ProcessTransport(boot.shard_id, proc, parent_conn,
                                     emb_view, emb_handle,
                                     self.call_timeout_s)
        # the ready handshake doubles as the mapping receipt
        transport._pending = True
        status, mapped = transport.result(timeout=60.0)
        if status != "ready":
            raise ExecError(f"shard {boot.shard_id}: bad boot handshake")
        self.shm_bytes_mapped += int(mapped)
        return transport

    def close(self) -> None:
        for seg in self._segments:
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:
                pass
        self._segments.clear()
        self._topology = None
