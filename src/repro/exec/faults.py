"""Deterministic fault injection over any :class:`WorkerTransport`.

A :class:`FaultPlan` is a seeded description of everything that should
go wrong on the wire: background *rates* (each RPC independently draws
drop / delay / duplicate / corrupt outcomes from a per-transport RNG
stream) plus an explicit *schedule* of :class:`FaultSpec` entries that
pin a fault to an exact ``(verb, shard, replica, call_index)``
coordinate — "crash shard 1's primary on its 3rd ``apply_delta``".
``plan.wrap(transport, ...)`` decorates the transport with a
:class:`FaultyTransport` that injects on the submit/result path; the
router, channel and worker underneath are completely unaware.

Determinism is the whole point: the RNG stream is keyed on
``(plan.seed, shard, replica, stream)`` and every call draws the same
number of variates regardless of which faults fire, so a chaos test
replays the exact same storm every run.  That is what lets the
resilience suite assert *bit-exact* scores against a fault-free oracle
rather than merely "it didn't crash".

Fault semantics (all injected on the router side of the wire):

``drop``
    The request is lost in flight: the worker never sees it and
    ``result()`` raises :class:`WorkerTimeoutError`.  The worker stays
    alive — a retry of the same transport can succeed, which is the
    transient-loss case retry logic exists for.
``delay``
    The call sleeps ``delay_s`` before delivery (deadline pressure).
``duplicate``
    The frame arrives twice, same sequence id — the at-least-once wire
    the worker-side dedup cache must make exactly-once.
``crash``
    The worker is hard-killed (``debug_exit``) and ``result()`` raises
    :class:`WorkerDeadError`: the replica-failover case.
``corrupt``
    One *delivery's* payload is damaged in a way the receiver's
    integrity check catches: the delta's ``base_checksum`` is
    perturbed, so :func:`~repro.graph.diff.apply_diff` rejects it
    before touching worker state and the retry (a fresh, pristine
    delivery) is safe.  Only verbs in ``corruptible`` carry a
    checksum-guarded payload; corruption is never injected elsewhere,
    because undetectable damage cannot be recovered from by any
    protocol — that is the store layer's CRC problem, not the RPC
    layer's.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace as dc_replace

import numpy as np

from repro.errors import ConfigError, WorkerDeadError, WorkerTimeoutError
from repro.exec.transport import WorkerTransport

__all__ = ["FaultSpec", "FaultPlan", "FaultyTransport", "FAULT_KINDS"]

FAULT_KINDS = ("drop", "delay", "duplicate", "crash", "corrupt")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.  ``None`` fields match anything; the
    ``call_index`` counts calls of that verb on one transport (0-based),
    so ``FaultSpec("crash", verb="apply_delta", shard=1, call_index=2)``
    kills shard 1 exactly on its third delta."""

    kind: str
    verb: str | None = None
    shard: int | None = None
    replica: int | None = None
    call_index: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(f"unknown fault kind {self.kind!r}")

    def matches(self, verb: str, shard: int | None, replica: int,
                index: int) -> bool:
        return (self.verb is None or self.verb == verb) and \
            (self.shard is None or self.shard == shard) and \
            (self.replica is None or self.replica == replica) and \
            (self.call_index is None or self.call_index == index)


class FaultPlan:
    """Seeded background fault rates plus an explicit fault schedule.

    One plan is shared by every transport it wraps; per-kind injection
    totals accumulate in :attr:`injected` so tests can assert the storm
    actually stormed."""

    def __init__(self, *, seed: int = 0,
                 schedule: tuple = (),
                 drop_rate: float = 0.0,
                 delay_rate: float = 0.0,
                 delay_s: float = 0.0005,
                 duplicate_rate: float = 0.0,
                 corrupt_rate: float = 0.0,
                 verbs: frozenset | set | tuple | None = None,
                 corruptible: tuple = ("apply_delta",),
                 immune: tuple = ("shutdown", "adopt_state"),
                 max_faults: int | None = None) -> None:
        for name, rate in (("drop_rate", drop_rate),
                           ("delay_rate", delay_rate),
                           ("duplicate_rate", duplicate_rate),
                           ("corrupt_rate", corrupt_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1]")
        self.seed = seed
        self.schedule = tuple(schedule)
        self.drop_rate = drop_rate
        self.delay_rate = delay_rate
        self.delay_s = delay_s
        self.duplicate_rate = duplicate_rate
        self.corrupt_rate = corrupt_rate
        # rate faults apply only to these verbs (None = every verb not
        # in ``immune``); scheduled faults match regardless
        self.verbs = None if verbs is None else frozenset(verbs)
        self.corruptible = frozenset(corruptible)
        self.immune = frozenset(immune)
        self.max_faults = max_faults
        self.injected: dict[str, int] = {k: 0 for k in FAULT_KINDS}

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def wrap(self, transport: WorkerTransport, *, shard: int | None = None,
             replica: int = 0, stream: int = 0) -> "FaultyTransport":
        """Decorate ``transport``; ``stream`` disambiguates successive
        incarnations (revivals) so each gets a fresh RNG stream."""
        return FaultyTransport(transport, self, shard=shard,
                               replica=replica, stream=stream)

    def _count(self, kind: str) -> None:
        self.injected[kind] += 1

    def _exhausted(self) -> bool:
        return self.max_faults is not None and \
            self.total_injected >= self.max_faults

    def decide(self, rng: np.random.Generator, verb: str,
               shard: int | None, replica: int, index: int) -> set[str]:
        """The fault kinds this call suffers.  All four rate variates
        are drawn on *every* call — fired or not, matched or not — so
        the RNG stream position depends only on the call sequence."""
        u = rng.random(4)
        kinds: set[str] = set()
        for spec in self.schedule:
            if spec.matches(verb, shard, replica, index):
                kinds.add(spec.kind)
        if verb not in self.immune and \
                (self.verbs is None or verb in self.verbs):
            if u[0] < self.drop_rate:
                kinds.add("drop")
            if u[1] < self.delay_rate:
                kinds.add("delay")
            if u[2] < self.duplicate_rate:
                kinds.add("duplicate")
            if u[3] < self.corrupt_rate and verb in self.corruptible:
                kinds.add("corrupt")
        if kinds and self._exhausted():
            return set()
        return kinds


def _corrupt_args(args: tuple) -> tuple:
    """Damage the first checksum-guarded payload in ``args`` the way a
    flipped wire bit would: the delta's ``base_checksum`` no longer
    matches the topology it claims to extend, so the receiver's
    :func:`apply_diff` rejects the delivery outright."""
    out = list(args)
    for i, obj in enumerate(out):
        checksum = getattr(obj, "base_checksum", None)
        if checksum is not None:
            out[i] = dc_replace(obj, base_checksum=int(checksum) ^ 0x5A5A)
            return tuple(out)
    return tuple(out)


class FaultyTransport(WorkerTransport):
    """A transport decorator that injects the plan's faults.

    Liveness, stats and tracing delegate to the inner transport;
    only ``submit``/``result`` (and everything routed through them,
    including ``embedding_rows`` — the shared-memory fast path is
    deliberately bypassed so reads are injectable too) see faults.
    """

    def __init__(self, inner: WorkerTransport, plan: FaultPlan, *,
                 shard: int | None = None, replica: int = 0,
                 stream: int = 0) -> None:
        self.inner = inner
        self.plan = plan
        self.shard_id = inner.shard_id
        self.shard = inner.shard_id if shard is None else shard
        self.replica = replica
        self._rng = np.random.default_rng(
            [plan.seed, self.shard, replica, stream])
        self._verb_index: dict[str, int] = {}
        self._sabotage: str | None = None  # parked drop/crash outcome

    # -- delegation -------------------------------------------------------------------
    @property
    def stats(self):
        return self.inner.stats

    @property
    def tracer(self):
        return self.inner.tracer

    @tracer.setter
    def tracer(self, value) -> None:
        self.inner.tracer = value

    @property
    def alive(self) -> bool:
        return self.inner.alive

    def ping(self, timeout: float | None = None) -> bool:
        return self.inner.ping(timeout=timeout)

    def close(self) -> None:
        self.inner.close()

    def debug_exit(self) -> None:
        self.inner.debug_exit()

    # -- injected wire ----------------------------------------------------------------
    def submit(self, method: str, *args, seq: int | None = None) -> None:
        if self._sabotage is not None:
            raise WorkerDeadError(
                f"shard {self.shard_id}: RPC already pending")
        index = self._verb_index.get(method, 0)
        self._verb_index[method] = index + 1
        kinds = self.plan.decide(self._rng, method, self.shard,
                                 self.replica, index)
        if "crash" in kinds:
            self.plan._count("crash")
            self.inner.debug_exit()
            self._sabotage = "crash"
            return
        if "delay" in kinds:
            self.plan._count("delay")
            time.sleep(self.plan.delay_s)
        if "drop" in kinds:
            self.plan._count("drop")
            self._sabotage = "drop"
            return
        send_args = args
        if "corrupt" in kinds:
            self.plan._count("corrupt")
            send_args = _corrupt_args(args)
        if "duplicate" in kinds:
            self.plan._count("duplicate")
            # the first copy completes a full round-trip before the
            # "real" one posts — same seq, so the worker's dedup cache
            # must answer the second from its reply log.  Errors from
            # the duplicated delivery surface through the second copy.
            try:
                self.inner.call(method, *send_args, seq=seq)
            except Exception:
                pass
        self.inner.submit(method, *send_args, seq=seq)

    def result(self):
        if self._sabotage == "drop":
            self._sabotage = None
            raise WorkerTimeoutError(
                f"shard {self.shard_id}: reply dropped by fault plan")
        if self._sabotage == "crash":
            self._sabotage = None
            raise WorkerDeadError(
                f"shard {self.shard_id}: worker crashed by fault plan")
        return self.inner.result()
