"""Worker-side RPC dispatch: one :class:`ShardWorker` behind a mailbox.

A :class:`WorkerService` is the half of the execution tier that lives
*with* the worker — in-process for the simulated backend, inside the
spawned process for the multiprocessing backend.  It owns the worker's
resident topology mirror and resolves each RPC's graph arguments:

* with a :class:`Substrate` (simulated backend), the snapshot /
  features / dinv are the router-published shared objects — zero-copy,
  exactly today's in-process sharded tier;
* without one (real worker), each ``apply_delta`` / rebase folds the GD
  delta into the local mirror with :func:`~repro.graph.diff.apply_diff`
  (checksum-verified, bit-exact) and re-derives the degree features
  locally — the fold is genuine worker work and is charged to the
  worker's busy clock.

Both paths drive the *same* :class:`ShardWorker` numerics, which is the
oracle-vs-real parity guarantee: the only difference between backends
is who materializes the snapshot, and :func:`apply_diff` reconstructs
it exactly.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable

import numpy as np

from repro.errors import ExecError
from repro.graph.diff import apply_diff
from repro.graph.snapshot import GraphSnapshot
from repro.obs import Telemetry
from repro.serve.engine import derive_serving_features
from repro.serve.sharded.worker import ShardWorker
from repro.exec.transport import WorkerBoot, WorkerStats, payload_nbytes

__all__ = ["Substrate", "WorkerService"]


class Substrate:
    """Router-published shared simulation substrate (simulated backend).

    Holds the one resident snapshot + derived features every in-process
    worker reads — the memory-sharing fiction the simulated tier has
    always used, made explicit so the RPC layer can swap it out."""

    def __init__(self, snapshot: GraphSnapshot) -> None:
        self.snapshot = snapshot
        self.features, self.dinv = derive_serving_features(snapshot)

    def publish(self, snapshot: GraphSnapshot, features: np.ndarray,
                dinv: np.ndarray) -> None:
        self.snapshot = snapshot
        self.features = features
        self.dinv = dinv


class WorkerService:
    """Hosts one shard worker and dispatches RPCs onto it."""

    def __init__(self, boot: WorkerBoot, *, substrate: Substrate | None = None,
                 maintainer=None,
                 clock: Callable[[], float] = time.perf_counter,
                 on_embeddings: Callable[[], None] | None = None,
                 telemetry: Telemetry | None = None) -> None:
        self.boot = boot
        self.substrate = substrate
        self.owner = np.asarray(boot.owner, dtype=np.int64)
        self.shard_id = boot.shard_id
        # the worker's own telemetry: its registry is harvested (and
        # its finished spans shipped) through the `telemetry` RPC verb;
        # node/source name this worker in span ids / harvest envelopes
        # replicas of one shard need distinct telemetry sources, or the
        # router's harvest dedup (keyed on source+seq) would collide
        name = f"worker{boot.shard_id}" if boot.replica_id == 0 else \
            f"worker{boot.shard_id}r{boot.replica_id}"
        self.telemetry = telemetry if telemetry is not None else \
            Telemetry(node=name, source=name)
        # per-verb RPC accounting (cheap load signal, see rpc_stats)
        self.rpc_calls: dict[str, int] = {}
        self.rpc_payload_bytes: dict[str, int] = {}
        # exactly-once dedup for sequenced (mutating) verbs: recently
        # applied call ids map to their cached replies, so an
        # at-least-once redelivery answers from here instead of
        # re-executing.  Retries are immediate and per-shard call ids
        # are monotonic, so a small window is plenty.
        self._applied: OrderedDict[int, object] = OrderedDict()
        self._dedup_window = 32
        self.rpc_deduped = 0
        # the local resident mirror (real-worker path); the substrate
        # path reads the shared snapshot instead and never touches these
        self.resident = boot.snapshot
        if boot.features is not None:
            self._features, self._dinv = boot.features, boot.dinv
        else:
            self._features, self._dinv = derive_serving_features(
                boot.snapshot)
        self.worker = ShardWorker(
            boot.shard_id, 0, boot.model, boot.snapshot, boot.block,
            link_head=boot.link_head, fraud_head=boot.fraud_head,
            k_hops=boot.k_hops, features=self._features, dinv=self._dinv,
            maintainer=maintainer, kernel_backend=boot.kernel_backend,
            clock=clock)
        # backend hook run after every op that (re)writes embeddings —
        # the mp backend uses it to keep the shared-memory embedding
        # block bound to the engine's output array
        self.on_embeddings = on_embeddings or (lambda: None)
        self.on_embeddings()

    # -- graph-argument resolution ----------------------------------------------------
    def _fold(self, diff) -> None:
        """Advance the local mirror by one GD delta (exact), re-deriving
        degree features; charged to the worker's busy clock — a real
        worker pays this fold, the substrate fiction never did."""
        t0 = self.worker.clock()
        self.resident = apply_diff(self.resident, diff)
        self._features, self._dinv = derive_serving_features(self.resident)
        self.worker.busy_s += self.worker.clock() - t0

    def _resolved(self) -> tuple:
        if self.substrate is not None:
            sub = self.substrate
            return sub.snapshot, sub.features, sub.dinv
        return self.resident, self._features, self._dinv

    # -- RPC surface (dispatch targets) -----------------------------------------------
    def dispatch(self, method: str, args: tuple, ctx: tuple | None = None,
                 seq: int | None = None):
        """Serve one RPC.  ``ctx`` is the caller's trace context (a
        ``(trace_id, span_id)`` envelope); when present the handler
        runs under a ``worker.rpc`` > ``worker.<method>`` span pair
        parented beneath the router's ``exec.rpc`` span, and the
        finished spans ship back on the next telemetry drain.

        ``seq`` is the router's per-shard monotonic call id for
        mutating verbs.  A redelivered id (retry of a call whose reply
        was lost, or a duplicated wire frame) answers from the reply
        cache without touching worker state — at-least-once delivery
        plus this dedup is the tier's exactly-once application story.
        Only *successful* calls record their id: a failed apply leaves
        no state change, so the retry must genuinely re-execute."""
        handler = getattr(self, f"rpc_{method}", None)
        if handler is None:
            raise ExecError(f"unknown RPC method {method!r}")
        self.rpc_calls[method] = self.rpc_calls.get(method, 0) + 1
        self.rpc_payload_bytes[method] = \
            self.rpc_payload_bytes.get(method, 0) + payload_nbytes(args)
        if seq is not None and seq in self._applied:
            self.rpc_deduped += 1
            return self._applied[seq]
        if ctx is None:
            out = handler(*args)
        else:
            tracer = self.telemetry.tracer
            was_enabled = tracer.enabled
            tracer.enabled = True  # the caller traces, so this worker does
            try:
                with tracer.trace("worker.rpc", parent=ctx, method=method,
                                  shard=self.shard_id):
                    with tracer.trace(f"worker.{method}"):
                        out = handler(*args)
            finally:
                tracer.enabled = was_enabled
        if seq is not None:
            self._applied[seq] = out
            while len(self._applied) > self._dedup_window:
                self._applied.popitem(last=False)
        return out

    def rpc_begin_advance(self, snapshot, diff) -> None:
        if self.substrate is None:
            if diff is not None:
                self._fold(diff)
            elif snapshot is not None:
                t0 = self.worker.clock()
                self.resident = snapshot
                self._features, self._dinv = derive_serving_features(
                    snapshot)
                self.worker.busy_s += self.worker.clock() - t0
        snap, features, dinv = self._resolved()
        self.worker.begin_advance(snap, features, dinv, diff=diff)

    def rpc_finish_advance(self) -> int:
        advanced = self.worker.finish_advance()
        self.on_embeddings()
        return advanced

    def rpc_apply_delta(self, diff, dirty) -> tuple:
        if self.substrate is None:
            self._fold(diff)
        snap, features, dinv = self._resolved()
        entrants = self.worker.apply_delta(snap, features, dinv, dirty,
                                           diff=diff)
        covered = self.worker.engine.restrict_to_coverage(dirty)
        ghost_dirty = int((self.owner[covered] != self.shard_id).sum())
        return entrants, ghost_dirty

    def rpc_refresh(self) -> int:
        recomputed = self.worker.refresh()
        self.on_embeddings()
        return recomputed

    def rpc_embedding_rows(self, rows) -> np.ndarray:
        return self.worker.embedding_rows(rows)

    def rpc_score(self, link_pairs, link_dst_rows, fraud_accounts) -> tuple:
        return self.worker.score(link_pairs, link_dst_rows, fraud_accounts)

    def rpc_halo_rows(self) -> np.ndarray:
        return self.worker.engine.halo

    def rpc_export_temporal(self, rows) -> list:
        return self.worker.engine.export_temporal(rows)

    def rpc_import_temporal(self, rows, payload) -> int:
        return self.worker.engine.import_temporal(rows, payload)

    def rpc_export_state(self) -> tuple:
        engine = self.worker.engine
        block = self.worker.engine.block
        return (engine.export_state_rows(block),
                np.array(engine.cache.dirty, copy=True),
                int(engine.steps))

    def rpc_adopt_state(self, exports, steps, dirty) -> None:
        engine = self.worker.engine
        engine.adopt_state(exports, steps)
        if len(dirty):
            engine.cache.mark_dirty(engine.restrict_to_coverage(dirty))
        self.on_embeddings()

    def rpc_stats(self) -> WorkerStats:
        w = self.worker
        return WorkerStats(busy_s=w.busy_s,
                           rows_recomputed=w.rows_recomputed,
                           rows_advanced=w.rows_advanced,
                           queries_scored=w.queries_scored,
                           deltas_applied=w.deltas_applied,
                           coverage_rows=len(w.engine.coverage),
                           rpc_calls=dict(self.rpc_calls),
                           rpc_payload_bytes=dict(self.rpc_payload_bytes))

    def _sync_worker_metrics(self) -> None:
        """Fold the authoritative plain counters into the worker's own
        registry (export-time sync, same discipline as the serving
        tiers — nothing double-counts on a hot path)."""
        reg = self.telemetry.registry
        w = self.worker
        reg.gauge("worker_busy_seconds",
                  "Worker busy clock (perf_counter inside the "
                  "process)").set(w.busy_s)
        reg.counter("worker_rows_recomputed_total").set_to(
            w.rows_recomputed)
        reg.counter("worker_rows_advanced_total").set_to(w.rows_advanced)
        reg.counter("worker_queries_scored_total").set_to(
            w.queries_scored)
        reg.counter("worker_deltas_applied_total").set_to(
            w.deltas_applied)
        reg.gauge("worker_coverage_rows",
                  "Rows this worker covers (owned + halo)").set(
            len(w.engine.coverage))
        reg.counter("worker_rpc_deduped_total",
                    "Sequenced RPCs answered from the reply cache "
                    "(duplicate call ids)").set_to(self.rpc_deduped)
        for verb in sorted(self.rpc_calls):
            reg.counter("worker_rpc_calls_total",
                        "RPCs served, by verb",
                        verb=verb).set_to(self.rpc_calls[verb])
            reg.counter("worker_rpc_payload_bytes_total",
                        "Request payload bytes served, by verb",
                        verb=verb).set_to(
                self.rpc_payload_bytes.get(verb, 0))

    def rpc_telemetry(self) -> tuple:
        """Drain this worker's telemetry: a delta-encoded registry
        harvest plus the finished span trees (wire form).  The current
        `telemetry` call is already counted in ``rpc_calls`` (dispatch
        increments before the handler runs), so consecutive harvests
        stay consistent on both backends."""
        self._sync_worker_metrics()
        return (self.telemetry.registry.harvest(),
                self.telemetry.tracer.drain_finished())

    def rpc_ping(self) -> str:
        return "pong"

    def rpc_debug_sleep(self, seconds: float) -> None:
        time.sleep(seconds)
