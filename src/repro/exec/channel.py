"""Replicated, retrying shard channel: the resilience half of the RPC.

A :class:`ShardChannel` owns every replica transport of one shard and
presents the same ``submit``/``result``/``call`` surface a single
:class:`~repro.exec.transport.WorkerTransport` does, so the router's
pipelined fan-out code is unchanged.  Underneath it implements the
tier's delivery contract:

* **verb classes** — :data:`IDEMPOTENT_VERBS` are pure reads (safe to
  re-execute anywhere); :data:`MUTATING_VERBS` change worker state and
  are *sequenced*: the channel stamps each with a per-shard monotonic
  call id and the worker's dedup cache answers redeliveries from its
  reply log, turning at-least-once wire delivery into exactly-once
  application.
* **retry with backoff** — a failed idempotent call retries against
  any live replica under a :class:`RetryPolicy` (deadline-bounded
  exponential backoff with deterministic jitter).  A failed *sequenced*
  call retries against the same replica with the same id while that
  replica lives; a replica that cannot be made to apply a committed
  write is dropped from the set (it has missed history and can never
  serve reads again).
* **failover** — reads target the current primary; a dead or
  breaker-tripped primary fails over to the first live, admitted
  replica and that replica *becomes* the primary.  Replicas converge
  through the same sequenced delta stream, so failover is bit-exact.
* **circuit breaker** — per replica, consecutive failures past a
  threshold open the breaker: the replica is skipped (fail-fast)
  until a cooldown elapses, then one half-open probe either closes it
  or re-arms the cooldown.

The channel raises :class:`WorkerDeadError` only when *no* replica can
serve — the signal the router's degraded mode keys on.  Every retry,
timeout, failover, breaker trip and replica death is reported through
``on_event`` so the router can count them into the telemetry registry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError, ExecError, StoreError, \
    WorkerDeadError, WorkerTimeoutError
from repro.exec.transport import WorkerTransport

__all__ = ["IDEMPOTENT_VERBS", "MUTATING_VERBS", "RetryPolicy",
           "CircuitBreaker", "ShardChannel"]

# pure reads: re-executing on any replica returns the same answer
IDEMPOTENT_VERBS = frozenset({
    "refresh", "embedding_rows", "score", "ping", "halo_rows",
    "export_temporal", "export_state", "stats", "telemetry",
    "debug_sleep"})

# state-changing verbs: sequenced for exactly-once application
MUTATING_VERBS = frozenset({
    "apply_delta", "begin_advance", "finish_advance", "import_temporal",
    "adopt_state"})

# transport failures are always retryable; DatasetError / StoreError
# from a *sequenced* delivery mean the payload failed its integrity
# check before touching state (e.g. a corrupted delta's base checksum),
# so a pristine redelivery is safe and worth attempting
RETRYABLE = (WorkerDeadError, WorkerTimeoutError, DatasetError,
             StoreError)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds on how hard one logical call may try."""

    max_attempts: int = 4          # total deliveries per logical call
    base_backoff_s: float = 0.002  # first retry's nominal sleep
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 0.05
    jitter: float = 0.5            # fraction of the sleep randomized
    deadline_s: float = 5.0        # wall-clock budget per logical call

    def backoff_s(self, attempt: int, rng: np.random.Generator) -> float:
        """Sleep before retry ``attempt`` (1-based): capped exponential
        with deterministic (seeded) jitter to de-correlate replicas."""
        nominal = min(self.max_backoff_s,
                      self.base_backoff_s
                      * self.backoff_multiplier ** (attempt - 1))
        if self.jitter <= 0.0:
            return nominal
        return nominal * (1.0 - self.jitter * rng.random())


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probes.

    ``closed`` admits every call.  ``threshold`` consecutive failures
    trip it ``open``: calls are refused (fail-fast) until
    ``cooldown_s`` elapses, after which one probe is admitted — success
    closes the breaker, failure re-arms the cooldown."""

    def __init__(self, threshold: int = 5, cooldown_s: float = 0.25,
                 clock=time.perf_counter) -> None:
        if threshold < 1:
            raise ExecError("breaker threshold must be >= 1")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.clock = clock
        self.state = "closed"
        self.failures = 0        # consecutive
        self.trips = 0
        self._opened_at: float | None = None

    def allow(self) -> bool:
        if self.state == "closed":
            return True
        return self.clock() - self._opened_at >= self.cooldown_s

    def record_success(self) -> None:
        self.failures = 0
        self.state = "closed"
        self._opened_at = None

    def record_failure(self) -> bool:
        """Count one failure; True iff this one tripped the breaker."""
        self.failures += 1
        if self.state == "open":
            self._opened_at = self.clock()  # failed probe re-arms
            return False
        if self.failures >= self.threshold:
            self.state = "open"
            self._opened_at = self.clock()
            self.trips += 1
            return True
        return False


_WRITE_FAILED = object()  # sentinel: replica permanently lost the write


class ShardChannel:
    """All replicas of one shard behind a transport-shaped surface."""

    def __init__(self, shard_id: int, transports: list, *,
                 policy: RetryPolicy | None = None,
                 breaker_threshold: int = 5,
                 breaker_cooldown_s: float = 0.25,
                 seed: int = 0,
                 clock=time.perf_counter,
                 on_event=None) -> None:
        if not transports:
            raise ExecError(f"shard {shard_id}: channel needs a replica")
        self.shard_id = shard_id
        self.policy = policy if policy is not None else RetryPolicy()
        self.clock = clock
        self.on_event = on_event if on_event is not None \
            else (lambda event, **kw: None)
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown_s = breaker_cooldown_s
        self._rng = np.random.default_rng([seed, shard_id])
        self._seq = 0            # survives replica resets: ids are per
        #                          shard, not per incarnation
        self._primary = 0
        self._pending: tuple | None = None
        self.replicas: list[WorkerTransport] = []
        self.breakers: list[CircuitBreaker] = []
        self._failed: list[bool] = []
        self.reset(transports)

    # -- replica-set management -------------------------------------------------------
    def reset(self, transports: list) -> None:
        """Install a fresh replica set (revival); the sequence counter
        carries over, so a fresh worker's empty dedup cache never
        collides with in-flight ids."""
        self.replicas = list(transports)
        self.breakers = [CircuitBreaker(self._breaker_threshold,
                                        self._breaker_cooldown_s,
                                        self.clock)
                         for _ in self.replicas]
        self._failed = [False] * len(self.replicas)
        self._primary = 0
        self._pending = None

    def _live(self) -> list[int]:
        out = []
        for i, t in enumerate(self.replicas):
            if self._failed[i]:
                continue
            if not t.alive:
                # a death observed via liveness (no failed RPC needed)
                # still counts: mark it so the event fires exactly once
                self._failed[i] = True
                self.on_event("replica_dead", replica=i)
                continue
            out.append(i)
        return out

    @property
    def alive(self) -> bool:
        """True while any replica can still serve this shard."""
        return bool(self._live())

    @property
    def primary(self) -> WorkerTransport:
        """The current read target (the original primary until a
        failover promoted a replica)."""
        return self.replicas[self._primary]

    def _record_success(self, i: int) -> None:
        self.breakers[i].record_success()

    def _record_failure(self, i: int, verb: str, exc: Exception) -> None:
        if isinstance(exc, WorkerTimeoutError):
            self.on_event("timeout", verb=verb, replica=i)
        if self.breakers[i].record_failure():
            self.on_event("breaker_trip", replica=i)
        if not self.replicas[i].alive and not self._failed[i]:
            self._failed[i] = True
            self.on_event("replica_dead", replica=i)

    def _read_target(self) -> int:
        """The replica index reads should hit, promoting on failover;
        raises :class:`WorkerDeadError` when no replica is admissible."""
        live = self._live()
        if not live:
            raise WorkerDeadError(
                f"shard {self.shard_id} has no live replica")
        admitted = [i for i in live if self.breakers[i].allow()]
        if not admitted:
            raise WorkerDeadError(
                f"shard {self.shard_id}: every live replica's circuit "
                f"breaker is open")
        if self._primary in admitted:
            return self._primary
        target = admitted[0]
        self.on_event("failover", from_replica=self._primary,
                      to_replica=target)
        self._primary = target
        return target

    def _sleep_backoff(self, attempt: int) -> None:
        delay = self.policy.backoff_s(attempt, self._rng)
        if delay > 0.0:
            time.sleep(delay)

    # -- transport-shaped surface -----------------------------------------------------
    def submit(self, verb: str, *args) -> None:
        """Post one logical call.  Reads go to the read target; writes
        take a fresh sequence id and fan to *every* live replica (the
        shared delta stream is what keeps replicas convergent)."""
        if self._pending is not None:
            raise ExecError(
                f"shard {self.shard_id}: channel call already pending")
        seq = None
        if verb in MUTATING_VERBS:
            self._seq += 1
            seq = self._seq
            targets = self._live()
            if not targets:
                raise WorkerDeadError(
                    f"shard {self.shard_id} has no live replica")
        else:
            targets = [self._read_target()]
        posted = []
        for i in targets:
            try:
                self.replicas[i].submit(verb, *args, seq=seq)
                posted.append(i)
            except RETRYABLE as exc:
                self._record_failure(i, verb, exc)
        self._pending = (verb, args, seq, targets, posted, self.clock())

    def result(self):
        if self._pending is None:
            raise ExecError(f"shard {self.shard_id}: no call pending")
        verb, args, seq, targets, posted, t0 = self._pending
        self._pending = None
        deadline = t0 + self.policy.deadline_s
        replies: dict[int, object] = {}
        fatal: Exception | None = None
        for i in posted:
            try:
                replies[i] = self.replicas[i].result()
                self._record_success(i)
            except RETRYABLE as exc:
                self._record_failure(i, verb, exc)
            except Exception as exc:
                # a genuine handler error is not the wire's fault: drain
                # every other pending reply, then let it propagate
                fatal = exc
        if fatal is not None:
            raise fatal
        if seq is None:
            if replies:
                return next(iter(replies.values()))
            return self._retry_read(
                verb, lambda t: t.call(verb, *args), deadline, attempts=1)
        # sequenced write: every replica that has not yet applied it
        # either applies on retry or leaves the replica set
        for i in targets:
            if i in replies or self._failed[i]:
                continue
            out = self._retry_write(i, verb, args, seq, deadline)
            if out is not _WRITE_FAILED:
                replies[i] = out
        if not replies:
            raise WorkerDeadError(
                f"shard {self.shard_id}: no replica could apply {verb}")
        return replies[min(replies)]

    def call(self, verb: str, *args):
        self.submit(verb, *args)
        return self.result()

    # -- retry loops ------------------------------------------------------------------
    def _retry_read(self, verb: str, invoke, deadline: float,
                    attempts: int):
        last: Exception | None = None
        while attempts < self.policy.max_attempts \
                and self.clock() < deadline:
            self._sleep_backoff(attempts)
            attempts += 1
            i = self._read_target()  # raises once the shard is down
            self.on_event("retry", verb=verb, replica=i)
            try:
                out = invoke(self.replicas[i])
                self._record_success(i)
                return out
            except RETRYABLE as exc:
                last = exc
                self._record_failure(i, verb, exc)
        raise WorkerDeadError(
            f"shard {self.shard_id}: {verb} failed after {attempts} "
            f"attempts") from last

    def _retry_write(self, i: int, verb: str, args: tuple, seq: int,
                     deadline: float):
        """Redeliver a sequenced write to replica ``i`` (same id — the
        worker's dedup cache absorbs any double application).  A replica
        that cannot be made to apply is marked failed: it has missed
        committed history."""
        attempts = 1
        last: Exception | None = None
        while attempts < self.policy.max_attempts \
                and self.clock() < deadline and self.replicas[i].alive:
            self._sleep_backoff(attempts)
            attempts += 1
            self.on_event("retry", verb=verb, replica=i)
            try:
                out = self.replicas[i].call(verb, *args, seq=seq)
                self._record_success(i)
                return out
            except RETRYABLE as exc:
                last = exc
                self._record_failure(i, verb, exc)
        if not self._failed[i]:
            self._failed[i] = True
            self.on_event("replica_dead", replica=i, verb=verb,
                          reason=str(last) if last is not None else
                          "write retries exhausted")
        return _WRITE_FAILED

    # -- reads with transport fast paths ----------------------------------------------
    def embedding_rows(self, rows: np.ndarray) -> np.ndarray:
        """Served rows from the read target (keeps each transport's
        shared-memory fast path), with read failover on failure."""
        t0 = self.clock()
        i = self._read_target()
        try:
            out = self.replicas[i].embedding_rows(rows)
            self._record_success(i)
            return out
        except RETRYABLE as exc:
            self._record_failure(i, "embedding_rows", exc)
        return self._retry_read("embedding_rows",
                                lambda t: t.embedding_rows(rows),
                                t0 + self.policy.deadline_s, attempts=1)

    def telemetry(self) -> tuple:
        return self.call("telemetry")

    def worker_stats(self):
        return self.call("stats")

    # -- liveness ---------------------------------------------------------------------
    def ping(self, timeout: float | None = None) -> bool:
        """Ping every live replica; True while at least one answers."""
        ok = False
        for i in self._live():
            if self.replicas[i].ping(timeout=timeout):
                self._record_success(i)
                ok = True
            else:
                self._record_failure(
                    i, "ping",
                    WorkerTimeoutError(
                        f"shard {self.shard_id} replica {i}: ping "
                        f"timed out")
                    if self.replicas[i].alive else
                    WorkerDeadError(
                        f"shard {self.shard_id} replica {i} is dead"))
        return ok

    def close(self) -> None:
        for t in self.replicas:
            t.close()
