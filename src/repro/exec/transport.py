"""The transport-agnostic worker RPC boundary.

The sharded tier's router/worker split was designed as a message
protocol (deltas and pre-expanded dirty frontiers in, entrant rows and
scores out) but executed as plain method calls.  This module names that
protocol: a :class:`WorkerTransport` is one shard worker reachable
through ``submit``/``result`` — submit posts an RPC and returns
immediately, result blocks for the reply — so a router can *pipeline* a
fan-out (submit to every shard, then collect) regardless of whether the
worker lives in this process (:mod:`repro.exec.simulated`, the
deterministic oracle) or in its own OS process over pipes and shared
memory (:mod:`repro.exec.mp`).

The RPC surface is deliberately the :class:`ShardWorker` verb set —
``begin_advance`` / ``finish_advance`` / ``apply_delta`` / ``refresh``
/ ``embedding_rows`` / ``score`` / ``import_temporal`` — plus the
state-transplant verbs recovery needs.  Payloads are GD deltas and row
sets, never snapshots: a real worker folds each delta into its own
resident mirror (:func:`~repro.graph.diff.apply_diff` is exact), which
is what keeps the wire O(delta) and the two backends bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ExecError
from repro.graph.snapshot import GraphSnapshot
from repro.models.base import DynamicGNN
from repro.nn.linear import EdgeScorer, Linear

__all__ = ["WorkerBoot", "TransportStats", "WorkerStats",
           "WorkerTransport", "payload_nbytes"]


def payload_nbytes(obj) -> int:
    """Deterministic wire-cost measure of an RPC payload: array bytes
    (``ndarray.nbytes``), recursing through lists/tuples, plus any
    object that knows its own ``payload_nbytes`` (a
    :class:`~repro.graph.diff.SnapshotDiff`).  Scalars and ``None``
    count zero.  Both backends charge payloads through this — *not*
    through pickle length — so byte counters match bit for bit between
    the simulated oracle and real worker processes."""
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (list, tuple)):
        return sum(payload_nbytes(o) for o in obj)
    own = getattr(obj, "payload_nbytes", None)
    if own is not None:
        return int(own)
    return 0


@dataclass
class WorkerBoot:
    """Everything needed to construct one shard worker from scratch.

    Shipped once at spawn time (for the multiprocessing backend the
    array members travel through shared memory, not the pipe).  The
    ``owner`` array doubles as the worker's routing oracle: the block it
    serves is ``flatnonzero(owner == shard_id)`` and ghost-row
    accounting needs the full map.
    """

    shard_id: int
    model: DynamicGNN
    snapshot: GraphSnapshot
    owner: np.ndarray
    num_shards: int
    k_hops: int | None = None
    link_head: EdgeScorer | None = None
    fraud_head: Linear | None = None
    features: np.ndarray | None = None
    dinv: np.ndarray | None = None
    # which replica of the shard this worker is (0 = the initial
    # primary); only telemetry naming depends on it — replicas are
    # numerically identical by construction
    replica_id: int = 0
    # kernel backend *name* (a string pickles; compiled handles do
    # not) — the worker process resolves it locally at boot, falling
    # back to reference with a warning if the backend is unavailable
    # there.  None applies the worker-side selection precedence.
    kernel_backend: str | None = None

    @property
    def block(self) -> np.ndarray:
        return np.flatnonzero(
            np.asarray(self.owner, dtype=np.int64) == self.shard_id)


@dataclass
class TransportStats:
    """Wire-level accounting for one transport (router side)."""

    roundtrips: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    send_seconds: float = 0.0
    shm_rows_read: int = 0         # embedding rows read via shared memory
    shm_bytes_read: int = 0


@dataclass(frozen=True)
class WorkerStats:
    """Worker-side counters fetched over RPC (point in time).

    ``rpc_calls`` / ``rpc_payload_bytes`` break the worker's served
    RPCs down per verb (``{"refresh": 12, ...}``; bytes measured by
    :func:`payload_nbytes`) — liveness polling doubles as a cheap load
    signal even when full telemetry harvesting is off."""

    busy_s: float = 0.0
    rows_recomputed: int = 0
    rows_advanced: int = 0
    queries_scored: int = 0
    deltas_applied: int = 0
    coverage_rows: int = 0
    rpc_calls: dict = field(default_factory=dict)
    rpc_payload_bytes: dict = field(default_factory=dict)


class WorkerTransport:
    """One shard worker reachable through submit/result RPC.

    Subclasses implement :meth:`submit` (post one RPC; never blocks on
    the worker's execution) and :meth:`result` (block for the pending
    reply).  At most one RPC may be pending per transport — the router
    pipelines across *shards*, not within one worker, which keeps every
    worker single-threaded and deterministic.

    The typed wrappers below are the protocol: routers call these, so
    method-name typos die at the call site rather than in a worker
    process.

    When the owning router traces, it sets :attr:`tracer` and every
    submit carries the innermost open span as a trace-context envelope
    (see :meth:`_trace_context`); with tracing off — the default — the
    context is ``None`` and the wire format is byte-identical to the
    untraced protocol, so the hot path allocates nothing extra.
    """

    shard_id: int
    stats: TransportStats
    # the router's Tracer (set at spawn); None = never propagate
    tracer = None

    def _trace_context(self) -> tuple | None:
        """The ``(trace_id, span_id)`` envelope this RPC should carry —
        ``None`` unless the router traces *and* a span is open."""
        if self.tracer is None:
            return None
        return self.tracer.current_context()

    def submit(self, method: str, *args, seq: int | None = None) -> None:
        """Post one RPC.  ``seq`` is the caller's per-shard monotonic
        call id for mutating verbs: the worker remembers the ids it has
        applied and answers a redelivery from its reply cache instead of
        re-executing (see :meth:`WorkerService.dispatch`), which is what
        makes at-least-once retry safe for non-idempotent verbs."""
        raise NotImplementedError

    def result(self):
        raise NotImplementedError

    def call(self, method: str, *args, seq: int | None = None):
        self.submit(method, *args, seq=seq)
        return self.result()

    # -- lifecycle ------------------------------------------------------------------
    def begin_advance(self, snapshot: GraphSnapshot | None,
                      diff=None) -> None:
        """Cross into a timestep boundary: settle, optionally rebase
        onto ``snapshot`` (or fold the rebase ``diff``), promote
        carries.  Pipelined by the router; the reply is collected before
        the halo sync."""
        return self.call("begin_advance", snapshot, diff)

    def finish_advance(self) -> int:
        """Recompute the covered rows; returns how many were computed."""
        return self.call("finish_advance")

    def apply_delta(self, diff, dirty: np.ndarray) -> tuple:
        """Fold one commit's GD delta + pre-expanded dirty frontier into
        the worker's mirror.  Returns ``(entrant_rows, ghost_dirty)``."""
        return self.call("apply_delta", diff, dirty)

    def refresh(self) -> int:
        """Recompute the worker's dirty covered rows; returns the count."""
        return self.call("refresh")

    # -- reads ----------------------------------------------------------------------
    def embedding_rows(self, rows: np.ndarray) -> np.ndarray:
        """Served embedding rows (backends may satisfy this from a
        shared-memory mapping instead of an RPC round-trip)."""
        return self.call("embedding_rows", rows)

    def score(self, link_pairs: np.ndarray, link_dst_rows: np.ndarray,
              fraud_accounts: np.ndarray) -> tuple:
        return self.call("score", link_pairs, link_dst_rows,
                         fraud_accounts)

    # -- halo / temporal state -------------------------------------------------------
    def halo_rows(self) -> np.ndarray:
        return self.call("halo_rows")

    def export_temporal(self, rows: np.ndarray) -> list:
        return self.call("export_temporal", rows)

    def import_temporal(self, rows: np.ndarray, payload: list) -> int:
        return self.call("import_temporal", rows, payload)

    # -- state transplant (capture / recovery) ---------------------------------------
    def export_state(self) -> tuple:
        """(owned-row state export, dirty rows, steps) for captures."""
        return self.call("export_state")

    def adopt_state(self, exports: list, steps: int,
                    dirty: np.ndarray) -> None:
        return self.call("adopt_state", exports, steps, dirty)

    # -- introspection / liveness ----------------------------------------------------
    def worker_stats(self) -> WorkerStats:
        return self.call("stats")

    def telemetry(self) -> tuple:
        """Drain the worker's telemetry: ``(harvest, finished_spans)``
        — a delta-encoded :meth:`MetricsRegistry.harvest` envelope plus
        the worker's finished span trees in wire form.  Draining is
        idempotent on the receiving side (the envelope carries a
        source/seq, see :meth:`MetricsRegistry.merge`)."""
        return self.call("telemetry")

    def ping(self, timeout: float | None = None) -> bool:
        """Heartbeat: True iff the worker answered within ``timeout``."""
        raise NotImplementedError

    @property
    def alive(self) -> bool:
        raise NotImplementedError

    def close(self) -> None:
        """Release the worker (terminate its process, if it has one)."""

    # -- debug / fault injection (tests) ----------------------------------------------
    def debug_exit(self) -> None:
        """Ask the worker to die abruptly (no reply).  In-process
        backends mark themselves dead instead."""
        raise ExecError("this transport cannot simulate a crash")
