"""The execution tier's front door: admission, coalescing, fan-out.

:class:`ExecRouter` serves the :class:`~repro.serve.server.QueryFrontend`
surface (``submit_link`` / ``submit_fraud`` / ``tick`` / ``flush`` /
``ingest_events`` / ``advance_time``) over ``N`` shard workers reached
through :class:`~repro.exec.transport.WorkerTransport` — so the same
router runs the in-process oracle (:class:`SimulatedBackend`) and real
worker processes (:class:`MultiprocessBackend`) with identical numerics.

On top of the sharded tier's routing it adds what a real front door
needs:

* **admission control** — a bounded in-flight queue
  (``max_inflight``): submits beyond the bound are *shed* (the query
  resolves immediately with ``shed=True`` and no result) so worker
  queues cannot grow without bound; crossing
  ``backpressure_ratio * max_inflight`` raises an edge-triggered
  backpressure signal callers can poll (:attr:`under_backpressure`);
* **micro-batch coalescing** — queued queries group per owner shard
  (span ``exec.coalesce``) and each flush issues one pipelined refresh
  + one score RPC per touched shard (span ``exec.rpc``), amortizing
  round-trips exactly as the single-process tier amortizes head
  evaluations;
* **pipelined fan-out** — writes submit to every shard before
  collecting any reply (``pipeline=False`` serializes, which keeps
  per-worker busy clocks clean on a single-core host — the bench's
  critical-path mode);
* **robustness** — per-call timeouts and heartbeats
  (:meth:`heartbeat`, driven by :meth:`tick` when
  ``heartbeat_interval_s`` is set) detect dead or hung workers; a dead
  worker is respawned from the latest store capture and the WAL tail
  replays through it (:meth:`_revive`), reusing the PR-3 recovery
  machinery worker-by-worker;
* **resilience** — every shard is reached through a
  :class:`~repro.exec.channel.ShardChannel`: ``replicas=R`` spawns R
  bit-identical workers per shard, idempotent reads retry with backoff
  and fail over to a live replica, sequenced writes fan to every
  replica exactly-once (worker-side dedup), and per-replica circuit
  breakers fail fast on repeatedly unresponsive workers.  With
  ``max_staleness`` set, a shard whose replicas are *all* gone degrades
  instead of failing: its queries answer from the last boundary's
  cached embeddings with an explicit ``staleness`` stamp (boundaries
  behind the tip) and shed once the bound is exceeded.  A seeded
  :class:`~repro.exec.faults.FaultPlan` injects deterministic wire
  chaos underneath all of it for tests and benches.

Instrumentation flows through the unified obs layer: spans
``exec.dispatch`` / ``exec.rpc`` / ``exec.coalesce`` nest under the
serving spans, counters export as ``serve_*_total`` /
``exec_rpc_*_total{shard=}``, and cross-shard payloads land in the
same ``comm_bytes_total{label=}`` family the simulated cluster's
:class:`~repro.cluster.comm.Communicator` exports.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, replace
from typing import Callable, Iterable

import numpy as np

from repro.errors import ConfigError, ExecError, StoreError, \
    WorkerDeadError, WorkerTimeoutError
from repro.graph.diff import split_diff_by_blocks
from repro.graph.snapshot import GraphSnapshot
from repro.models.base import DynamicGNN
from repro.nn.linear import EdgeScorer, Linear
from repro.obs import Telemetry
from repro.serve.cache import expand_dirty
from repro.serve.engine import InferenceEngine, derive_serving_features
from repro.serve.ingest import EdgeEvent, StreamIngestor
from repro.serve.server import PendingQuery, QueryFrontend, \
    score_fraud, score_links
from repro.serve.sharded.halo import HaloTraffic
from repro.serve.sharded.plan import ShardPlan
from repro.exec.channel import RetryPolicy, ShardChannel
from repro.exec.faults import FaultPlan
from repro.exec.mp import MultiprocessBackend
from repro.exec.simulated import SimulatedBackend
from repro.exec.transport import WorkerBoot
from repro.store.recovery import pack_shard_export, unpack_sharded_state

__all__ = ["ExecCounters", "ExecStats", "ExecRouter"]

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass
class ExecCounters:
    """Monotonic counters the exec router increments as it works."""

    queries_submitted: int = 0
    queries_completed: int = 0
    queries_shed: int = 0          # rejected by admission control
    batches_flushed: int = 0
    events_ingested: int = 0
    commits: int = 0
    advances: int = 0
    refreshes: int = 0
    rows_recomputed: int = 0
    rows_advanced: int = 0
    halo_dirty_rows: int = 0
    cross_shard_events: int = 0
    remote_row_fetches: int = 0
    remote_row_bytes: int = 0
    delta_bytes_fanout: int = 0
    score_rpcs: int = 0
    worker_restarts: int = 0       # crash recoveries performed
    heartbeats: int = 0
    heartbeat_failures: int = 0
    backpressure_events: int = 0   # queue crossed the high watermark
    rpc_retries: int = 0           # channel redeliveries (reads + writes)
    rpc_timeouts: int = 0          # RPCs that missed a reply deadline
    failovers: int = 0             # read-primary promotions
    breaker_trips: int = 0         # circuit breakers opened
    replica_deaths: int = 0        # replicas dropped from their shard
    degraded_queries: int = 0      # answered from stale cached rows
    queries_shed_stale: int = 0    # shed: staleness bound exceeded
    captures_skipped: int = 0      # state capture skipped, shard down


@dataclass(frozen=True)
class ExecStats:
    """Point-in-time view of the execution tier."""

    counters: ExecCounters
    traffic: HaloTraffic
    num_shards: int
    backend: str
    per_shard_busy_s: tuple
    router_busy_s: float
    shm_bytes_mapped: int
    rpc_roundtrips: int
    rpc_bytes_sent: int
    rpc_bytes_received: int
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    elapsed_s: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "counters", replace(self.counters))
        object.__setattr__(self, "traffic", self.traffic.copy())

    @property
    def critical_path_s(self) -> float:
        """Router busy time plus the slowest worker's busy time — the
        tier's wall-clock under ideal parallelism.  For real worker
        processes this is measured (perf_counter inside each process);
        on a host with fewer cores than workers it is the honest
        scaling signal, since concurrent processes merely timeshare."""
        slowest = max(self.per_shard_busy_s) if self.per_shard_busy_s \
            else 0.0
        return self.router_busy_s + slowest

    @property
    def aggregate_qps(self) -> float:
        if self.critical_path_s <= 0:
            return float("nan")
        return self.counters.queries_completed / self.critical_path_s


def _resolve_backend(backend):
    if backend == "simulated":
        return SimulatedBackend()
    if backend in ("multiprocess", "mp"):
        return MultiprocessBackend()
    if isinstance(backend, str):
        raise ConfigError(f"unknown exec backend {backend!r}")
    return backend


class ExecRouter(QueryFrontend):
    """Admission-controlled router over transport-reached shard workers."""

    def __init__(self, model: DynamicGNN, snapshot: GraphSnapshot, *,
                 backend="simulated",
                 num_shards: int | None = None,
                 plan: ShardPlan | None = None,
                 link_head: EdgeScorer | None = None,
                 fraud_head: Linear | None = None,
                 max_batch_size: int = 64,
                 flush_latency_ms: float = 2.0,
                 k_hops: int | None = None,
                 max_inflight: int | None = None,
                 backpressure_ratio: float = 0.75,
                 heartbeat_interval_s: float | None = None,
                 pipeline: bool = True,
                 replicas: int = 1,
                 retry: RetryPolicy | None = None,
                 breaker_threshold: int = 5,
                 breaker_cooldown_s: float = 0.25,
                 fault_plan: FaultPlan | None = None,
                 max_staleness: int | None = None,
                 telemetry: Telemetry | None = None,
                 kernel_backend: str | None = None,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        if plan is None:
            if num_shards is None:
                raise ConfigError("pass num_shards or an explicit plan")
            plan = ShardPlan.uniform(snapshot.num_vertices, num_shards)
        if plan.num_vertices != snapshot.num_vertices:
            raise ConfigError("shard plan does not cover the vertex set")
        if max_inflight is not None and max_inflight < 1:
            raise ConfigError("max_inflight must be >= 1")
        if not 0.0 < backpressure_ratio <= 1.0:
            raise ConfigError("backpressure_ratio must be in (0, 1]")
        if replicas < 1:
            raise ConfigError("replicas must be >= 1")
        if max_staleness is not None and max_staleness < 0:
            raise ConfigError("max_staleness must be >= 0")
        self._init_frontend(max_batch_size, flush_latency_ms, clock,
                            telemetry)
        self.model = model
        self.plan = plan
        self.link_head = link_head
        self.fraud_head = fraud_head
        self.k_hops = model.num_layers if k_hops is None else k_hops
        self.max_inflight = max_inflight
        self.backpressure_ratio = backpressure_ratio
        self.heartbeat_interval_s = heartbeat_interval_s
        self.pipeline = pipeline
        self.replicas_per_shard = replicas
        self.fault_plan = fault_plan
        self.max_staleness = max_staleness
        self._retry_policy = retry
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown_s = breaker_cooldown_s
        # the sparse-kernel backend workers run on (`backend` above is
        # the *transport* backend — distinct seams, distinct names).
        # Shipped by name so each worker process resolves it at boot.
        self.kernel_backend = kernel_backend
        # degraded serving: per shard, (boundary embedding rows for the
        # shard's block, counters.advances at capture time)
        self._stale_cache: dict[int, tuple[np.ndarray, int]] = {}
        self._blocks = [plan.block(s) for s in range(plan.num_shards)]
        self.ingestor = StreamIngestor(snapshot)
        self.counters = ExecCounters()
        self.traffic = HaloTraffic()
        self.router_busy_s = 0.0
        self._per_shard_queries = np.zeros(plan.num_shards, dtype=np.int64)
        self._backpressure = False
        self._last_heartbeat: float | None = None
        # cross-shard payload ledger, exported in the Communicator's
        # comm_bytes_total{label=} family: labels "delta" (delta
        # fan-out), "halo" (temporal-state mirroring), "query_rows"
        # (remote embedding gathers)
        self._comm_bytes: dict = defaultdict(int)
        self._comm_full_bytes: dict = defaultdict(int)

        # router-observed RPC round-trip latency, one histogram per
        # shard (cached: _fanout records on every RPC)
        self._rpc_latency = [
            self.telemetry.registry.histogram(
                "exec_rpc_latency_ms",
                "Router-observed RPC round-trip latency",
                shard=str(s))
            for s in range(plan.num_shards)]

        self.backend = _resolve_backend(backend)
        self.backend.attach(snapshot)
        features, dinv = derive_serving_features(snapshot)
        self.channels: list[ShardChannel] = []
        for s in range(plan.num_shards):
            members = []
            for r in range(replicas):
                boot = WorkerBoot(shard_id=s, model=model,
                                  snapshot=snapshot, owner=plan.owner,
                                  num_shards=plan.num_shards,
                                  k_hops=self.k_hops, link_head=link_head,
                                  fraud_head=fraud_head, features=features,
                                  dinv=dinv, replica_id=r,
                                  kernel_backend=kernel_backend)
                transport = self.backend.spawn(boot, clock=self.clock)
                # RPCs carry the router's trace context once tracing is on
                transport.tracer = self.telemetry.tracer
                if fault_plan is not None:
                    transport = fault_plan.wrap(transport, shard=s,
                                                replica=r)
                members.append(transport)
            self.channels.append(ShardChannel(
                s, members, policy=retry,
                breaker_threshold=breaker_threshold,
                breaker_cooldown_s=breaker_cooldown_s,
                clock=self.clock, on_event=self._channel_observer(s)))
        self._advance()  # prime embeddings for the initial snapshot

    # -- introspection ---------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.plan.num_shards

    @property
    def num_vertices(self) -> int:
        return self.plan.num_vertices

    @property
    def under_backpressure(self) -> bool:
        """True while the queue sits above the high watermark."""
        return self._backpressure

    @property
    def transports(self) -> list:
        """Per-shard read primaries (back-compat view — the full
        replica sets live in :attr:`channels`)."""
        return [ch.primary for ch in self.channels]

    def shard_staleness(self, shard: int) -> int:
        """Boundaries behind the live tip this shard serves from:
        0 while any replica lives, the cached-boundary lag while the
        shard is down, -1 when down with nothing cached (unservable)."""
        if self.channels[shard].alive:
            return 0
        cached = self._stale_cache.get(shard)
        if cached is None:
            return -1
        return self.counters.advances - cached[1]

    def close(self) -> None:
        """Shut every worker down and release backend resources
        (shared-memory segments, processes)."""
        for ch in self.channels:
            ch.close()
        self.backend.close()

    def __enter__(self) -> "ExecRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- RPC fan-out ------------------------------------------------------------------
    def _channel_observer(self, shard: int):
        """Counter sink for one shard channel's resilience events."""
        label = str(shard)
        reg = self.telemetry.registry
        counters = self.counters

        def observe(event: str, **kw) -> None:
            if event == "retry":
                counters.rpc_retries += 1
                reg.counter("exec_rpc_retries_total",
                            "RPC redeliveries (idempotent retries and "
                            "sequenced write redeliveries)",
                            shard=label).inc()
            elif event == "timeout":
                counters.rpc_timeouts += 1
                reg.counter("exec_rpc_timeouts_total",
                            "RPCs that missed their reply deadline",
                            shard=label).inc()
            elif event == "failover":
                counters.failovers += 1
                reg.counter("exec_failovers_total",
                            "Read-primary promotions to a live replica",
                            shard=label).inc()
            elif event == "breaker_trip":
                counters.breaker_trips += 1
                reg.counter("exec_breaker_trips_total",
                            "Circuit breakers tripped open",
                            shard=label).inc()
            elif event == "replica_dead":
                counters.replica_deaths += 1
                reg.counter("exec_replica_deaths_total",
                            "Replicas dropped from their shard",
                            shard=label).inc()
        return observe

    def _fanout(self, method: str, args_fn, shards=None) -> tuple:
        """Issue one RPC per shard; returns ``({shard: result}, [dead])``.

        Pipelined mode submits everywhere before collecting anywhere —
        real workers overlap their execution.  Serialized mode
        (``pipeline=False``) finishes each worker before touching the
        next, so busy clocks never include co-scheduling noise.  Each
        per-shard call goes through that shard's channel, which owns
        retry, sequencing and replica failover; a shard lands in the
        ``dead`` list only when *no* replica could serve it."""
        shards = list(range(self.num_shards)) if shards is None \
            else list(shards)
        results: dict = {}
        dead: list[int] = []
        with self.telemetry.trace("exec.rpc", method=method,
                                  shards=len(shards)):
            if self.pipeline:
                submitted = []
                t0 = {}
                for s in shards:
                    try:
                        t0[s] = self.clock()
                        self.channels[s].submit(method, *args_fn(s))
                        submitted.append(s)
                    except (WorkerDeadError, WorkerTimeoutError):
                        dead.append(s)
                for s in submitted:
                    try:
                        results[s] = self.channels[s].result()
                        self._rpc_latency[s].observe(
                            (self.clock() - t0[s]) * 1e3)
                    except (WorkerDeadError, WorkerTimeoutError):
                        dead.append(s)
            else:
                for s in shards:
                    t0 = self.clock()
                    try:
                        results[s] = self.channels[s].call(
                            method, *args_fn(s))
                        self._rpc_latency[s].observe(
                            (self.clock() - t0) * 1e3)
                    except (WorkerDeadError, WorkerTimeoutError):
                        dead.append(s)
        return results, dead

    def _comm_charge(self, label: str, nbytes: int,
                     full_nbytes: int | None = None) -> None:
        self._comm_bytes[label] += int(nbytes)
        self._comm_full_bytes[label] += int(nbytes if full_nbytes is None
                                            else full_nbytes)

    # -- admission control -------------------------------------------------------------
    def _submit(self, query: PendingQuery) -> PendingQuery:
        if self._started_at is None:
            self._started_at = query.enqueued_at
        self.counters.queries_submitted += 1
        if self.max_inflight is not None and \
                len(self._queue) >= self.max_inflight:
            # shed: resolve immediately with no result so the caller
            # can retry/degrade instead of waiting behind a full queue
            self.counters.queries_shed += 1
            query.shed = True
            query.done = True
            return query
        self._queue.append(query)
        self._signal_backpressure()
        if len(self._queue) >= self.max_batch_size:
            self.flush()
        return query

    def _signal_backpressure(self) -> None:
        if self.max_inflight is None:
            return
        watermark = self.backpressure_ratio * self.max_inflight
        above = len(self._queue) >= watermark
        if above and not self._backpressure:
            self.counters.backpressure_events += 1  # edge-triggered
        self._backpressure = above

    # -- liveness ----------------------------------------------------------------------
    def heartbeat(self, timeout: float = 1.0) -> list[int]:
        """Ping every replica of every shard; returns the shards where
        *no* replica answered.  A shard whose primary died but whose
        replica ponged is healthy (the channel promotes on the next
        read) and does not appear here."""
        self.counters.heartbeats += 1
        dead = []
        for s, ch in enumerate(self.channels):
            if not ch.ping(timeout=timeout):
                self.counters.heartbeat_failures += 1
                dead.append(s)
        return dead

    def tick(self) -> int:
        """Event-loop hook: heartbeat on schedule (reviving any dead
        shard — or leaving it degraded when revival is impossible and
        ``max_staleness`` allows stale serving — then draining worker
        telemetry on the same cadence), then the inherited
        latency-budget flush check."""
        if self.heartbeat_interval_s is not None:
            now = self.clock()
            if self._last_heartbeat is None or \
                    now - self._last_heartbeat >= self.heartbeat_interval_s:
                self._last_heartbeat = now
                for s in self.heartbeat():
                    self._revive_or_degrade(s)
                self.harvest_telemetry()
        return super().tick()

    # -- worker-telemetry harvest ------------------------------------------------------
    def harvest_telemetry(self) -> int:
        """Drain every live worker's registry and finished spans into
        the router's telemetry: series merge under ``worker=<id>``
        labels (counters sum, gauges last-write, histograms union —
        see :meth:`MetricsRegistry.merge`) and worker spans graft into
        the router's span trees beneath the ``exec.rpc`` spans that
        caused them.  Safe to call at any cadence: harvests are
        delta-encoded and deduplicated by (source, seq), so nothing
        double-counts.  Returns the number of series updated."""
        updated = 0
        for s, ch in enumerate(self.channels):
            for r, transport in enumerate(ch.replicas):
                if not transport.alive:
                    continue
                try:
                    harvest, spans = transport.telemetry()
                except (WorkerDeadError, WorkerTimeoutError):
                    continue
                # primaries keep the bare shard label; extra replicas
                # get "<shard>r<replica>" (their telemetry sources are
                # distinct, so harvests never collide)
                label = str(s) if r == 0 else f"{s}r{r}"
                updated += self.telemetry.registry.merge(
                    harvest, labels={"worker": label})
                if spans:
                    self.telemetry.tracer.graft(spans)
        return updated

    # -- ingestion --------------------------------------------------------------------
    def ingest_events(self, events: Iterable[EdgeEvent]) -> int:
        """Commit live edge events once, fan the GD delta out to every
        worker, sync halo entrants.  WAL-before-ack when a store is
        attached; a worker that dies during the fan-out is revived from
        the latest capture + WAL tail before the method returns."""
        events = list(events)
        with self.telemetry.trace("serve.ingest", events=len(events)):
            self._store_log_events(events)
            with self.telemetry.trace("serve.commit"):
                count = self.ingestor.push_batch(events)
                result = self.ingestor.commit()
            snap = result.snapshot
            t0 = self.clock()
            if self.backend.shares_substrate:
                features, dinv = derive_serving_features(snap)
                self.backend.publish(snap, features, dinv,
                                     diff=result.diff)
            dirty = expand_dirty(snap, result.dirty, self.k_hops)
            subs = split_diff_by_blocks(result.diff, snap, self.plan.owner,
                                        self.plan.num_shards)
            delta_bytes = sum(d.payload_nbytes for d in subs)
            self.counters.delta_bytes_fanout += delta_bytes
            self._comm_charge("delta", delta_bytes,
                              result.diff.naive_nbytes * self.num_shards)
            for edges in (result.diff.added, result.diff.removed):
                if len(edges):
                    self.counters.cross_shard_events += int(
                        (self.plan.owner[edges[:, 0]]
                         != self.plan.owner[edges[:, 1]]).sum())
            self.router_busy_s += self.clock() - t0
            with self.telemetry.trace("serve.fanout",
                                      shards=self.num_shards):
                results, dead = self._fanout(
                    "apply_delta", lambda s: (result.diff, dirty))
            entrants: dict = {}
            for s, (rows, ghost_dirty) in results.items():
                entrants[s] = rows
                self.counters.halo_dirty_rows += ghost_dirty
            for s in dead:
                revived = self._revive_or_degrade(s)
                if revived is not None:
                    entrants[s] = revived
            with self.telemetry.trace("serve.halo_sync", kind="entrants"):
                self._sync_entrants(entrants)
            self.counters.events_ingested += result.num_events
            self.counters.commits += 1
        return count

    def advance_time(self, snapshot: GraphSnapshot | None = None, *,
                     diff=None) -> None:
        """Cross a timestep boundary (see :class:`ShardedServer` — same
        protocol, RPC-shaped): begin everywhere, bulk halo sync, finish
        everywhere."""
        self._store_log_boundary(snapshot)
        if snapshot is not None:
            self.ingestor.rebase(snapshot)
        self._advance(rebase=snapshot, diff=diff)
        self._store_maybe_capture()

    def _advance(self, rebase: GraphSnapshot | None = None,
                 diff=None) -> None:
        with self.telemetry.trace("serve.advance",
                                  rebase=rebase is not None):
            snap = self.ingestor.resident
            t0 = self.clock()
            if self.backend.shares_substrate:
                features, dinv = derive_serving_features(snap)
                self.backend.publish(snap, features, dinv, diff=diff)
            self.router_busy_s += self.clock() - t0
            # real workers fold the rebase diff into their own mirror;
            # the full snapshot ships only when there is no delta for it
            ship = rebase if (rebase is not None and diff is None) else None
            _, dead = self._fanout("begin_advance", lambda s: (ship, diff))
            down = self._tolerate_boundary_dead(dead, "begin_advance")
            if self.num_shards > 1:
                with self.telemetry.trace("serve.halo_sync",
                                          kind="boundary"):
                    self._sync_halos(down=down)
            live = [s for s in range(self.num_shards) if s not in down]
            results, dead = self._fanout("finish_advance", lambda s: (),
                                         shards=live)
            down |= self._tolerate_boundary_dead(dead, "finish_advance")
            self.counters.rows_advanced += sum(results.values())
            self.counters.advances += 1
            self._update_stale_cache(down)

    def _require_all_alive(self, dead: list[int], stage: str) -> None:
        if dead:
            # a boundary crossing cannot be replayed worker-by-worker
            # (the WAL tail would span the boundary) — the tier-level
            # recover() path is the correct restart
            raise WorkerDeadError(
                f"shards {dead} died during {stage}; recover() the tier "
                f"from its store")

    def _tolerate_boundary_dead(self, dead: list[int],
                                stage: str) -> set:
        """With degraded serving enabled, a shard lost at a boundary
        simply stops advancing (its staleness grows); without it — or
        with *every* shard gone — the boundary fails loudly."""
        if not dead:
            return set()
        if self.max_staleness is None or len(dead) >= self.num_shards:
            self._require_all_alive(dead, stage)
        return set(dead)

    def _update_stale_cache(self, down=frozenset()) -> None:
        """Refresh the degraded-serving cache at a boundary: each live
        shard's freshly advanced block embeddings, stamped with the
        boundary ordinal so staleness is measured in whole timesteps."""
        if self.max_staleness is None:
            return
        for s in range(self.num_shards):
            if s in down or not self.channels[s].alive:
                continue
            try:
                rows = self.channels[s].embedding_rows(self._blocks[s])
            except (WorkerDeadError, WorkerTimeoutError):
                continue
            self._stale_cache[s] = (rows, self.counters.advances)

    # -- halo exchange (over channels) -------------------------------------------------
    def _ship(self, target: int, rows: np.ndarray) -> None:
        if len(rows) == 0:
            return
        if self.max_staleness is not None and \
                not self.channels[target].alive:
            return  # degraded shard: it will resync on revival
        owners = self.plan.owner[rows]
        for src in np.unique(owners):
            src = int(src)
            if src == target:
                continue
            if self.max_staleness is not None and \
                    not self.channels[src].alive:
                continue  # the owner is down: its ghost rows freeze
            chunk = rows[owners == src]
            payload = self.channels[src].call("export_temporal", chunk)
            nbytes = self.channels[target].call("import_temporal",
                                                chunk, payload)
            self.traffic.rows_shipped += len(chunk)
            self.traffic.bytes_shipped += nbytes
            self.traffic.messages += 1
            self.traffic.rows_per_shard[target] += len(chunk)
            self.traffic.bytes_per_shard[target] += nbytes
            self._comm_charge("halo", nbytes)

    def _sync_halos(self, down=frozenset()) -> None:
        live = [s for s in range(self.num_shards) if s not in down]
        halos, dead = self._fanout("halo_rows", lambda s: (), shards=live)
        if self.max_staleness is None:
            self._require_all_alive(dead, "halo sync")
        for target in sorted(halos):
            self._ship(target, halos[target])
        self.traffic.boundary_syncs += 1

    def _sync_entrants(self, entrants: dict) -> None:
        shipped = False
        for target in sorted(entrants):
            if len(entrants[target]):
                self._ship(target, entrants[target])
                shipped = True
        if shipped:
            self.traffic.entrant_syncs += 1

    # -- queries ----------------------------------------------------------------------
    def flush(self) -> int:
        """Route and answer one micro-batch.  A worker death mid-batch
        triggers revival (or, with degraded serving enabled, leaves the
        shard down) and a single retry of the whole batch; a batch the
        tier still cannot answer is *aborted* — every unresolved query
        resolves shed — so admission slots always release instead of
        leaking with their callers parked forever."""
        if not self._queue:
            return 0
        batch, self._queue = self._queue[:self.max_batch_size], \
            self._queue[self.max_batch_size:]
        with self.telemetry.trace("exec.dispatch", batch=len(batch)):
            try:
                self._answer_batch(batch, down=self._down_shards())
            except (WorkerDeadError, WorkerTimeoutError):
                try:
                    down = set()
                    for s in range(self.num_shards):
                        if not self.channels[s].alive and \
                                self._revive_or_degrade(s) is None and \
                                not self.channels[s].alive:
                            down.add(s)
                    self._answer_batch(batch, down=down)
                except (ExecError, StoreError):
                    self._abort_batch(batch)
                    raise
        self._signal_backpressure()
        if self._queue:
            return len(batch) + self.flush()
        return len(batch)

    def _down_shards(self) -> set:
        if self.max_staleness is None:
            return set()
        return {s for s in range(self.num_shards)
                if not self.channels[s].alive}

    def _abort_batch(self, batch: list) -> None:
        """Resolve every unanswered query in a failed batch as shed:
        the caller gets a definitive (empty) answer and the admission
        slot it held is released.  Without this, a batch that died
        twice — e.g. on an RPC timeout with revival impossible — left
        its queries dangling and the in-flight queue permanently
        smaller."""
        for q in batch:
            if not q.done:
                q.shed = True
                q.done = True
                self.counters.queries_shed += 1

    def _answer_batch(self, batch: list, down=frozenset()) -> None:
        with self.telemetry.trace("exec.coalesce", batch=len(batch)):
            link_by_shard: dict[int, list] = {}
            fraud_by_shard: dict[int, list] = {}
            needed = set()
            degraded: list = []
            for q in batch:
                if q.done:
                    continue  # resolved by an earlier batch attempt
                if q.kind == "link":
                    src, dst = q.payload
                    s = int(self.plan.owner[src])
                    sd = int(self.plan.owner[dst])
                    self._per_shard_queries[s] += 1
                    if s in down or sd in down:
                        degraded.append(q)
                        # live endpoints still need a refresh before
                        # their rows are read for the stale answer
                        needed.update(e for e in (s, sd)
                                      if e not in down)
                        continue
                    link_by_shard.setdefault(s, []).append(q)
                    needed.add(s)
                    needed.add(sd)
                else:
                    s = int(self.plan.owner[q.payload[0]])
                    self._per_shard_queries[s] += 1
                    if s in down:
                        degraded.append(q)
                        continue
                    fraud_by_shard.setdefault(s, []).append(q)
                    needed.add(s)
        # every touched shard consumes its dirty set before any of its
        # embeddings are read — one pipelined refresh round-trip
        results, dead = self._fanout("refresh", lambda s: (),
                                     shards=sorted(needed))
        if dead:
            raise WorkerDeadError(f"shards {dead} died during refresh")
        for s, recomputed in results.items():
            if recomputed:
                self.counters.refreshes += 1
                self.counters.rows_recomputed += recomputed
        if degraded:
            self._answer_degraded(degraded, down)
        # gather the remote link endpoints first (shared-memory reads
        # for the real backend), then pipeline one score RPC per shard
        scoring = sorted(set(link_by_shard) | set(fraud_by_shard))
        calls = {}
        for s in scoring:
            links = link_by_shard.get(s, [])
            frauds = fraud_by_shard.get(s, [])
            pairs = np.array([q.payload for q in links],
                             dtype=np.int64).reshape(-1, 2)
            accounts = np.array([q.payload[0] for q in frauds],
                                dtype=np.int64)
            dst_rows = self._gather_rows(pairs[:, 1], home=s) \
                if len(pairs) else np.empty((0, self.model.embed_dim))
            calls[s] = (links, frauds, pairs, dst_rows, accounts)
        results, dead = self._fanout(
            "score", lambda s: (calls[s][2], calls[s][3], calls[s][4]),
            shards=scoring)
        if dead:
            raise WorkerDeadError(f"shards {dead} died during scoring")
        self.counters.score_rpcs += len(scoring)
        now = self.clock()
        for s in scoring:
            links, frauds = calls[s][0], calls[s][1]
            link_scores, fraud_scores = results[s]
            for q, score in zip(links, link_scores):
                q._resolve(score, now)
            for q, score in zip(frauds, fraud_scores):
                q._resolve(score, now)
        answered = 0
        for q in batch:
            if q.shed:
                continue
            self.latency.record(q.latency_ms)
            answered += 1
        self.counters.queries_completed += answered
        self.counters.batches_flushed += 1

    def _answer_degraded(self, queries: list, down) -> None:
        """Bounded-staleness serving for queries touching down shards:
        answer from the last boundary's cached embeddings, stamp each
        result with how many boundaries behind the tip it is, and shed
        anything staler than ``max_staleness`` (or unservable because
        nothing was ever cached)."""
        now = self.clock()
        for q in queries:
            if q.done:
                continue
            vertices = list(q.payload) if q.kind == "link" \
                else [q.payload[0]]
            staleness = 0
            vecs = []
            servable = True
            for v in vertices:
                s = int(self.plan.owner[v])
                if s in down:
                    cached = self._stale_cache.get(s)
                    lag = self.shard_staleness(s)
                    if cached is None or lag > self.max_staleness:
                        servable = False
                        break
                    rows, _ = cached
                    idx = int(np.searchsorted(self._blocks[s], v))
                    vecs.append(rows[idx])
                    staleness = max(staleness, lag)
                else:
                    vecs.append(self.channels[s].embedding_rows(
                        np.array([v], dtype=np.int64))[0])
            if not servable:
                q.shed = True
                q.done = True
                self.counters.queries_shed += 1
                self.counters.queries_shed_stale += 1
                continue
            z = np.stack(vecs)
            if q.kind == "link":
                score = score_links(
                    z, np.array([[0, 1]]), self.link_head)[0]
            else:
                score = score_fraud(
                    z, np.array([0], dtype=np.int64), self.fraud_head)[0]
            q.staleness = staleness
            q._resolve(score, now)
            self.counters.degraded_queries += 1

    def _gather_rows(self, rows: np.ndarray, home: int) -> np.ndarray:
        owners = self.plan.owner[rows]
        out = np.empty((len(rows), self.model.embed_dim))
        for s in np.unique(owners):
            s = int(s)
            mask = owners == s
            got = self.channels[s].embedding_rows(rows[mask])
            out[mask] = got
            if s != home:
                self.counters.remote_row_fetches += int(mask.sum())
                self.counters.remote_row_bytes += got.nbytes
                self._comm_charge("query_rows", got.nbytes)
        return out

    def gathered_embeddings(self) -> np.ndarray:
        """Full embedding matrix from each shard's owned rows (the
        parity oracle: both backends must produce identical matrices)."""
        _, dead = self._fanout("refresh", lambda s: ())
        self._require_all_alive(dead, "gather")
        out = np.empty((self.num_vertices, self.model.embed_dim))
        for s in range(self.num_shards):
            block = self._blocks[s]
            out[block] = self.channels[s].embedding_rows(block)
        return out

    # -- durability / recovery ---------------------------------------------------------
    def _capture_state(self) -> tuple[dict, dict]:
        exports, dead = self._fanout("export_state", lambda s: ())
        self._require_all_alive(dead, "state capture")
        kind = InferenceEngine._detect_kind(self.model)
        steps = int(exports[0][2])
        meta: dict = {"type": "sharded", "engine_kind": kind,
                      "steps": steps, "num_shards": self.num_shards,
                      "replicas": self.replicas_per_shard,
                      "num_layers": self.model.num_layers, "shards": []}
        arrays: dict = {"owner": np.array(self.plan.owner, copy=True)}
        dirty = _EMPTY
        for s in range(self.num_shards):
            state, shard_dirty, _ = exports[s]
            meta_shard: dict = {}
            pack_shard_export(f"shard/{s}", state, kind, meta_shard,
                              arrays)
            meta["shards"].append(meta_shard)
            dirty = np.union1d(dirty, shard_dirty)
        arrays["dirty"] = dirty
        return meta, arrays

    @classmethod
    def recover(cls, store, *, checkpoint: str | None = None,
                model: DynamicGNN | None = None,
                state_interval: int = 1, **kwargs) -> "ExecRouter":
        """Reboot the whole tier from (checkpoint, newest capture, WAL
        tail) — same contract as :meth:`ShardedServer.recover`, with
        the state transplant delivered over adopt_state RPCs."""
        model, meta, arrays, resident = cls._recovery_state(
            store, checkpoint, model, kwargs)
        owner, exports, dirty = unpack_sharded_state(meta, arrays)
        plan = ShardPlan(owner=owner, num_shards=meta["num_shards"])
        router = cls(model, resident, plan=plan, **kwargs)
        steps = int(meta["steps"])
        _, dead = router._fanout("adopt_state",
                                 lambda s: (exports, steps, dirty))
        router._require_all_alive(dead, "recovery transplant")
        router._replay_store_tail(store, meta["record_index"],
                                  state_interval)
        return router

    def _store_maybe_capture(self) -> None:
        # a capture needs every shard's export; with a shard down the
        # boundary still seals, but the capture waits for revival
        if any(not ch.alive for ch in self.channels):
            if self.store is not None and not self._store_replaying:
                self.counters.captures_skipped += 1
            return
        super()._store_maybe_capture()

    def _revive_or_degrade(self, shard: int) -> np.ndarray | None:
        """Try crash recovery for one down shard; with degraded serving
        enabled, a shard that cannot be revived (no store, no usable
        capture, boundary-spanning tail) is left down — its queries
        serve stale until it can be brought back — instead of failing
        the calling operation.  Returns the revival's entrant rows, or
        ``None`` when the shard stays down."""
        try:
            return self._revive(shard)
        except (ExecError, StoreError):
            if self.max_staleness is None:
                raise
            return None

    def _revive(self, shard: int) -> np.ndarray:
        """Respawn one dead worker from the latest capture + WAL tail.

        The capture's per-shard exports cover *every* vertex, so the
        revived worker's ghost temporal state is already exact; the
        tail (event batches only — boundaries force a tier-level
        recover) replays through its own apply_delta RPCs.  Returns the
        entrant rows of the final replayed batch, so the caller can run
        the entrant sync it was about to do when the worker died."""
        if self.store is None:
            raise WorkerDeadError(
                f"shard {shard} died with no store attached — revival "
                f"needs a capture; serve with attach_store(...)")
        state = self.store.latest_engine_state()
        if state is None:
            raise StoreError("store holds no engine-state capture")
        meta, arrays = state
        owner, exports, dirty = unpack_sharded_state(meta, arrays)
        if not np.array_equal(owner, self.plan.owner):
            raise ExecError(
                "latest capture was taken under a different shard plan; "
                "recover() the tier instead")
        channel = self.channels[shard]
        channel.close()
        resident = self.store._state_at_record(meta["record_index"])
        boot = WorkerBoot(shard_id=shard, model=self.model,
                          snapshot=resident, owner=self.plan.owner,
                          num_shards=self.num_shards, k_hops=self.k_hops,
                          link_head=self.link_head,
                          fraud_head=self.fraud_head,
                          kernel_backend=self.kernel_backend)
        # solo: the revived worker folds deltas into a private mirror —
        # it must not rebuild a shared substrate to its older resident
        transport = self.backend.spawn(boot, solo=True, clock=self.clock)
        transport.tracer = self.telemetry.tracer
        if self.fault_plan is not None:
            # chaos does not pause for revivals; a fresh RNG stream
            # keeps the replayed storm deterministic per incarnation
            transport = self.fault_plan.wrap(
                transport, shard=shard, replica=0,
                stream=self.counters.worker_restarts + 1)
        channel.reset([transport])
        channel.call("adopt_state", exports, int(meta["steps"]), dirty)
        entrants = _EMPTY
        ingestor = StreamIngestor(resident)
        for op, payload in self.store.replay_tail(meta["record_index"],
                                                  start=resident):
            if op != "events":
                raise ExecError(
                    "WAL tail crosses a timestep boundary; single-worker "
                    "revival cannot replay it — recover() the tier")
            ingestor.push_batch(payload)
            result = ingestor.commit()
            dirty_rows = expand_dirty(result.snapshot, result.dirty,
                                      self.k_hops)
            entrants, _ = channel.call("apply_delta", result.diff,
                                       dirty_rows)
        self.counters.worker_restarts += 1
        return entrants

    # -- observability ----------------------------------------------------------------
    def _collect_tier_metrics(self, reg) -> None:
        # fold in the latest worker-side telemetry first, so one
        # prometheus()/dashboard() call on the router exports the whole
        # cluster (worker series appear under worker=<id> labels)
        self.harvest_telemetry()
        reg.gauge("exec_shard_count", "Workers in the tier").set(
            self.num_shards)
        reg.gauge("serve_router_busy_seconds",
                  "Router busy clock").set(self.router_busy_s)
        reg.gauge("exec_shm_bytes_mapped",
                  "Shared-memory bytes mapped across workers").set(
            self.backend.shm_bytes_mapped)
        if self.max_inflight is not None:
            reg.gauge("exec_inflight_limit",
                      "Admission-control queue bound").set(
                self.max_inflight)
        reg.gauge("exec_replicas_configured",
                  "Replicas per shard the tier was built with").set(
            self.replicas_per_shard)
        for s, ch in enumerate(self.channels):
            label = str(s)
            reg.gauge("exec_replicas_live", "Live replicas per shard",
                      shard=label).set(len(ch._live()))
            reg.gauge("exec_shard_down",
                      "1 while the shard has no live replica",
                      shard=label).set(0.0 if ch.alive else 1.0)
            if self.max_staleness is not None:
                reg.gauge("exec_shard_staleness_steps",
                          "Boundaries behind the tip the shard serves "
                          "from (-1 = down and unservable)",
                          shard=label).set(self.shard_staleness(s))
        for s, t in enumerate(self.transports):
            label = str(s)
            reg.counter("exec_rpc_roundtrips_total",
                        "RPC round-trips per shard",
                        shard=label).set_to(t.stats.roundtrips)
            reg.counter("exec_rpc_bytes_sent_total",
                        "Request payload bytes per shard",
                        shard=label).set_to(t.stats.bytes_sent)
            reg.counter("exec_rpc_bytes_received_total",
                        "Reply payload bytes per shard",
                        shard=label).set_to(t.stats.bytes_received)
            reg.counter("exec_shm_rows_read_total",
                        "Embedding rows read via shared memory",
                        shard=label).set_to(t.stats.shm_rows_read)
            reg.counter("shard_queries_total",
                        "Queries routed to each shard",
                        shard=label).set_to(
                int(self._per_shard_queries[s]))
        traffic = self.traffic
        reg.counter("shard_halo_boundary_syncs_total").set_to(
            traffic.boundary_syncs)
        reg.counter("shard_halo_entrant_syncs_total").set_to(
            traffic.entrant_syncs)
        reg.counter("shard_halo_messages_total").set_to(traffic.messages)
        reg.counter("shard_halo_rows_total",
                    "Temporal-state rows shipped owner to ghost").set_to(
            traffic.rows_shipped)
        reg.counter("shard_halo_bytes_total",
                    "Halo payload bytes shipped owner to ghost").set_to(
            traffic.bytes_shipped)
        for label in sorted(self._comm_bytes):
            reg.counter("comm_bytes_total",
                        "Cross-shard payload bytes by traffic class",
                        label=label).set_to(self._comm_bytes[label])
            reg.counter("comm_full_equivalent_bytes_total",
                        "Bytes a non-delta-aware exchange would have "
                        "shipped", label=label).set_to(
                self._comm_full_bytes[label])

    def stats(self) -> ExecStats:
        now = self.clock()
        elapsed = (now - self._started_at) if self._started_at is not None \
            else 0.0
        worker_stats, dead = self._fanout("stats", lambda s: ())
        busy = tuple(worker_stats[s].busy_s
                     for s in sorted(worker_stats))
        return ExecStats(
            counters=self.counters,
            traffic=self.traffic,
            num_shards=self.num_shards,
            backend=self.backend.name,
            per_shard_busy_s=busy,
            router_busy_s=self.router_busy_s,
            shm_bytes_mapped=self.backend.shm_bytes_mapped,
            rpc_roundtrips=sum(t.stats.roundtrips for t in self.transports),
            rpc_bytes_sent=sum(t.stats.bytes_sent for t in self.transports),
            rpc_bytes_received=sum(t.stats.bytes_received
                                   for t in self.transports),
            latency_p50_ms=self.latency.p50,
            latency_p95_ms=self.latency.p95,
            latency_p99_ms=self.latency.p99,
            elapsed_s=elapsed)
