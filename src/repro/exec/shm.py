"""Shared-memory plumbing for the multiprocessing backend.

The read-mostly blocks of a serving tier — CSR topology (edge list +
values), derived degree features, and each worker's embedding block —
are mapped once into ``multiprocessing.shared_memory`` segments and
never travel over the pipe.  Only deltas, row sets, and scores do,
which is the paper's wire discipline (ship O(delta), share O(graph)).

Ownership protocol: the **router process creates and unlinks** every
segment; workers attach, wrap numpy views, and close their handles at
exit.  Under the default fork start method only the creator registers
segments with the resource tracker, so a worker crash never reaps a
segment other workers still map.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.graph.snapshot import GraphSnapshot

__all__ = ["ArraySpec", "share_array", "map_array",
           "snapshot_from_shared"]


@dataclass(frozen=True)
class ArraySpec:
    """Pipe-safe descriptor of one shared segment (the manifest entry)."""

    name: str
    shape: tuple
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)
                   * np.dtype(self.dtype).itemsize)


def share_array(array: np.ndarray, tag: str
                ) -> tuple[shared_memory.SharedMemory, ArraySpec]:
    """Copy ``array`` into a fresh segment; returns (handle, spec).

    The caller (router) owns the handle and must ``unlink()`` it when
    the backend closes."""
    array = np.ascontiguousarray(array)
    name = f"repro_{tag}_{uuid.uuid4().hex[:12]}"
    nbytes = max(1, array.nbytes)  # zero-size arrays still need a page
    seg = shared_memory.SharedMemory(create=True, name=name, size=nbytes)
    if array.nbytes:
        np.ndarray(array.shape, dtype=array.dtype,
                   buffer=seg.buf)[...] = array
    return seg, ArraySpec(name=seg.name, shape=tuple(array.shape),
                          dtype=str(array.dtype))


def map_array(spec: ArraySpec, *, writeable: bool = False
              ) -> tuple[shared_memory.SharedMemory, np.ndarray]:
    """Attach to a segment and wrap it as a numpy view.

    The returned handle must stay referenced as long as the view lives
    (the buffer dies with the handle)."""
    seg = shared_memory.SharedMemory(name=spec.name)
    view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype),
                      buffer=seg.buf)
    view.flags.writeable = writeable
    return seg, view


def snapshot_from_shared(num_vertices: int, edges: np.ndarray,
                         values: np.ndarray) -> GraphSnapshot:
    """Zero-copy :class:`GraphSnapshot` over shared topology views.

    The constructor would canonicalize (copy) the arrays; the shared
    edge list was canonicalized *before* it was shared, so the slots
    are assigned directly and the adjacency index builds lazily in the
    worker as usual."""
    snap = GraphSnapshot.__new__(GraphSnapshot)
    snap.num_vertices = int(num_vertices)
    snap.edges = edges
    snap.values = values
    snap._adj = None
    return snap
