"""The simulated backend: today's in-process tier as the test oracle.

:class:`SimulatedBackend` runs every worker in the router's process,
sharing one :class:`~repro.exec.service.Substrate` (snapshot, derived
features) and one tier-wide Ã
:class:`~repro.graph.inc_laplacian.LaplacianMaintainer` — exactly the
memory-sharing fiction :class:`~repro.serve.sharded.router.ShardedServer`
uses, now reached through the same :class:`WorkerTransport` verbs the
real backend speaks.  Being deterministic and single-process, it is the
oracle the multiprocessing backend must match bit for bit.

``spawn(boot, solo=True)`` builds a worker *without* the shared
substrate/maintainer (it folds deltas into a private mirror, like a
real worker).  Crash recovery uses this for revived workers: a freshly
revived engine must not full-rebuild the tier-shared operator to its
older capture-time snapshot.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.errors import WorkerDeadError
from repro.graph.inc_laplacian import LaplacianMaintainer
from repro.graph.snapshot import GraphSnapshot
from repro.exec.service import Substrate, WorkerService
from repro.exec.transport import TransportStats, WorkerBoot, \
    WorkerTransport, payload_nbytes

__all__ = ["LocalTransport", "SimulatedBackend"]

# back-compat alias: the shared measure now lives with the protocol
_payload_nbytes = payload_nbytes


class LocalTransport(WorkerTransport):
    """Executes RPCs immediately against an in-process service.

    ``submit`` runs the handler synchronously and parks the outcome for
    ``result`` — the pipelined fan-out pattern degenerates to serial
    execution, which is exactly the simulated tier's semantics."""

    def __init__(self, shard_id: int, service: WorkerService) -> None:
        self.shard_id = shard_id
        self.service = service
        self.stats = TransportStats()
        self._pending: tuple | None = None
        self._dead = False

    def submit(self, method: str, *args, seq: int | None = None) -> None:
        if self._pending is not None:
            raise WorkerDeadError(
                f"shard {self.shard_id}: RPC already pending")
        if self._dead:
            raise WorkerDeadError(f"shard {self.shard_id} worker is dead")
        self.stats.roundtrips += 1
        self.stats.bytes_sent += payload_nbytes(args)
        try:
            out = self.service.dispatch(method, args,
                                        self._trace_context(), seq=seq)
            self._pending = ("ok", out)
        except Exception as exc:  # parked, re-raised at result()
            self._pending = ("err", exc)

    def result(self):
        if self._pending is None:
            raise WorkerDeadError(
                f"shard {self.shard_id}: no RPC pending")
        status, out = self._pending
        self._pending = None
        if status == "err":
            raise out
        self.stats.bytes_received += payload_nbytes(out)
        return out

    def ping(self, timeout: float | None = None) -> bool:
        if self._dead:
            return False
        return self.call("ping") == "pong"

    @property
    def alive(self) -> bool:
        return not self._dead

    def close(self) -> None:
        self._dead = True

    def debug_exit(self) -> None:
        """Simulate an abrupt worker death: every later RPC raises."""
        self._dead = True
        self._pending = None


class SimulatedBackend:
    """Spawns in-process workers over a shared substrate."""

    name = "simulated"
    # workers read router-published shared state; the router must
    # publish() before fanning a delta/advance out
    shares_substrate = True

    def __init__(self) -> None:
        self.substrate: Substrate | None = None
        self.maintainer: LaplacianMaintainer | None = None
        self.shm_bytes_mapped = 0

    def attach(self, snapshot: GraphSnapshot) -> None:
        self.substrate = Substrate(snapshot)
        # one Ã maintainer for the whole tier (the ShardedServer
        # invariant): the router applies each GD delta once, worker
        # engines short-circuit on the already-current resident
        self.maintainer = LaplacianMaintainer(snapshot)

    def publish(self, snapshot: GraphSnapshot, features: np.ndarray,
                dinv: np.ndarray, diff=None) -> None:
        self.maintainer.update(snapshot, diff)
        self.substrate.publish(snapshot, features, dinv)

    def spawn(self, boot: WorkerBoot, *, solo: bool = False,
              clock: Callable[[], float] = time.perf_counter
              ) -> LocalTransport:
        if solo:
            service = WorkerService(boot, clock=clock)
        else:
            service = WorkerService(boot, substrate=self.substrate,
                                    maintainer=self.maintainer, clock=clock)
        return LocalTransport(boot.shard_id, service)

    def close(self) -> None:
        self.substrate = None
        self.maintainer = None
