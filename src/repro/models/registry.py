"""Model registry: the paper's three representative architectures by name."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.models.base import DynamicGNN
from repro.models.cdgcn import CDGCN
from repro.models.evolvegcn import EvolveGCN
from repro.models.tmgcn import TMGCN

__all__ = ["MODEL_NAMES", "build_model", "resolve_model_name"]

MODEL_NAMES = ("tmgcn", "cdgcn", "egcn")
_ALIASES = {"evolvegcn": "egcn"}


def resolve_model_name(name: str) -> str:
    """Canonical registry name for ``name`` (aliases resolved)."""
    canonical = _ALIASES.get(name, name)
    if canonical not in MODEL_NAMES:
        raise ConfigError(f"unknown model {name!r}; expected one of "
                          f"{MODEL_NAMES}")
    return canonical


def build_model(name: str, in_features: int = 2, hidden: int = 6,
                embed_dim: int = 6, num_layers: int = 2,
                seed: int = 0, **kwargs) -> DynamicGNN:
    """Instantiate a paper model with the paper's default widths.

    The paper sets intermediate feature lengths to 6 and uses in/out
    degree (F=2) as input features for every configuration (§6.1).
    """
    rng = np.random.default_rng(seed)
    name = resolve_model_name(name)
    if name == "tmgcn":
        return TMGCN(in_features, hidden, embed_dim, num_layers,
                     rng=rng, **kwargs)
    if name == "cdgcn":
        return CDGCN(in_features, hidden, embed_dim, num_layers,
                     rng=rng, **kwargs)
    return EvolveGCN(in_features, hidden, embed_dim, num_layers,
                     rng=rng, **kwargs)
