"""EvolveGCN (EGCN-O variant, paper §5.2, Pareja et al.).

Each layer maintains a per-timestep GCN weight evolved by an LSTM over
the weight matrix itself:

    W_t = LSTM(W_{t−1}),     Y_t = σ(Ã_t · X_t · W_t)

There is no vertex-level recurrence, so under snapshot partitioning the
whole model is communication-free apart from the end-of-epoch gradient
all-reduce (paper §5.5): the weight matrices are tiny and replicated,
and every rank can evolve them locally.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.models.base import DynamicGNN
from repro.nn.gcn import GCNLayer
from repro.nn.lstm import WeightLSTMCell
from repro.tensor import Tensor
from repro.tensor.sparse import SparseMatrix

__all__ = ["EvolveGCN"]


class EvolveGCN(DynamicGNN):
    """Multi-layer EGCN-O."""

    kind = "evolve"

    def __init__(self, in_features: int, hidden: int = 6,
                 embed_dim: int = 6, num_layers: int = 2,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if num_layers < 1:
            raise ConfigError("num_layers must be >= 1")
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.hidden = hidden
        self.embed_dim = embed_dim
        self.num_layers = num_layers
        width = in_features
        for idx in range(num_layers):
            out = embed_dim if idx == num_layers - 1 else hidden
            gcn = GCNLayer(width, out, rng)
            evolver = WeightLSTMCell(out, rng)
            setattr(self, f"gcn{idx}", gcn)
            setattr(self, f"evolver{idx}", evolver)
            width = out

    def gcn_layer(self, idx: int) -> GCNLayer:
        return getattr(self, f"gcn{idx}")

    def evolver(self, idx: int) -> WeightLSTMCell:
        return getattr(self, f"evolver{idx}")

    # -- weight evolution ---------------------------------------------------------
    def weight_init(self, idx: int) -> tuple[Tensor, Tensor]:
        """Initial weight-LSTM state: hidden = the layer's base weight."""
        return self.evolver(idx).init_state(self.gcn_layer(idx).weight)

    def evolve_weights(self, idx: int, count: int,
                       state: tuple[Tensor, Tensor]
                       ) -> tuple[list[Tensor], tuple[Tensor, Tensor]]:
        """Produce ``count`` consecutive evolved weights ``W_t``.

        Every rank replays this identical tiny computation locally —
        that is what makes the model communication-free (§5.5).
        """
        weights: list[Tensor] = []
        for _ in range(count):
            w, state = self.evolver(idx).forward(state)
            weights.append(w)
        return weights, state

    def gcn_with_weight(self, idx: int, laplacian: SparseMatrix,
                        frame: Tensor, weight: Tensor) -> Tensor:
        return self.gcn_layer(idx).forward_with_weight(laplacian, frame,
                                                       weight)

    # -- block protocol -----------------------------------------------------------------
    def init_carry(self, rows: int) -> list:
        # carry is per-layer weight-LSTM state; `rows` is irrelevant here
        return [self.weight_init(idx) for idx in range(self.num_layers)]

    def forward_block(self, laplacians, frames, carry, t0: int = 0):
        xs = frames
        new_carry = []
        for idx in range(self.num_layers):
            weights, state = self.evolve_weights(idx, len(laplacians),
                                                 carry[idx])
            gcn = self.gcn_layer(idx)
            xs = [gcn.forward_with_weight(
                      lap, x, w,
                      precomputed=self.aggregate(idx, t0 + i, lap, x))
                  for i, (lap, x, w) in enumerate(zip(laplacians, xs,
                                                      weights))]
            new_carry.append(state)
        return xs, new_carry

    def reuse_profile(self) -> list:
        # W_t evolves at every timestep, so every row of a layer's
        # output changes across time even where the aggregation did not
        return ["dense"] * self.num_layers

    # -- cost model ------------------------------------------------------------------------
    def gcn_flops_per_step(self, nnz: int, rows: int) -> tuple[float, float]:
        sparse = dense = 0.0
        for idx in range(self.num_layers):
            s, d = self.gcn_layer(idx).flops(nnz, rows)
            sparse += s
            dense += d
        return sparse, dense

    def rnn_flops_per_step(self, rows: int) -> float:
        """Weight-LSTM cost: independent of the vertex count."""
        return sum(self.evolver(idx).flops(self.gcn_layer(idx).in_features)
                   for idx in range(self.num_layers))

    def activation_bytes_per_step(self, rows: int) -> int:
        per_layer = sum(self.gcn_layer(i).out_features
                        for i in range(self.num_layers))
        return int(4 * rows * per_layer)  # fp32 activations

    def gradient_nbytes(self) -> int:
        """Size of the gradient all-reduce buffer (tiny, per §5.5)."""
        return sum(p.nbytes for p in self.parameters())
