"""CD-GCN — Concatenate Dynamic GCN (paper §5.1, Manessi et al.).

Each layer is a skip-concatenation GCN followed by a vertex-level LSTM:

    Y₀ = Ã·X,   Y₁ = Y₀·W,   Y = σ(Y₀ ∘ Y₁)        (GCN, width F+F′)
    Z_t, S_t = LSTM(S_{t−1}, Y_t)                    (RNN, window w=1)

The original model is single-layer; following the paper we extend it to
two layers for generality.  CD-GCN trains on the *raw* snapshots (no
edge-life / M-product smoothing), which is why its graph-difference
gains are smaller in the paper's Fig. 4.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.models.base import DynamicGNN
from repro.nn.gcn import GCNLayer
from repro.nn.lstm import LSTMCell
from repro.tensor import Tensor
from repro.tensor.sparse import SparseMatrix

__all__ = ["CDGCN"]


class CDGCN(DynamicGNN):
    """Two-layer (configurable) CD-GCN.

    Parameters
    ----------
    in_features:
        Input feature width ``F`` (the paper uses 2: in/out degree).
    hidden:
        Intermediate feature length (paper: 6).
    embed_dim:
        Output embedding length ``F'`` (paper: 6).
    num_layers:
        GCN+LSTM pairs (paper's study: 2).
    """

    kind = "gcn_rnn"

    def __init__(self, in_features: int, hidden: int = 6,
                 embed_dim: int = 6, num_layers: int = 2,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if num_layers < 1:
            raise ConfigError("num_layers must be >= 1")
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.hidden = hidden
        self.embed_dim = embed_dim
        self.num_layers = num_layers
        width = in_features
        for idx in range(num_layers):
            out = embed_dim if idx == num_layers - 1 else hidden
            gcn = GCNLayer(width, hidden, rng, skip_concat=True)
            lstm = LSTMCell(gcn.output_dim, out, rng)
            setattr(self, f"gcn{idx}", gcn)
            setattr(self, f"lstm{idx}", lstm)
            width = out

    # -- layer access -------------------------------------------------------------
    def gcn_layer(self, idx: int) -> GCNLayer:
        return getattr(self, f"gcn{idx}")

    def lstm_layer(self, idx: int) -> LSTMCell:
        return getattr(self, f"lstm{idx}")

    # -- distributed-engine hooks -----------------------------------------------------
    def gcn_forward(self, idx: int, laplacian: SparseMatrix, frame: Tensor,
                    precomputed: Tensor | None = None) -> Tensor:
        """One snapshot through layer ``idx``'s GCN (optionally reusing a
        pre-computed ``Ã·X`` per §5.5)."""
        gcn = self.gcn_layer(idx)
        if precomputed is not None:
            return gcn.forward_precomputed(precomputed)
        return gcn(laplacian, frame)

    def rnn_block(self, idx: int, frames: list[Tensor],
                  state: tuple[Tensor, Tensor]
                  ) -> tuple[list[Tensor], tuple[Tensor, Tensor]]:
        return self.lstm_layer(idx).run_sequence(frames, state)

    def rnn_init(self, idx: int, rows: int) -> tuple[Tensor, Tensor]:
        return self.lstm_layer(idx).init_state(rows)

    # -- block protocol ------------------------------------------------------------------
    def init_carry(self, rows: int) -> list:
        return [self.rnn_init(idx, rows) for idx in range(self.num_layers)]

    def forward_block(self, laplacians, frames, carry, t0: int = 0):
        xs = frames
        new_carry = []
        for idx in range(self.num_layers):
            gcn = self.gcn_layer(idx)
            ys = [gcn.forward_precomputed(
                      self.aggregate(idx, t0 + i, lap, x))
                  for i, (lap, x) in enumerate(zip(laplacians, xs))]
            ys, state = self.rnn_block(idx, ys, carry[idx])
            new_carry.append(state)
            xs = ys
        return xs, new_carry

    def reuse_profile(self) -> list:
        # the per-vertex LSTM re-mixes every row's state at every
        # timestep: deeper-layer inputs change densely across time
        return ["dense"] * self.num_layers

    # -- cost model ------------------------------------------------------------------------
    def gcn_flops_per_step(self, nnz: int, rows: int) -> tuple[float, float]:
        sparse = dense = 0.0
        for idx in range(self.num_layers):
            s, d = self.gcn_layer(idx).flops(nnz, rows)
            sparse += s
            dense += d
        return sparse, dense

    def rnn_flops_per_step(self, rows: int) -> float:
        return sum(self.lstm_layer(idx).flops(rows)
                   for idx in range(self.num_layers))

    def activation_bytes_per_step(self, rows: int) -> int:
        per_layer = sum(self.gcn_layer(i).output_dim +
                        2 * self.lstm_layer(i).hidden_size
                        for i in range(self.num_layers))
        return int(4 * rows * per_layer)  # fp32 activations
