"""TM-GCN — tensor M-product dynamic GCN (paper §5.3, Malik et al.).

Each layer pairs a plain GCN with the parameter-free M-transform: the
RNN component is a trailing-window average along the timeline.  TM-GCN
additionally smooths its *input* (both the adjacency tensor and the
feature tensor) with the same M-product in preprocessing (§5.4) — that
half lives in :mod:`repro.train.preprocess`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.models.base import DynamicGNN
from repro.nn.gcn import GCNLayer
from repro.nn.mproduct import m_transform_flops, m_transform_frames
from repro.tensor import Tensor
from repro.tensor.sparse import SparseMatrix

__all__ = ["TMGCN"]


class TMGCN(DynamicGNN):
    """Multi-layer TM-GCN.

    Parameters
    ----------
    window:
        The M-product window ``w`` (both the RNN aggregation width and
        the carry size between checkpoint blocks).
    """

    kind = "gcn_rnn"

    def __init__(self, in_features: int, hidden: int = 6,
                 embed_dim: int = 6, num_layers: int = 2, window: int = 3,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if num_layers < 1:
            raise ConfigError("num_layers must be >= 1")
        if window < 1:
            raise ConfigError("window must be >= 1")
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.hidden = hidden
        self.embed_dim = embed_dim
        self.num_layers = num_layers
        self.window = window
        width = in_features
        for idx in range(num_layers):
            out = embed_dim if idx == num_layers - 1 else hidden
            setattr(self, f"gcn{idx}", GCNLayer(width, out, rng))
            width = out

    def gcn_layer(self, idx: int) -> GCNLayer:
        return getattr(self, f"gcn{idx}")

    # -- distributed-engine hooks ---------------------------------------------------
    def gcn_forward(self, idx: int, laplacian: SparseMatrix, frame: Tensor,
                    precomputed: Tensor | None = None) -> Tensor:
        gcn = self.gcn_layer(idx)
        if precomputed is not None:
            return gcn.forward_precomputed(precomputed)
        return gcn(laplacian, frame)

    def rnn_block(self, idx: int, frames: list[Tensor],
                  state: list[Tensor]) -> tuple[list[Tensor], list[Tensor]]:
        return m_transform_frames(frames, self.window, history=state)

    def rnn_init(self, idx: int, rows: int) -> list[Tensor]:
        return []  # empty history at the start of the timeline

    # -- block protocol -----------------------------------------------------------------
    def init_carry(self, rows: int) -> list:
        return [self.rnn_init(idx, rows) for idx in range(self.num_layers)]

    def forward_block(self, laplacians, frames, carry, t0: int = 0):
        xs = frames
        new_carry = []
        for idx in range(self.num_layers):
            gcn = self.gcn_layer(idx)
            ys = [gcn.forward_precomputed(
                      self.aggregate(idx, t0 + i, lap, x))
                  for i, (lap, x) in enumerate(zip(laplacians, xs))]
            ys, history = self.rnn_block(idx, ys, carry[idx])
            new_carry.append(history)
            xs = ys
        return xs, new_carry

    def reuse_profile(self) -> list:
        # the M-transform is a trailing-window average over GCN outputs
        # whose weights are shared across timesteps: a row differs from
        # the previous timestep only if one of the last ``window``
        # aggregations touched it, so deeper layers stay patchable
        return [("window", self.window)] * self.num_layers

    # -- cost model -----------------------------------------------------------------------
    def gcn_flops_per_step(self, nnz: int, rows: int) -> tuple[float, float]:
        sparse = dense = 0.0
        for idx in range(self.num_layers):
            s, d = self.gcn_layer(idx).flops(nnz, rows)
            sparse += s
            dense += d
        return sparse, dense

    def rnn_flops_per_step(self, rows: int) -> float:
        return sum(m_transform_flops(rows, self.gcn_layer(idx).out_features,
                                     self.window)
                   for idx in range(self.num_layers))

    def activation_bytes_per_step(self, rows: int) -> int:
        per_layer = sum(2 * self.gcn_layer(i).out_features
                        for i in range(self.num_layers))
        return int(4 * rows * per_layer)  # fp32 activations
