"""The three DTDG architectures of the paper's study (§5)."""

from repro.models.base import DynamicGNN, detach_carry
from repro.models.cdgcn import CDGCN
from repro.models.evolvegcn import EvolveGCN
from repro.models.tmgcn import TMGCN
from repro.models.registry import MODEL_NAMES, build_model

__all__ = ["DynamicGNN", "detach_carry", "CDGCN", "EvolveGCN", "TMGCN",
           "MODEL_NAMES", "build_model"]
