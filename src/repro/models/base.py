"""The dynamic-GNN model framework (paper §2.2).

A model is a stack of layers, each pairing a GCN component (independent
per snapshot) with an RNN component (independent per vertex, dependent
along the timeline).  Models execute **block-wise**: ``forward_block``
consumes a contiguous run of timesteps plus a *carry* — the ``π_b``
payload of paper Fig. 2 (RNN states and trailing window frames) — and
returns the embeddings plus the carry for the next block.  Running a
single block over the whole timeline recovers the plain forward pass.

Two model kinds exist, distinguished by ``kind``:

* ``"gcn_rnn"`` (CD-GCN, TM-GCN) — the RNN works on vertex features, so
  the distributed engine must redistribute between the GCN and RNN
  stages (§4.2);
* ``"evolve"`` (EvolveGCN) — the recurrence runs over the *replicated*
  GCN weights, making every stage communication-free (§5.5).
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigError
from repro.tensor import Module, Tensor
from repro.tensor.sparse import SparseMatrix, spmm

__all__ = ["DynamicGNN", "detach_carry"]


def detach_carry(carry: Any) -> Any:
    """Recursively detach every Tensor in a carry structure.

    Checkpoint block boundaries store the carry *detached* so each
    block's autograd graph is independent (paper §3.1); the gradient
    flowing into the carry is handled explicitly by the checkpointed
    backward pass.
    """
    if carry is None:
        return None
    if isinstance(carry, Tensor):
        return carry.detach()
    if isinstance(carry, tuple):
        return tuple(detach_carry(c) for c in carry)
    if isinstance(carry, list):
        return [detach_carry(c) for c in carry]
    if isinstance(carry, dict):
        return {k: detach_carry(v) for k, v in carry.items()}
    return carry


class DynamicGNN(Module):
    """Base class for the three paper models.

    Subclasses set ``kind``, ``embed_dim`` and ``num_layers`` and
    implement the block protocol below.
    """

    kind: str = "gcn_rnn"
    embed_dim: int
    num_layers: int

    # -- block protocol (must be implemented) ---------------------------------------
    def init_carry(self, rows: int) -> list:
        """Fresh per-layer carry for a timeline starting at t=0.

        ``rows`` is the number of vertex rows the RNN will see (``N`` on
        a single device, ``N/P`` per rank under redistribution).
        """
        raise NotImplementedError

    def forward_block(self, laplacians: list[SparseMatrix],
                      frames: list[Tensor],
                      carry: list, t0: int = 0) -> tuple[list[Tensor], list]:
        """Process one contiguous block of timesteps.

        ``t0`` is the block's global starting timestep — the index the
        aggregation hook (cross-timestep reuse) keys its cache by.
        """
        raise NotImplementedError

    # -- aggregation hook (cross-timestep reuse) -----------------------------------
    def set_aggregation_hook(self, hook) -> None:
        """Install ``hook(layer_idx, t, laplacian, frame) -> Tensor`` as
        the sparse-aggregation kernel; ``None`` restores plain
        :func:`~repro.tensor.sparse.spmm`.  The training tier points
        this at an :class:`~repro.train.reuse.AggregationCache` so
        ``Ã_t·X`` products are patched from the previous timestep
        instead of recomputed in full."""
        self._agg_hook = hook

    def aggregate(self, idx: int, t: int, laplacian: SparseMatrix,
                  frame: Tensor) -> Tensor:
        """The layer-``idx`` sparse aggregation at global timestep ``t``."""
        hook = getattr(self, "_agg_hook", None)
        if hook is None:
            return spmm(laplacian, frame)
        return hook(idx, t, laplacian, frame)

    def reuse_profile(self) -> list:
        """Per-layer temporal propagation for the reuse frontier.

        Entry ``idx`` describes how layer ``idx``'s post-aggregation
        transform spreads a row's change across adjacent timesteps:

        * ``"dense"`` — every row can change between timesteps (a
          per-vertex recurrence or per-timestep weights); downstream
          aggregations cannot be patched and fall back to full SpMM;
        * ``("window", w)`` — a trailing-window mix: a row differs from
          the previous timestep only if one of the last ``w``
          aggregations touched it (TM-GCN's M-transform);
        * ``"local"`` — a time-invariant row-local map: the dirty set
          passes through unchanged.
        """
        return ["dense"] * self.num_layers

    # -- conveniences -----------------------------------------------------------------
    def forward(self, laplacians: list[SparseMatrix],
                frames: list[Tensor]) -> list[Tensor]:
        """Whole-timeline forward (single block)."""
        if len(laplacians) != len(frames):
            raise ConfigError(
                f"{len(laplacians)} laplacians vs {len(frames)} frames")
        if not frames:
            return []
        outs, _ = self.forward_block(laplacians, frames,
                                     self.init_carry(frames[0].shape[0]),
                                     t0=0)
        return outs

    # -- cost model (per single timestep) ------------------------------------------------
    def gcn_flops_per_step(self, nnz: int, rows: int) -> tuple[float, float]:
        """(sparse, dense) FLOPs of all GCN components at one timestep."""
        raise NotImplementedError

    def rnn_flops_per_step(self, rows: int) -> float:
        """Dense FLOPs of all RNN components at one timestep."""
        raise NotImplementedError

    def activation_bytes_per_step(self, rows: int) -> int:
        """Rough bytes of intermediate activations per timestep (memory
        accounting for the checkpoint study)."""
        raise NotImplementedError
