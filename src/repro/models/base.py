"""The dynamic-GNN model framework (paper §2.2).

A model is a stack of layers, each pairing a GCN component (independent
per snapshot) with an RNN component (independent per vertex, dependent
along the timeline).  Models execute **block-wise**: ``forward_block``
consumes a contiguous run of timesteps plus a *carry* — the ``π_b``
payload of paper Fig. 2 (RNN states and trailing window frames) — and
returns the embeddings plus the carry for the next block.  Running a
single block over the whole timeline recovers the plain forward pass.

Two model kinds exist, distinguished by ``kind``:

* ``"gcn_rnn"`` (CD-GCN, TM-GCN) — the RNN works on vertex features, so
  the distributed engine must redistribute between the GCN and RNN
  stages (§4.2);
* ``"evolve"`` (EvolveGCN) — the recurrence runs over the *replicated*
  GCN weights, making every stage communication-free (§5.5).
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigError
from repro.tensor import Module, Tensor
from repro.tensor.sparse import SparseMatrix

__all__ = ["DynamicGNN", "detach_carry"]


def detach_carry(carry: Any) -> Any:
    """Recursively detach every Tensor in a carry structure.

    Checkpoint block boundaries store the carry *detached* so each
    block's autograd graph is independent (paper §3.1); the gradient
    flowing into the carry is handled explicitly by the checkpointed
    backward pass.
    """
    if carry is None:
        return None
    if isinstance(carry, Tensor):
        return carry.detach()
    if isinstance(carry, tuple):
        return tuple(detach_carry(c) for c in carry)
    if isinstance(carry, list):
        return [detach_carry(c) for c in carry]
    if isinstance(carry, dict):
        return {k: detach_carry(v) for k, v in carry.items()}
    return carry


class DynamicGNN(Module):
    """Base class for the three paper models.

    Subclasses set ``kind``, ``embed_dim`` and ``num_layers`` and
    implement the block protocol below.
    """

    kind: str = "gcn_rnn"
    embed_dim: int
    num_layers: int

    # -- block protocol (must be implemented) ---------------------------------------
    def init_carry(self, rows: int) -> list:
        """Fresh per-layer carry for a timeline starting at t=0.

        ``rows`` is the number of vertex rows the RNN will see (``N`` on
        a single device, ``N/P`` per rank under redistribution).
        """
        raise NotImplementedError

    def forward_block(self, laplacians: list[SparseMatrix],
                      frames: list[Tensor],
                      carry: list) -> tuple[list[Tensor], list]:
        """Process one contiguous block of timesteps."""
        raise NotImplementedError

    # -- conveniences -----------------------------------------------------------------
    def forward(self, laplacians: list[SparseMatrix],
                frames: list[Tensor]) -> list[Tensor]:
        """Whole-timeline forward (single block)."""
        if len(laplacians) != len(frames):
            raise ConfigError(
                f"{len(laplacians)} laplacians vs {len(frames)} frames")
        if not frames:
            return []
        outs, _ = self.forward_block(laplacians, frames,
                                     self.init_carry(frames[0].shape[0]))
        return outs

    # -- cost model (per single timestep) ------------------------------------------------
    def gcn_flops_per_step(self, nnz: int, rows: int) -> tuple[float, float]:
        """(sparse, dense) FLOPs of all GCN components at one timestep."""
        raise NotImplementedError

    def rnn_flops_per_step(self, rows: int) -> float:
        """Dense FLOPs of all RNN components at one timestep."""
        raise NotImplementedError

    def activation_bytes_per_step(self, rows: int) -> int:
        """Rough bytes of intermediate activations per timestep (memory
        accounting for the checkpoint study)."""
        raise NotImplementedError
