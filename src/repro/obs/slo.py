"""Declarative service-level objectives over registry metrics.

An :class:`SloEngine` watches series that already exist in a
:class:`~repro.obs.registry.MetricsRegistry` — nothing here records on a
hot path — and answers the operator question "are we meeting our
targets, and how fast are we burning the error budget?".  Two target
shapes cover the SLOs the ROADMAP's scenario harness calls for:

* **quantile targets** over histograms (p99 query latency under a
  threshold): the observed value is the histogram's percentile and the
  *burn rate* is ``frac_over(threshold) / (1 - q/100)`` — 1.0 means bad
  events arrive exactly as fast as the budget allows, 2.0 means the
  budget is being consumed at twice the sustainable rate;
* **ratio targets** over counter pairs (shed rate = shed / submitted,
  heartbeat-miss rate = failures / heartbeats): each
  :meth:`SloEngine.evaluate` tick snapshots the counters into a rolling
  window of the last ``window`` ticks, so the observed bad fraction is
  *recent* behavior, not lifetime average — a burst that has passed
  stops violating once it leaves the window.  Burn rate is
  ``bad_fraction / threshold``.

Targets with no data yet (an empty histogram, zero window traffic)
report ``ok=True`` with a NaN value: an SLO cannot be violated by
silence.  Everything is plain Python and deterministic — the dashboard
(:mod:`repro.obs.console`) and the scenario benches render the same
:class:`SloStatus` rows.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

__all__ = ["SloStatus", "SloEngine"]


@dataclass(frozen=True)
class SloStatus:
    """One target's verdict at one :meth:`SloEngine.evaluate` tick."""

    name: str
    ok: bool
    value: float          # observed quantile / bad fraction (NaN = no data)
    threshold: float
    burn: float           # error-budget burn rate (1.0 = at allowance)
    detail: str

    @property
    def label(self) -> str:
        return "ok" if self.ok else "VIOLATED"


class _QuantileTarget:
    __slots__ = ("name", "metric", "labels", "q", "threshold")

    def __init__(self, name, metric, labels, q, threshold) -> None:
        self.name = name
        self.metric = metric
        self.labels = labels
        self.q = float(q)
        self.threshold = float(threshold)

    def evaluate(self, registry) -> SloStatus:
        hist = registry.get(self.metric, **self.labels)
        value = float("nan") if hist is None else hist.percentile(self.q)
        if math.isnan(value):
            return SloStatus(self.name, True, value, self.threshold,
                             0.0, "no data")
        budget = 1.0 - self.q / 100.0
        bad = hist.frac_over(self.threshold)
        burn = (bad / budget) if budget > 0 else \
            (float("inf") if bad > 0 else 0.0)
        ok = value <= self.threshold
        detail = (f"p{self.q:g}({self.metric}) = {value:.3g} vs "
                  f"{self.threshold:g}")
        return SloStatus(self.name, ok, value, self.threshold, burn,
                         detail)


class _RatioTarget:
    __slots__ = ("name", "bad", "bad_labels", "total", "total_labels",
                 "threshold", "history")

    def __init__(self, name, bad, bad_labels, total, total_labels,
                 threshold, window) -> None:
        self.name = name
        self.bad = bad
        self.bad_labels = bad_labels
        self.total = total
        self.total_labels = total_labels
        self.threshold = float(threshold)
        # window+1 snapshots span exactly `window` inter-tick deltas
        self.history: deque = deque(maxlen=window + 1)

    def evaluate(self, registry) -> SloStatus:
        bad = registry.value(self.bad, **self.bad_labels)
        total = registry.value(self.total, **self.total_labels)
        self.history.append((bad, total))
        bad0, total0 = self.history[0]
        dtotal = total - total0
        if dtotal <= 0:
            return SloStatus(self.name, True, float("nan"),
                             self.threshold, 0.0, "no window traffic")
        frac = max(0.0, bad - bad0) / dtotal
        burn = (frac / self.threshold) if self.threshold > 0 else \
            (float("inf") if frac > 0 else 0.0)
        ok = frac <= self.threshold
        detail = (f"{self.bad}/{self.total} = {frac:.4g} vs "
                  f"{self.threshold:g} over last {len(self.history) - 1} "
                  f"tick(s)")
        return SloStatus(self.name, ok, frac, self.threshold, burn,
                         detail)


class SloEngine:
    """Evaluates declared targets against one registry.

    Parameters
    ----------
    registry:
        The :class:`MetricsRegistry` the targets read (on a router this
        is the merged cluster registry, so SLOs see every worker).
    window:
        Rolling-window length, in :meth:`evaluate` ticks, for ratio
        targets.  Quantile targets read the histogram's bounded
        reservoir, which is already recency-weighted by eviction.
    """

    def __init__(self, registry, *, window: int = 60) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.registry = registry
        self.window = int(window)
        self._targets: list = []

    # -- declaration -------------------------------------------------------------------
    def quantile(self, name: str, metric: str, *, q: float = 99.0,
                 threshold: float, labels: dict | None = None
                 ) -> "SloEngine":
        """Declare "the ``q``-th percentile of histogram ``metric``
        stays at or under ``threshold``" (e.g. p99 latency).  Returns
        self for chaining."""
        if not 0.0 < q < 100.0:
            raise ValueError(f"quantile must be in (0, 100), got {q}")
        self._targets.append(_QuantileTarget(name, metric,
                                             dict(labels or {}), q,
                                             threshold))
        return self

    def ratio(self, name: str, bad: str, total: str, *,
              threshold: float, bad_labels: dict | None = None,
              total_labels: dict | None = None) -> "SloEngine":
        """Declare "counter ``bad`` stays at or under ``threshold`` as
        a fraction of counter ``total``, over the rolling window"
        (e.g. shed rate, heartbeat-miss rate).  Returns self."""
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        self._targets.append(_RatioTarget(name, bad,
                                          dict(bad_labels or {}),
                                          total, dict(total_labels or {}),
                                          threshold, self.window))
        return self

    # -- evaluation --------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._targets)

    def evaluate(self) -> list[SloStatus]:
        """One tick: read every target, advance ratio windows, return
        verdicts in declaration order."""
        return [t.evaluate(self.registry) for t in self._targets]

    def healthy(self) -> bool:
        """True iff every target is currently met (evaluates a tick)."""
        return all(s.ok for s in self.evaluate())
