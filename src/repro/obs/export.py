"""Exporters: Prometheus text exposition, JSONL event sink, tree dumps.

Three consumers, three formats, one registry/tracer behind all of them:

* :func:`prometheus_text` — the ``/metrics`` exposition format
  (``# HELP`` / ``# TYPE`` + labeled sample lines; histograms export as
  summaries with quantile lines plus ``_sum``/``_count``);
* :class:`JsonlSink` + :func:`metrics_events` / :func:`span_events` —
  newline-delimited JSON events for log shipping;
* :func:`render_span_tree` / :func:`render_metrics` — human-readable
  dumps for terminals and bench reports.
"""

from __future__ import annotations

import io
import json
import math

from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.tracing import Span, Tracer

__all__ = ["prometheus_text", "metrics_events", "span_events",
           "JsonlSink", "render_span_tree", "render_metrics",
           "span_seconds_by_name"]

_QUANTILES = ((0.5, "p50"), (0.95, "p95"), (0.99, "p99"))


def _fmt(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.10g}"


def _label_str(labels: dict) -> str:
    if not labels:
        return ""
    parts = []
    for key in sorted(labels):
        val = str(labels[key]).replace("\\", "\\\\") \
            .replace('"', '\\"').replace("\n", "\\n")
        parts.append(f'{key}="{val}"')
    return "{" + ",".join(parts) + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: list[str] = []
    for name, kind, help, series in registry.families():
        if help:
            lines.append(f"# HELP {name} {help}")
        lines.append(f"# TYPE {name} "
                     f"{'summary' if kind == 'histogram' else kind}")
        for labels, metric in series:
            if kind == "histogram":
                # an empty histogram has no quantiles — emitting NaN
                # lines breaks strict exposition parsers, so only
                # _sum/_count appear until the first observation
                if metric.count > 0:
                    for q, _ in _QUANTILES:
                        qlabels = dict(labels, quantile=_fmt(q))
                        lines.append(
                            f"{name}{_label_str(qlabels)} "
                            f"{_fmt(metric.percentile(q * 100.0))}")
                lines.append(f"{name}_sum{_label_str(labels)} "
                             f"{_fmt(metric.sum)}")
                lines.append(f"{name}_count{_label_str(labels)} "
                             f"{_fmt(metric.count)}")
            else:
                lines.append(f"{name}{_label_str(labels)} "
                             f"{_fmt(metric.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- JSONL events --------------------------------------------------------------------------
def metrics_events(registry: MetricsRegistry) -> list[dict]:
    """One ``{"type": "metric", ...}`` event per labeled series."""
    events = []
    for name, kind, _, series in registry.families():
        for labels, metric in series:
            event: dict = {"type": "metric", "name": name, "kind": kind}
            if labels:
                event["labels"] = labels
            if isinstance(metric, Histogram):
                event["count"] = metric.count
                event["sum"] = metric.sum
                for q, key in _QUANTILES:
                    event[key] = metric.percentile(q * 100.0)
            else:
                event["value"] = metric.value
            events.append(event)
    return events


def span_events(source) -> list[dict]:
    """``{"type": "span", ...}`` events for finished root spans.

    ``source`` is a :class:`~repro.obs.tracing.Tracer` (its retained
    roots), one :class:`~repro.obs.tracing.Span`, or an iterable of
    spans; children ride along nested inside their root's event.
    """
    if isinstance(source, Tracer):
        spans = list(source.roots)
    elif isinstance(source, Span):
        spans = [source]
    else:
        spans = list(source)
    return [dict(span.to_dict(), type="span") for span in spans]


class JsonlSink:
    """Append JSON events, one per line, to a path or file object.

    NaN-safe: non-finite floats are emitted as ``null`` (strict JSON —
    the files must stay machine-readable by any parser).
    """

    def __init__(self, target) -> None:
        if isinstance(target, (str, bytes)):
            self._fh = open(target, "a", encoding="utf-8")
            self._owns = True
        else:
            self._fh = target
            self._owns = False
        self.events_written = 0

    @staticmethod
    def _clean(obj):
        if isinstance(obj, float) and not math.isfinite(obj):
            return None
        if isinstance(obj, dict):
            return {k: JsonlSink._clean(v) for k, v in obj.items()}
        if isinstance(obj, (list, tuple)):
            return [JsonlSink._clean(v) for v in obj]
        return obj

    def emit(self, event: dict) -> None:
        self._fh.write(json.dumps(self._clean(event), sort_keys=True,
                                  allow_nan=False) + "\n")
        self.events_written += 1

    def emit_many(self, events) -> int:
        count = 0
        for event in events:
            self.emit(event)
            count += 1
        return count

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


# -- human-readable dumps -------------------------------------------------------------------
def render_span_tree(source, *, min_ms: float = 0.0) -> str:
    """Indented tree of spans with durations and attributes::

        serve.ingest                          2.134ms  events=130
          serve.commit                        0.612ms
          serve.maintainer                    0.188ms
    """
    if isinstance(source, Tracer):
        spans = list(source.roots)
    elif isinstance(source, Span):
        spans = [source]
    else:
        spans = list(source)
    out = io.StringIO()
    for root in spans:
        for depth, span in root.walk():
            if span.duration_ms < min_ms and depth > 0:
                continue
            label = "  " * depth + span.name
            attrs = " ".join(f"{k}={v}" for k, v in span.attrs.items())
            line = f"{label:<42s} {span.duration_ms:9.3f}ms"
            out.write(line + (f"  {attrs}" if attrs else "") + "\n")
    return out.getvalue()


def render_metrics(registry: MetricsRegistry) -> str:
    """Aligned name/labels/value listing (terminal-friendly)."""
    rows = []
    for name, kind, _, series in registry.families():
        for labels, metric in series:
            if isinstance(metric, Histogram):
                value = (f"count={metric.count} mean={_fmt(metric.mean)} "
                         f"p50={_fmt(metric.p50)} p99={_fmt(metric.p99)}")
            else:
                value = _fmt(metric.value)
            rows.append((f"{name}{_label_str(labels)}", value))
    if not rows:
        return ""
    width = max(len(name) for name, _ in rows)
    return "\n".join(f"{name:<{width}s}  {value}"
                     for name, value in rows) + "\n"


def span_seconds_by_name(registry: MetricsRegistry) -> dict[str, float]:
    """Cumulative ``span_seconds_total`` as ``{span name: seconds}`` —
    the per-stage breakdown benches report from."""
    out: dict[str, float] = {}
    for name, _, _, series in registry.families():
        if name != "span_seconds_total":
            continue
        for labels, metric in series:
            span = labels.get("span")
            if span:
                out[span] = metric.value
    return out
