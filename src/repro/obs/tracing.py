"""Span tracing for the delta hot path.

A :class:`Tracer` answers "where did this commit's milliseconds go?":
``trace(name)`` opens a span, nested ``trace`` calls build a
parent/child tree, and closing the root files the finished tree into a
bounded buffer.  Spans carry wall time plus arbitrary user attributes::

    with tracer.trace("serve.ingest", events=130):
        with tracer.trace("serve.commit"):
            ...

**Disabled is the default and is (almost) free**: ``trace()`` on a
disabled tracer returns one shared no-op span object without
allocating, so instrumentation can live permanently on hot paths — the
serving-bench overhead guard in CI holds this to "within noise".

When the tracer is built over a :class:`~repro.obs.registry.MetricsRegistry`
every finished span also folds into two labeled counter families —
``span_seconds_total{span=...}`` and ``span_calls_total{span=...}`` —
so cumulative per-stage breakdowns are readable from the same registry
that holds the tier counters (one source of truth for benches and live
exporters alike).

**Traces cross process boundaries** (Dapper-style): every entered span
carries a ``trace_id`` / ``span_id`` / ``parent_id``,
:meth:`Tracer.current_context` snapshots the innermost open span as a
two-tuple trace context an RPC envelope can carry, ``trace(name,
parent=ctx)`` opens a span parented under that *remote* context, and
finished spans round-trip through :meth:`Span.to_wire` /
:meth:`Span.from_wire` so a router can :meth:`Tracer.graft` a worker's
shipped spans back under the RPC spans that caused them — one causal
tree per query, stitched across processes.

Single-threaded by design, like the serving tier it instruments: one
tracer has one active span stack.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable

__all__ = ["Span", "Tracer", "NULL_SPAN"]


class Span:
    """One timed region; closing it attaches it to its parent."""

    __slots__ = ("name", "attrs", "t0", "duration_s", "children",
                 "trace_id", "span_id", "parent_id", "_tracer",
                 "_remote_parent")

    def __init__(self, tracer: "Tracer | None", name: str,
                 attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.t0 = 0.0
        self.duration_s = 0.0
        self.children: list["Span"] = []
        self.trace_id: str | None = None
        self.span_id: str | None = None
        self.parent_id: str | None = None
        self._remote_parent: tuple | None = None

    def set(self, **attrs) -> None:
        """Attach/overwrite user attributes on the open span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._tracer._assign_ids(self)
        self._tracer._push(self)
        self.t0 = self._tracer.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = self._tracer.clock() - self.t0
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        return False

    @property
    def duration_ms(self) -> float:
        return self.duration_s * 1e3

    def to_dict(self) -> dict:
        """JSON-friendly nested representation."""
        out = {"name": self.name, "duration_ms": self.duration_ms}
        if self.span_id is not None:
            out["trace_id"] = self.trace_id
            out["span_id"] = self.span_id
            if self.parent_id is not None:
                out["parent_id"] = self.parent_id
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    # -- cross-process shipping --------------------------------------------------------
    def to_wire(self) -> dict:
        """Self-contained plain-data form (ids + subtree) an RPC reply
        can carry; :meth:`from_wire` round-trips it exactly."""
        return {"name": self.name, "attrs": dict(self.attrs),
                "duration_s": self.duration_s,
                "trace_id": self.trace_id, "span_id": self.span_id,
                "parent_id": self.parent_id,
                "children": [c.to_wire() for c in self.children]}

    @classmethod
    def from_wire(cls, wire: dict) -> "Span":
        """Rebuild a finished span (tracer-less: it can be walked,
        rendered and exported, but never re-entered)."""
        span = cls(None, wire["name"], dict(wire.get("attrs") or {}))
        span.duration_s = float(wire.get("duration_s", 0.0))
        span.trace_id = wire.get("trace_id")
        span.span_id = wire.get("span_id")
        span.parent_id = wire.get("parent_id")
        span.children = [cls.from_wire(c)
                         for c in wire.get("children", ())]
        return span

    def walk(self):
        """Yield ``(depth, span)`` over the subtree, pre-order."""
        stack = [(0, self)]
        while stack:
            depth, span = stack.pop()
            yield depth, span
            for child in reversed(span.children):
                stack.append((depth + 1, child))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Span({self.name!r}, {self.duration_ms:.3f}ms, "
                f"children={len(self.children)})")


class _NullSpan:
    """The shared do-nothing span a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Builds span trees; a bounded deque keeps the newest roots.

    Parameters
    ----------
    enabled:
        Off by default — the no-op fast path.  Flip live with
        :meth:`enable` / :meth:`disable` (an open span finishes
        normally; only new ``trace`` calls see the switch).
    registry:
        Optional metrics registry receiving the cumulative
        ``span_seconds_total`` / ``span_calls_total`` series.
    max_roots:
        Finished root spans retained (oldest evicted first).
    node:
        This tracer's process identity, prefixed onto every span id so
        ids stay unique across a router and its workers
        (``"main:17"``, ``"worker3:4"``).
    """

    def __init__(self, enabled: bool = False, *,
                 registry=None, max_roots: int = 512,
                 node: str = "main",
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.enabled = enabled
        self.registry = registry
        self.clock = clock
        self.node = node
        self.roots: deque[Span] = deque(maxlen=max_roots)
        self._stack: list[Span] = []
        self._seq = 0

    def trace(self, name: str, parent: tuple | None = None, **attrs):
        """Open a span (use as a context manager).  Disabled tracers
        return the shared :data:`NULL_SPAN` without allocating.

        ``parent`` is an optional *remote* trace context — the
        ``(trace_id, span_id)`` tuple another process's
        :meth:`current_context` produced — under which this span is
        parented when the local stack is empty (an RPC handler joining
        its caller's trace)."""
        if not self.enabled:
            return NULL_SPAN
        span = Span(self, name, attrs)
        span._remote_parent = parent
        return span

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        """Drop finished roots (the active stack is left alone)."""
        self.roots.clear()

    @property
    def current(self) -> Span | None:
        """The innermost open span (``None`` outside any trace)."""
        return self._stack[-1] if self._stack else None

    def current_context(self) -> tuple | None:
        """The innermost open span as a ``(trace_id, span_id)`` trace
        context an RPC envelope can carry — ``None`` when tracing is
        off or no span is open, so the disabled hot path allocates
        nothing."""
        if not self.enabled or not self._stack:
            return None
        top = self._stack[-1]
        return (top.trace_id, top.span_id)

    def graft(self, wire_spans) -> int:
        """Stitch finished spans shipped from another process into the
        retained trees: each wire span whose ``parent_id`` names a span
        in this tracer's roots becomes that span's child; orphans (the
        parent root was already evicted) are kept as roots so the data
        is never dropped.  Returns the number of spans grafted.

        Grafted spans do **not** fold into the span counters — they
        already folded into their home process's registry, which is
        harvested separately (no double counting)."""
        wire_spans = list(wire_spans)
        if not wire_spans:
            return 0
        index: dict[str, Span] = {}
        for root in self.roots:
            for _, span in root.walk():
                if span.span_id is not None:
                    index[span.span_id] = span
        for wire in wire_spans:
            span = Span.from_wire(wire)
            parent = index.get(span.parent_id)
            if parent is not None:
                parent.children.append(span)
            else:
                self.roots.append(span)
            for _, s in span.walk():
                if s.span_id is not None:
                    index[s.span_id] = s
        return len(wire_spans)

    def drain_finished(self) -> list[dict]:
        """The retained roots in wire form, clearing them — what a
        worker ships back on a telemetry harvest."""
        out = [span.to_wire() for span in self.roots]
        self.roots.clear()
        return out

    def annotate(self, **attrs) -> None:
        """Attach attributes to the innermost open span, if any —
        lets helpers deep in the call tree enrich their caller's span
        without threading the span object through."""
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    # -- span lifecycle (driven by Span.__enter__/__exit__) ----------------------------
    def _assign_ids(self, span: Span) -> None:
        self._seq += 1
        span.span_id = f"{self.node}:{self._seq}"
        if self._stack:
            top = self._stack[-1]
            span.parent_id = top.span_id
            span.trace_id = top.trace_id
        elif span._remote_parent is not None:
            span.trace_id, span.parent_id = span._remote_parent
        else:
            span.trace_id = span.span_id

    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # tolerate a mismatched pop (an abandoned span mid-stack) by
        # unwinding to it — never corrupt the stack on caller bugs
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        if self.registry is not None:
            self.registry.counter(
                "span_seconds_total",
                "Cumulative wall seconds per span name",
                span=span.name).inc(span.duration_s)
            self.registry.counter(
                "span_calls_total",
                "Completed spans per span name",
                span=span.name).inc()
