"""Span tracing for the delta hot path.

A :class:`Tracer` answers "where did this commit's milliseconds go?":
``trace(name)`` opens a span, nested ``trace`` calls build a
parent/child tree, and closing the root files the finished tree into a
bounded buffer.  Spans carry wall time plus arbitrary user attributes::

    with tracer.trace("serve.ingest", events=130):
        with tracer.trace("serve.commit"):
            ...

**Disabled is the default and is (almost) free**: ``trace()`` on a
disabled tracer returns one shared no-op span object without
allocating, so instrumentation can live permanently on hot paths — the
serving-bench overhead guard in CI holds this to "within noise".

When the tracer is built over a :class:`~repro.obs.registry.MetricsRegistry`
every finished span also folds into two labeled counter families —
``span_seconds_total{span=...}`` and ``span_calls_total{span=...}`` —
so cumulative per-stage breakdowns are readable from the same registry
that holds the tier counters (one source of truth for benches and live
exporters alike).

Single-threaded by design, like the serving tier it instruments: one
tracer has one active span stack.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable

__all__ = ["Span", "Tracer", "NULL_SPAN"]


class Span:
    """One timed region; closing it attaches it to its parent."""

    __slots__ = ("name", "attrs", "t0", "duration_s", "children",
                 "_tracer")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.t0 = 0.0
        self.duration_s = 0.0
        self.children: list["Span"] = []

    def set(self, **attrs) -> None:
        """Attach/overwrite user attributes on the open span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.t0 = self._tracer.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = self._tracer.clock() - self.t0
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        return False

    @property
    def duration_ms(self) -> float:
        return self.duration_s * 1e3

    def to_dict(self) -> dict:
        """JSON-friendly nested representation."""
        out = {"name": self.name, "duration_ms": self.duration_ms}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def walk(self):
        """Yield ``(depth, span)`` over the subtree, pre-order."""
        stack = [(0, self)]
        while stack:
            depth, span = stack.pop()
            yield depth, span
            for child in reversed(span.children):
                stack.append((depth + 1, child))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Span({self.name!r}, {self.duration_ms:.3f}ms, "
                f"children={len(self.children)})")


class _NullSpan:
    """The shared do-nothing span a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Builds span trees; a bounded deque keeps the newest roots.

    Parameters
    ----------
    enabled:
        Off by default — the no-op fast path.  Flip live with
        :meth:`enable` / :meth:`disable` (an open span finishes
        normally; only new ``trace`` calls see the switch).
    registry:
        Optional metrics registry receiving the cumulative
        ``span_seconds_total`` / ``span_calls_total`` series.
    max_roots:
        Finished root spans retained (oldest evicted first).
    """

    def __init__(self, enabled: bool = False, *,
                 registry=None, max_roots: int = 512,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.enabled = enabled
        self.registry = registry
        self.clock = clock
        self.roots: deque[Span] = deque(maxlen=max_roots)
        self._stack: list[Span] = []

    def trace(self, name: str, **attrs):
        """Open a span (use as a context manager).  Disabled tracers
        return the shared :data:`NULL_SPAN` without allocating."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        """Drop finished roots (the active stack is left alone)."""
        self.roots.clear()

    @property
    def current(self) -> Span | None:
        """The innermost open span (``None`` outside any trace)."""
        return self._stack[-1] if self._stack else None

    def annotate(self, **attrs) -> None:
        """Attach attributes to the innermost open span, if any —
        lets helpers deep in the call tree enrich their caller's span
        without threading the span object through."""
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    # -- span lifecycle (driven by Span.__enter__/__exit__) ----------------------------
    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # tolerate a mismatched pop (an abandoned span mid-stack) by
        # unwinding to it — never corrupt the stack on caller bugs
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        if self.registry is not None:
            self.registry.counter(
                "span_seconds_total",
                "Cumulative wall seconds per span name",
                span=span.name).inc(span.duration_s)
            self.registry.counter(
                "span_calls_total",
                "Completed spans per span name",
                span=span.name).inc()
