"""The metrics registry: named counters, gauges and reservoir histograms.

One :class:`MetricsRegistry` is the single source of truth for a
process's observable numbers.  Every metric belongs to a *family* (one
name, one kind, one help string) and a family holds one *series* per
label set, so per-shard / per-model / per-layer breakdowns are ordinary
labeled series::

    reg = MetricsRegistry()
    reg.counter("serve_halo_bytes_total", shard="3").inc(4096)
    reg.gauge("serve_queue_depth").set(12)
    reg.histogram("store_replay_depth").observe(7)

Metric access is get-or-create: calling ``counter(name, **labels)``
twice returns the same object, so call sites need no setup phase.
Components that already keep authoritative plain-int counters (the
serving tier's ``ServerCounters``) sync them in at export time with
:meth:`Counter.set_to` — the registry never becomes a second place to
increment on the hot path.

Naming scheme (see ``docs/observability.md``): ``<tier>_<subject>_<unit>``
with counters ending ``_total``; tiers are ``serve``, ``shard``,
``store``, ``train`` and ``span``.  Everything here is plain Python and
single-threaded, like the rest of the repo's serving tier.
"""

from __future__ import annotations

import math
import re

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class Counter:
    """A monotonically increasing value."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        amount = float(amount)
        if amount < 0.0 or not math.isfinite(amount):
            raise ValueError(
                f"counters only move forward; cannot inc by {amount}")
        self.value += amount

    def set_to(self, value: float) -> None:
        """Sync from an authoritative external counter (e.g. a
        ``ServerCounters`` int).  The external source is monotonic, so
        the registry value never moves backwards; syncing the same
        value twice is a no-op."""
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"cannot sync counter to {value}")
        if value > self.value:
            self.value = value


class Gauge:
    """A value that can go up and down (queue depth, resident bytes)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot set a gauge to NaN")
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += float(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= float(amount)


class Histogram:
    """A bounded-reservoir distribution (Vitter's Algorithm R).

    ``count``/``sum``/``mean`` track the *full* observation stream
    exactly (a running counter and sum); percentiles come from a
    fixed-size uniform sample of the stream, so memory stays bounded on
    arbitrarily long runs.  Below ``reservoir_size`` observations the
    reservoir holds every sample and percentiles are exact.

    Non-finite observations are rejected with a :class:`ValueError`:
    one NaN would otherwise silently poison ``mean`` (and every
    percentile) forever.
    """

    kind = "histogram"
    __slots__ = ("reservoir_size", "_samples", "_count", "_sum", "_rng")

    def __init__(self, reservoir_size: int = 1024, seed: int = 0) -> None:
        if reservoir_size < 1:
            raise ValueError(
                f"reservoir_size must be >= 1, got {reservoir_size}")
        self.reservoir_size = reservoir_size
        self._samples: list[float] = []
        self._count = 0
        self._sum = 0.0
        self._rng = np.random.default_rng(seed)

    def observe(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(
                f"refusing non-finite observation {value!r}: it would "
                f"silently poison the running mean and every percentile")
        self._count += 1
        self._sum += value
        if len(self._samples) < self.reservoir_size:
            self._samples.append(value)
            return
        # Algorithm R: the i-th observation replaces a reservoir slot
        # with probability reservoir_size / i (uniform slot choice)
        slot = int(self._rng.integers(0, self._count))
        if slot < self.reservoir_size:
            self._samples[slot] = value

    @property
    def count(self) -> int:
        """Total observations (the full stream, not the sample)."""
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def sampled(self) -> int:
        """Observations currently resident in the reservoir."""
        return len(self._samples)

    @property
    def mean(self) -> float:
        """Exact mean over the full stream."""
        if self._count == 0:
            return float("nan")
        return self._sum / self._count

    def percentile(self, q: float) -> float:
        """Percentile of the stream (``q`` in [0, 100]); exact while
        the stream fits the reservoir, an unbiased estimate beyond."""
        if not self._samples:
            return float("nan")
        return float(np.percentile(np.asarray(self._samples), q))

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def frac_over(self, threshold: float) -> float:
        """Fraction of the (sampled) stream strictly above
        ``threshold`` — the SLO engine's bad-event estimator; NaN on an
        empty reservoir."""
        if not self._samples:
            return float("nan")
        over = sum(1 for v in self._samples if v > threshold)
        return over / len(self._samples)

    def absorb(self, count: int, total: float, samples) -> None:
        """Merge another histogram's contribution *losslessly on
        count/sum* (exact running totals) and union its reservoir
        samples into this one.  While the combined stream fits the
        reservoir every sample is kept and percentiles stay exact;
        beyond capacity incoming samples displace uniform slots, the
        same bounded-memory estimate :meth:`observe` degrades to.

        This is the registry-merge primitive: ``count``/``total`` are
        the *deltas* being folded in (a harvest ships increments), and
        ``samples`` are only the observations not yet represented here
        — the caller (``MetricsRegistry.merge``) guarantees no sample
        is offered twice."""
        count = int(count)
        total = float(total)
        if count < 0 or not math.isfinite(total):
            raise ValueError(
                f"cannot absorb count={count}, sum={total}")
        self._count += count
        self._sum += total
        for value in samples:
            value = float(value)
            if len(self._samples) < self.reservoir_size:
                self._samples.append(value)
                continue
            slot = int(self._rng.integers(0, max(self._count, 1)))
            if slot < self.reservoir_size:
                self._samples[slot] = value


class _Family:
    """One metric name: a kind, a help string, and labeled series."""

    __slots__ = ("name", "kind", "help", "series")

    def __init__(self, name: str, kind: str, help: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.series: dict[tuple, object] = {}


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _new_samples(current, previous) -> list:
    """Multiset difference ``current - previous``: the reservoir slots
    that changed since the last harvest.  Samples observed *and*
    evicted between two harvests are necessarily missed (bounded
    memory), but count/sum deltas stay exact regardless."""
    from collections import Counter
    prev = Counter(previous)
    out = []
    for v in current:
        if prev[v] > 0:
            prev[v] -= 1
        else:
            out.append(v)
    return out


class MetricsRegistry:
    """Get-or-create home of every metric family in a process.

    ``source`` names this registry in its :meth:`harvest` envelopes so
    a receiver can deduplicate redelivered harvests (an RPC retry must
    not double-count); leave it ``None`` for registries that are never
    harvested over an at-least-once channel.
    """

    def __init__(self, *, source: str | None = None) -> None:
        self._families: dict[str, _Family] = {}
        self.source = source
        self._harvest_seq = 0
        self._harvest_marks: dict[tuple, object] = {}
        self._merged_seqs: dict[tuple, int] = {}

    # -- access ------------------------------------------------------------------------
    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._series(name, "counter", help, labels, Counter)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._series(name, "gauge", help, labels, Gauge)

    def histogram(self, name: str, help: str = "", *,
                  reservoir_size: int = 1024, seed: int = 0,
                  **labels) -> Histogram:
        return self._series(name, "histogram", help, labels,
                            lambda: Histogram(reservoir_size, seed))

    def attach(self, name: str, metric, help: str = "", **labels):
        """Register an externally constructed metric object (e.g. a
        server's :class:`~repro.serve.metrics.LatencyTracker`, which IS
        a :class:`Histogram`) so exporters see it without the owner
        double-recording.  Re-attaching the same object is a no-op;
        attaching a *different* object under an existing series replaces
        it (a recovered server re-homing its trackers)."""
        kind = getattr(metric, "kind", None)
        if kind not in ("counter", "gauge", "histogram"):
            raise ValueError(f"cannot attach {type(metric).__name__}: "
                             f"not a Counter/Gauge/Histogram")
        family = self._family(name, kind, help)
        family.series[_label_key(labels)] = metric
        return metric

    def get(self, name: str, **labels):
        """The existing series, or ``None``."""
        family = self._families.get(name)
        if family is None:
            return None
        return family.series.get(_label_key(labels))

    def value(self, name: str, **labels) -> float:
        """Convenience scalar read (0.0 for a missing series; a
        histogram reads as its count)."""
        metric = self.get(name, **labels)
        if metric is None:
            return 0.0
        if isinstance(metric, Histogram):
            return float(metric.count)
        return float(metric.value)

    def _family(self, name: str, kind: str, help: str) -> _Family:
        family = self._families.get(name)
        if family is None:
            if not _NAME_RE.match(name):
                raise ValueError(f"invalid metric name {name!r}")
            family = _Family(name, kind, help)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as a "
                f"{family.kind}, not a {kind}")
        if help and not family.help:
            family.help = help
        return family

    def _series(self, name: str, kind: str, help: str, labels: dict,
                factory):
        family = self._family(name, kind, help)
        key = _label_key(labels)
        metric = family.series.get(key)
        if metric is None:
            for label in labels:
                if not _LABEL_RE.match(str(label)):
                    raise ValueError(f"invalid label name {label!r}")
            metric = factory()
            family.series[key] = metric
        return metric

    # -- iteration / snapshot ------------------------------------------------------------
    def families(self):
        """Yield ``(name, kind, help, [(labels_dict, metric), ...])``
        sorted by family name then label key."""
        for name in sorted(self._families):
            family = self._families[name]
            series = [(dict(key), family.series[key])
                      for key in sorted(family.series)]
            yield name, family.kind, family.help, series

    def __len__(self) -> int:
        return len(self._families)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def snapshot(self) -> dict:
        """Plain-data copy of every series (JSON-friendly; histograms
        report count/sum/mean and the standard percentiles)."""
        out: dict = {}
        for name, kind, help, series in self.families():
            entries = []
            for labels, metric in series:
                if kind == "histogram":
                    value = {"count": metric.count, "sum": metric.sum,
                             "mean": metric.mean, "p50": metric.p50,
                             "p95": metric.p95, "p99": metric.p99}
                else:
                    value = metric.value
                entries.append({"labels": labels, "value": value})
            out[name] = {"kind": kind, "help": help, "series": entries}
        return out

    # -- federation (harvest / merge) ----------------------------------------------------
    def harvest(self) -> dict:
        """Delta-encoded plain-data snapshot: only what changed since
        the previous ``harvest()`` call.

        Counters ship their increment, gauges their current value (only
        when it moved), histograms their count/sum increments plus the
        reservoir samples that appeared since the last harvest.  The
        envelope carries ``(source, seq)`` so :meth:`merge` on the
        receiving side is idempotent under redelivery — harvesting an
        unchanged registry yields an empty ``families`` map, and wire
        cost stays proportional to activity, not to registry size.
        """
        families: dict = {}
        for name, kind, help, series in self.families():
            entries = []
            for labels, metric in series:
                key = (name, _label_key(labels))
                if kind == "histogram":
                    prev = self._harvest_marks.get(key)
                    pcount, psum, psamples = prev if prev is not None \
                        else (0, 0.0, ())
                    dcount = metric.count - pcount
                    dsum = metric.sum - psum
                    if dcount == 0 and dsum == 0.0:
                        continue
                    fresh = _new_samples(metric._samples, psamples)
                    self._harvest_marks[key] = (
                        metric.count, metric.sum, tuple(metric._samples))
                    entries.append({
                        "labels": labels, "count": dcount, "sum": dsum,
                        "samples": fresh,
                        "reservoir_size": metric.reservoir_size})
                elif kind == "counter":
                    prev = self._harvest_marks.get(key, 0.0)
                    delta = metric.value - prev
                    if delta == 0.0:
                        continue
                    self._harvest_marks[key] = metric.value
                    entries.append({"labels": labels, "value": delta})
                else:  # gauge: last-write semantics, emit on change
                    prev = self._harvest_marks.get(key)
                    if prev is not None and prev == metric.value:
                        continue
                    self._harvest_marks[key] = metric.value
                    entries.append({"labels": labels,
                                    "value": metric.value})
            if entries:
                families[name] = {"kind": kind, "help": help,
                                  "series": entries}
        self._harvest_seq += 1
        return {"source": self.source, "seq": self._harvest_seq,
                "families": families}

    def merge(self, harvest: dict, *, labels: dict | None = None) -> int:
        """Fold one :meth:`harvest` envelope into this registry,
        optionally relabeling every series (``labels`` are *added*; on
        a key collision the harvester's label wins — the receiver is
        the authority on which worker a series came from).

        Lossless by kind: counters sum the shipped increments, gauges
        take the last write, histograms add count/sum exactly and union
        the shipped reservoir samples (:meth:`Histogram.absorb`).
        Envelopes carrying a ``source`` are deduplicated by ``(source,
        merge labels, seq)``: re-merging an already-applied harvest is
        a no-op, so at-least-once delivery cannot double-count.
        Returns the number of series updated.
        """
        labels = dict(labels or {})
        source = harvest.get("source")
        if source is not None:
            seq_key = (source, _label_key(labels))
            seq = int(harvest.get("seq", 0))
            if seq <= self._merged_seqs.get(seq_key, 0):
                return 0
            self._merged_seqs[seq_key] = seq
        updated = 0
        for name in sorted(harvest.get("families", {})):
            family = harvest["families"][name]
            kind = family["kind"]
            help = family.get("help", "")
            for entry in family["series"]:
                merged = dict(entry.get("labels") or {})
                merged.update(labels)
                if kind == "counter":
                    self.counter(name, help, **merged).inc(entry["value"])
                elif kind == "gauge":
                    self.gauge(name, help, **merged).set(entry["value"])
                else:
                    self.histogram(
                        name, help,
                        reservoir_size=int(entry.get("reservoir_size",
                                                     1024)),
                        **merged).absorb(entry["count"], entry["sum"],
                                         entry.get("samples", ()))
                updated += 1
        return updated
