"""Unified cross-tier observability: metrics, spans, exporters.

Every tier of the system — the streaming server, the sharded router,
the temporal store, both trainers — reports through one dependency-free
substrate:

* :class:`~repro.obs.registry.MetricsRegistry` — named counters, gauges
  and bounded-reservoir histograms, with labeled series (per-shard,
  per-model, per-layer);
* :class:`~repro.obs.tracing.Tracer` — parent/child span trees over the
  delta hot path, with a no-op fast path when disabled;
* exporters — Prometheus text exposition, a JSONL event sink, and
  human-readable tree/table dumps.

:class:`Telemetry` bundles one registry and one tracer and is the
object components accept (``telemetry=``) and share: a
:class:`~repro.serve.server.ModelServer` hands its telemetry to its
engine and its attached store, the sharded router to its tier, so one
export call sees the whole process.  See ``docs/observability.md``.
"""

from repro.obs.registry import (Counter, Gauge, Histogram,
                                MetricsRegistry)
from repro.obs.tracing import NULL_SPAN, Span, Tracer
from repro.obs.export import (JsonlSink, metrics_events, prometheus_text,
                              render_metrics, render_span_tree,
                              span_events, span_seconds_by_name)
from repro.obs.slo import SloEngine, SloStatus
from repro.obs.console import render_dashboard

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "Span", "Tracer", "NULL_SPAN",
    "JsonlSink", "metrics_events", "prometheus_text", "render_metrics",
    "render_span_tree", "span_events", "span_seconds_by_name",
    "SloEngine", "SloStatus", "render_dashboard",
    "Telemetry",
]


class Telemetry:
    """One registry + one tracer: the handle a component instruments
    against and an operator exports from.

    Tracing defaults to **off** (the no-op fast path); metrics are
    always on — counter syncs happen at export time and cost nothing on
    hot paths.

    ``node`` names this process in span ids (``"main:17"``,
    ``"worker3:4"``) and ``source`` names the registry's harvest
    envelopes — both matter only for telemetry that crosses the RPC
    boundary (see ``docs/observability.md``, "Distributed telemetry").
    """

    def __init__(self, *, tracing: bool = False,
                 registry: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 max_roots: int = 512, node: str = "main",
                 source: str | None = None) -> None:
        self.registry = registry if registry is not None \
            else MetricsRegistry(source=source)
        self.tracer = tracer if tracer is not None \
            else Tracer(tracing, registry=self.registry,
                        max_roots=max_roots, node=node)

    # -- instrumentation surface -------------------------------------------------------
    def trace(self, name: str, parent: tuple | None = None, **attrs):
        """Open a span (context manager); free when tracing is off.
        ``parent`` is an optional remote trace context (see
        :meth:`Tracer.current_context`)."""
        return self.tracer.trace(name, parent=parent, **attrs)

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self.registry.counter(name, help, **labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self.registry.gauge(name, help, **labels)

    def histogram(self, name: str, help: str = "", **labels) -> Histogram:
        return self.registry.histogram(name, help, **labels)

    # -- export surface ----------------------------------------------------------------
    def prometheus(self) -> str:
        """Prometheus text exposition of the registry."""
        return prometheus_text(self.registry)

    def span_tree(self, *, min_ms: float = 0.0) -> str:
        """Human-readable dump of the retained span trees."""
        return render_span_tree(self.tracer, min_ms=min_ms)

    def stage_seconds(self) -> dict[str, float]:
        """Cumulative wall seconds per span name (the stage breakdown)."""
        return span_seconds_by_name(self.registry)

    def export_jsonl(self, target, *, spans: bool = True) -> int:
        """Write every metric series (and, optionally, every retained
        span tree) as JSONL events to ``target`` (path or file object);
        returns the number of events written."""
        with JsonlSink(target) as sink:
            count = sink.emit_many(metrics_events(self.registry))
            if spans:
                count += sink.emit_many(span_events(self.tracer))
        return count
