"""Live text dashboard over one (merged) metrics registry.

:func:`render_dashboard` turns the registry a router exports — after a
worker-telemetry harvest it holds the *whole cluster* under
``worker=<id>`` labels — into a compact operator view: tier totals,
a per-worker table (RPC round-trips, wire bytes, routed queries, busy
seconds, RPC latency percentiles), cross-shard traffic by class, SLO
verdicts, and the top span sinks.  Sections with no backing series are
simply omitted, so the same renderer serves a single-process
:class:`~repro.serve.server.ModelServer` and a multi-process
:class:`~repro.exec.router.ExecRouter`.

Pure formatting: no metric is recorded here, and rendering twice in a
row is byte-identical unless the registry moved.  Callers wanting a
live view loop ``print(frontend.dashboard())`` — see
``examples/cluster_dashboard.py``.
"""

from __future__ import annotations

import math

from repro.obs.export import span_seconds_by_name

__all__ = ["render_dashboard"]

_RULE = "-" * 64


def _fmt_bytes(n: float) -> str:
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024.0 or unit == "GiB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024.0
    return f"{n:.1f}GiB"  # pragma: no cover - unreachable


def _fmt(v: float, digits: int = 2) -> str:
    if v is None or (isinstance(v, float) and math.isnan(v)):
        return "-"
    if float(v) == int(v) and abs(v) < 1e15:
        return str(int(v))
    return f"{v:.{digits}f}"


def _value(registry, name: str, **labels) -> float:
    metric = registry.get(name, **labels)
    if metric is None:
        return float("nan")
    from repro.obs.registry import Histogram
    if isinstance(metric, Histogram):
        return float(metric.count)
    return float(metric.value)


def _series_by(registry, family: str, key: str) -> dict:
    """``{label_value: metric}`` for one family, keyed by one label."""
    out: dict = {}
    for name, _kind, _help, series in registry.families():
        if name != family:
            continue
        for labels, metric in series:
            if key in labels:
                out[labels[key]] = metric
    return out


def _worker_ids(registry) -> list[str]:
    """Every shard/worker identity any series mentions, sorted
    numerically where possible."""
    ids: set[str] = set()
    for _name, _kind, _help, series in registry.families():
        for labels, _metric in series:
            for key in ("shard", "worker"):
                if key in labels:
                    ids.add(labels[key])

    def sort_key(v: str):
        return (0, int(v)) if v.isdigit() else (1, v)
    return sorted(ids, key=sort_key)


def _table(headers: list[str], rows: list[list[str]]) -> list[str]:
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(headers)]
    lines = ["  ".join(h.ljust(widths[i])
                       for i, h in enumerate(headers)).rstrip()]
    for row in rows:
        lines.append("  ".join(c.ljust(widths[i])
                               for i, c in enumerate(row)).rstrip())
    return lines


def render_dashboard(telemetry, *, slo=None,
                     title: str = "cluster dashboard") -> str:
    """One screenful of cluster state from ``telemetry.registry``
    (optionally judged against an :class:`~repro.obs.slo.SloEngine`).

    The caller is responsible for syncing counters first —
    ``QueryFrontend.dashboard()`` does, and triggers the worker harvest
    on routers that have one."""
    reg = telemetry.registry
    lines = [f"== {title} ==", ""]

    # -- tier totals -------------------------------------------------------------------
    submitted = _value(reg, "serve_queries_submitted_total")
    if not math.isnan(submitted):
        completed = _value(reg, "serve_queries_completed_total")
        shed = _value(reg, "serve_queries_shed_total")
        head = (f"queries  {_fmt(submitted)} submitted / "
                f"{_fmt(completed)} completed")
        if not math.isnan(shed) and shed > 0:
            head += f" / {_fmt(shed)} shed"
        depth = _value(reg, "serve_queue_depth")
        if not math.isnan(depth):
            head += f"   queue depth {_fmt(depth)}"
        lines.append(head)
    latency = reg.get("serve_latency_ms")
    if latency is not None and latency.count:
        lines.append(f"latency ms  p50 {latency.p50:.2f}  "
                     f"p95 {latency.p95:.2f}  p99 {latency.p99:.2f}  "
                     f"(n={latency.count})")
    if len(lines) > 2:
        lines.append("")

    # -- per-worker table --------------------------------------------------------------
    ids = _worker_ids(reg)
    if ids:
        rpc = _series_by(reg, "exec_rpc_roundtrips_total", "shard")
        sent = _series_by(reg, "exec_rpc_bytes_sent_total", "shard")
        recv = _series_by(reg, "exec_rpc_bytes_received_total", "shard")
        queries = _series_by(reg, "shard_queries_total", "shard")
        lat = _series_by(reg, "exec_rpc_latency_ms", "shard")
        busy = _series_by(reg, "worker_busy_seconds", "worker")
        rows = []
        for wid in ids:
            h = lat.get(wid)
            rows.append([
                wid,
                _fmt(rpc[wid].value) if wid in rpc else "-",
                _fmt_bytes(sent[wid].value) if wid in sent else "-",
                _fmt_bytes(recv[wid].value) if wid in recv else "-",
                _fmt(queries[wid].value) if wid in queries else "-",
                f"{busy[wid].value:.3f}" if wid in busy else "-",
                f"{h.p50:.2f}" if h is not None and h.count else "-",
                f"{h.p99:.2f}" if h is not None and h.count else "-",
            ])
        lines.append(_RULE)
        lines.extend(_table(
            ["worker", "rpc", "tx", "rx", "queries", "busy_s",
             "rpc_p50ms", "rpc_p99ms"], rows))
        lines.append("")

    # -- cross-shard traffic -----------------------------------------------------------
    halo_rows = _value(reg, "shard_halo_rows_total")
    comm = _series_by(reg, "comm_bytes_total", "label")
    traffic_bits = []
    if not math.isnan(halo_rows):
        traffic_bits.append(
            f"halo rows {_fmt(halo_rows)} "
            f"({_fmt_bytes(_value(reg, 'shard_halo_bytes_total'))})")
    for label in sorted(comm):
        traffic_bits.append(f"{label} {_fmt_bytes(comm[label].value)}")
    if traffic_bits:
        lines.append("traffic  " + "  |  ".join(traffic_bits))
        lines.append("")

    # -- SLO verdicts ------------------------------------------------------------------
    if slo is not None and len(slo):
        lines.append(_RULE)
        rows = []
        for status in slo.evaluate():
            rows.append([f"[{status.label}]", status.name,
                         _fmt(status.value, 3),
                         _fmt(status.threshold, 3),
                         f"{status.burn:.2f}x" if
                         math.isfinite(status.burn) else "inf",
                         status.detail])
        lines.extend(_table(
            ["", "slo", "value", "target", "burn", "detail"], rows))
        lines.append("")

    # -- top span sinks ----------------------------------------------------------------
    seconds = span_seconds_by_name(reg)
    if seconds:
        top = sorted(seconds.items(), key=lambda kv: -kv[1])[:6]
        lines.append("spans    " + "  ".join(
            f"{name} {secs:.3f}s" for name, secs in top))
    while lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines) + "\n"
