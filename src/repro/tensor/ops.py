"""Differentiable primitive operations on :class:`~repro.tensor.Tensor`.

Each op computes its numpy result eagerly and records a closure that maps
the upstream gradient to per-parent gradients.  Broadcasting is undone by
the tape machinery (``Tensor._backward_into``), so the closures here may
return gradients in the *broadcast* shape.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.tensor.tensor import Tensor, as_tensor

__all__ = [
    "add", "sub", "mul", "div", "neg", "power", "exp", "log", "sqrt",
    "matmul", "transpose", "reshape", "getitem", "concat", "stack",
    "sum_", "mean", "maximum", "clip", "abs_", "where", "scale_rows",
]


def add(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = a.data + b.data

    def backward(g):
        return g, g

    return Tensor._make(out, (a, b), backward)


def sub(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = a.data - b.data

    def backward(g):
        return g, -g

    return Tensor._make(out, (a, b), backward)


def mul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = a.data * b.data
    a_data, b_data = a.data, b.data

    def backward(g):
        return g * b_data, g * a_data

    return Tensor._make(out, (a, b), backward)


def div(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = a.data / b.data
    a_data, b_data = a.data, b.data

    def backward(g):
        return g / b_data, -g * a_data / (b_data * b_data)

    return Tensor._make(out, (a, b), backward)


def neg(a) -> Tensor:
    a = as_tensor(a)
    return Tensor._make(-a.data, (a,), lambda g: (-g,))


def power(a, exponent: float) -> Tensor:
    a = as_tensor(a)
    out = a.data ** exponent
    a_data = a.data

    def backward(g):
        return (g * exponent * a_data ** (exponent - 1),)

    return Tensor._make(out, (a,), backward)


def exp(a) -> Tensor:
    a = as_tensor(a)
    out = np.exp(a.data)

    def backward(g):
        return (g * out,)

    return Tensor._make(out, (a,), backward)


def log(a) -> Tensor:
    a = as_tensor(a)
    out = np.log(a.data)
    a_data = a.data

    def backward(g):
        return (g / a_data,)

    return Tensor._make(out, (a,), backward)


def sqrt(a) -> Tensor:
    a = as_tensor(a)
    out = np.sqrt(a.data)

    def backward(g):
        return (g * 0.5 / out,)

    return Tensor._make(out, (a,), backward)


def matmul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    if a.ndim < 1 or b.ndim < 1:
        raise ShapeError("matmul requires at least 1-D operands")
    out = a.data @ b.data
    a_data, b_data = a.data, b.data

    def backward(g):
        if a_data.ndim == 1 and b_data.ndim == 1:
            # inner product: g is scalar
            return g * b_data, g * a_data
        if b_data.ndim == 1:
            return np.outer(g, b_data), a_data.T @ g
        if a_data.ndim == 1:
            return g @ b_data.T, np.outer(a_data, g)
        return g @ np.swapaxes(b_data, -1, -2), np.swapaxes(a_data, -1, -2) @ g

    return Tensor._make(out, (a, b), backward)


def transpose(a, axes: tuple[int, ...] | None = None) -> Tensor:
    a = as_tensor(a)
    out = np.transpose(a.data, axes)
    if axes is None:
        inverse = None
    else:
        inverse = tuple(np.argsort(axes))

    def backward(g):
        return (np.transpose(g, inverse),)

    return Tensor._make(out, (a,), backward)


def reshape(a, shape: tuple[int, ...]) -> Tensor:
    a = as_tensor(a)
    orig = a.data.shape
    out = a.data.reshape(shape)

    def backward(g):
        return (g.reshape(orig),)

    return Tensor._make(out, (a,), backward)


def getitem(a, index) -> Tensor:
    a = as_tensor(a)
    out = a.data[index]
    shape = a.data.shape
    dtype = a.data.dtype

    def backward(g):
        full = np.zeros(shape, dtype=dtype)
        np.add.at(full, index, g)
        return (full,)

    return Tensor._make(np.asarray(out), (a,), backward)


def concat(tensors: Sequence, axis: int = 0) -> Tensor:
    ts = [as_tensor(t) for t in tensors]
    if not ts:
        raise ShapeError("concat of empty sequence")
    out = np.concatenate([t.data for t in ts], axis=axis)
    sizes = [t.data.shape[axis] for t in ts]
    splits = np.cumsum(sizes)[:-1]

    def backward(g):
        return tuple(np.split(g, splits, axis=axis))

    return Tensor._make(out, ts, backward)


def stack(tensors: Sequence, axis: int = 0) -> Tensor:
    ts = [as_tensor(t) for t in tensors]
    if not ts:
        raise ShapeError("stack of empty sequence")
    out = np.stack([t.data for t in ts], axis=axis)

    def backward(g):
        moved = np.moveaxis(g, axis, 0)
        return tuple(moved[i] for i in range(len(ts)))

    return Tensor._make(out, ts, backward)


def sum_(a, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    out = a.data.sum(axis=axis, keepdims=keepdims)
    shape = a.data.shape

    def backward(g):
        g = np.asarray(g)
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis)
        return (np.broadcast_to(g, shape),)

    return Tensor._make(np.asarray(out), (a,), backward)


def mean(a, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    out = a.data.mean(axis=axis, keepdims=keepdims)
    shape = a.data.shape
    count = a.data.size if axis is None else np.prod(
        [shape[ax] for ax in (axis if isinstance(axis, tuple) else (axis,))])

    def backward(g):
        g = np.asarray(g)
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis)
        return (np.broadcast_to(g, shape) / count,)

    return Tensor._make(np.asarray(out), (a,), backward)


def maximum(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = np.maximum(a.data, b.data)
    mask = a.data >= b.data

    def backward(g):
        return g * mask, g * ~mask

    return Tensor._make(out, (a, b), backward)


def clip(a, lo: float, hi: float) -> Tensor:
    a = as_tensor(a)
    out = np.clip(a.data, lo, hi)
    mask = (a.data >= lo) & (a.data <= hi)

    def backward(g):
        return (g * mask,)

    return Tensor._make(out, (a,), backward)


def abs_(a) -> Tensor:
    a = as_tensor(a)
    out = np.abs(a.data)
    sign = np.sign(a.data)

    def backward(g):
        return (g * sign,)

    return Tensor._make(out, (a,), backward)


def where(cond: np.ndarray, a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    cond = np.asarray(cond, dtype=bool)
    out = np.where(cond, a.data, b.data)

    def backward(g):
        return g * cond, g * ~cond

    return Tensor._make(out, (a, b), backward)


def scale_rows(a, scales: np.ndarray) -> Tensor:
    """Multiply each row of 2-D tensor ``a`` by a fixed per-row scalar.

    ``scales`` is a constant (e.g. degree normalization); no gradient is
    produced for it.
    """
    a = as_tensor(a)
    scales = np.asarray(scales, dtype=a.data.dtype).reshape(-1, 1)
    if scales.shape[0] != a.data.shape[0]:
        raise ShapeError(
            f"scale_rows: {scales.shape[0]} scales for {a.data.shape[0]} rows")
    out = a.data * scales

    def backward(g):
        return (g * scales,)

    return Tensor._make(out, (a,), backward)
