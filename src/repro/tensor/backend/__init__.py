"""Kernel-backend registry and selection.

Every sparse kernel in the library runs on a :class:`KernelBackend`
resolved by name through this registry.  Selection precedence:

1. an explicit ``backend=`` kwarg (a name or an instance) wherever the
   seam is exposed — ``SparseMatrix``, ``LaplacianMaintainer``, the
   serving engines, both trainers, ``WorkerBoot``;
2. the ``REPRO_KERNEL_BACKEND`` environment variable, read at resolve
   time (so exec-tier workers spawned with it inherit the choice);
3. the default, ``reference``.

An **unknown** name raises :class:`~repro.errors.KernelError` — a typo
must not silently run the slow path.  A **known but unavailable**
backend (numba not importable, no C compiler for cnative) falls back to
``reference`` with a single warning per name: availability is an
environment property, and code written against an accelerated backend
must still run everywhere.

Backends are process-local singletons; pickling one ships only its
name (see :meth:`KernelBackend.__reduce__`), and the receiving process
re-resolves — which may legitimately land on the fallback there.
"""

from __future__ import annotations

import os
import warnings

from repro.errors import KernelError
from repro.tensor.backend.base import KERNEL_NAMES, KernelBackend
from repro.tensor.backend.cnative import CNativeBackend
from repro.tensor.backend.numba_backend import NumbaBackend
from repro.tensor.backend.reference import ReferenceBackend

__all__ = ["KernelBackend", "KERNEL_NAMES", "DEFAULT_BACKEND", "ENV_VAR",
           "register_backend", "registered_backends",
           "available_backends", "get_backend", "resolve_backend"]

DEFAULT_BACKEND = "reference"
ENV_VAR = "REPRO_KERNEL_BACKEND"

_REGISTRY: dict[str, type[KernelBackend]] = {}
_INSTANCES: dict[str, KernelBackend] = {}
_WARNED: set[str] = set()


def register_backend(cls: type[KernelBackend]) -> type[KernelBackend]:
    """Register a backend class under ``cls.name`` (usable as a
    decorator).  Re-registering a name replaces it and drops any cached
    instance."""
    if not cls.name or cls.name == "abstract":
        raise KernelError("backend class must set a concrete `name`")
    _REGISTRY[cls.name] = cls
    _INSTANCES.pop(cls.name, None)
    return cls


def registered_backends() -> tuple[str, ...]:
    """All registered names, available or not."""
    return tuple(_REGISTRY)


def available_backends() -> tuple[str, ...]:
    """Names whose dependencies are usable in this process."""
    out = []
    for name, cls in _REGISTRY.items():
        try:
            if cls.available():
                out.append(name)
        except Exception:
            pass
    return tuple(out)


def _fallback(name: str, why: str) -> KernelBackend:
    if name not in _WARNED:
        _WARNED.add(name)
        warnings.warn(
            f"kernel backend {name!r} is unavailable ({why}); "
            f"falling back to {DEFAULT_BACKEND!r}",
            RuntimeWarning, stacklevel=3)
    return get_backend(DEFAULT_BACKEND)


def get_backend(name: str | None = None) -> KernelBackend:
    """The process-local singleton for ``name`` (default backend when
    ``None``), falling back to ``reference`` if it is unavailable."""
    if name is None:
        name = DEFAULT_BACKEND
    if isinstance(name, KernelBackend):
        return name
    if name not in _REGISTRY:
        raise KernelError(
            f"unknown kernel backend {name!r}; registered: "
            f"{', '.join(_REGISTRY)}")
    inst = _INSTANCES.get(name)
    if inst is not None:
        return inst
    cls = _REGISTRY[name]
    try:
        usable = cls.available()
    except Exception as exc:
        usable, why = False, f"availability probe failed: {exc}"
    else:
        why = "dependencies not importable"
    if usable:
        try:
            inst = cls()
        except Exception as exc:
            inst = _fallback(name, f"instantiation failed: {exc}")
    else:
        inst = _fallback(name, why)
    _INSTANCES[name] = inst
    return inst


def resolve_backend(backend: str | KernelBackend | None = None
                    ) -> KernelBackend:
    """Apply the selection precedence: kwarg > env > default."""
    if backend is not None:
        if isinstance(backend, KernelBackend):
            return backend
        return get_backend(backend)
    env = os.environ.get(ENV_VAR)
    if env:
        return get_backend(env)
    return get_backend(DEFAULT_BACKEND)


def _reset_for_tests() -> None:
    """Drop cached instances and the warned set (test isolation)."""
    _INSTANCES.clear()
    _WARNED.clear()


register_backend(ReferenceBackend)
register_backend(NumbaBackend)
register_backend(CNativeBackend)
