"""The ``reference`` backend: scipy/numpy, bit-identical by construction.

This is the pre-registry kernel code of ``tensor/sparse.py`` and
``graph/inc_laplacian.py`` moved behind the :class:`KernelBackend`
surface — not reimplemented, *ported*, so its outputs define the
conformance contract every other backend is tested against.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.tensor.backend.base import KERNEL_NAMES, KernelBackend

__all__ = ["ReferenceBackend"]


class ReferenceBackend(KernelBackend):
    """scipy/numpy kernels — the conformance oracle."""

    name = "reference"
    exact = frozenset(KERNEL_NAMES)  # it *is* the reference

    # -- SpMM family -------------------------------------------------------------
    def spmm(self, csr: sp.csr_matrix, x: np.ndarray) -> np.ndarray:
        return csr @ x

    def spmm_rows(self, csr: sp.csr_matrix, rows: np.ndarray,
                  x: np.ndarray) -> tuple[np.ndarray, object]:
        # CSR row extraction preserves each row's entry order, so the
        # per-row accumulation in the multiply matches the full product
        # bit-for-bit; the sliced matrix rides along as ctx so a
        # backward pass reuses it instead of re-slicing
        sub = csr[rows]
        return sub @ x, sub

    def spmm_rows_t(self, csr: sp.csr_matrix, rows: np.ndarray,
                    g: np.ndarray, ctx: object = None) -> np.ndarray:
        sub = ctx if ctx is not None else csr[rows]
        return sub.T @ g

    # -- structure ---------------------------------------------------------------
    def transpose(self, csr: sp.csr_matrix) -> sp.csr_matrix:
        return csr.T.tocsr()

    def row_slice(self, csr: sp.csr_matrix, rows: np.ndarray
                  ) -> sp.csr_matrix:
        return csr[rows]

    # -- maintainer primitives ---------------------------------------------------
    def degree_counts(self, vertices: np.ndarray, n: int) -> np.ndarray:
        return np.bincount(vertices, minlength=n)

    def splice_delete(self, arrays: tuple[np.ndarray, ...],
                      pos: np.ndarray) -> tuple[np.ndarray, ...]:
        keep = np.ones(len(arrays[0]), dtype=bool)
        keep[pos] = False
        return tuple(a[keep] for a in arrays)

    def splice_insert(self, arrays: tuple[np.ndarray, ...],
                      ins: np.ndarray,
                      extras: tuple[np.ndarray, ...]
                      ) -> tuple[tuple[np.ndarray, ...], np.ndarray]:
        k = len(ins)
        new_pos = ins + np.arange(k, dtype=np.int64)
        mask = np.ones(len(arrays[0]) + k, dtype=bool)
        mask[new_pos] = False
        merged = []
        for a, extra in zip(arrays, extras):
            out = np.empty(len(a) + k, dtype=a.dtype)
            out[mask] = a
            out[new_pos] = extra
            merged.append(out)
        return tuple(merged), new_pos

    def rescale(self, data: np.ndarray, w: np.ndarray, cols: np.ndarray,
                indptr: np.ndarray, pos: np.ndarray,
                dinv: np.ndarray) -> None:
        # duplicates in pos are harmless: every write recomputes the
        # same exact expression of the full build, (w · dinv_u) · dinv_v
        pos_rows = np.searchsorted(indptr, pos, side="right") - 1
        data[pos] = (w[pos] * dinv[pos_rows]) * dinv[cols[pos]]
