"""The ``numba`` backend: JIT-compiled CSR row kernels.

The scipy SpMM path pays per-call overhead that dominates the frontier
workloads this codebase actually runs — ``spmm_rows`` over a dirty
frontier of ~1-5% of the rows, where the row gather (``csr[rows]``)
allocates a submatrix bigger than the multiply it feeds.  The jitted
kernels fuse gather-then-GEMM into one pass over the selected rows'
entries, with **the reference accumulation order preserved**: the
k-outer / feature-inner loop accumulates each output element over the
row's CSR entries in index order, exactly as scipy's ``csr_matvecs``
does, so ``spmm`` and ``spmm_rows`` are declared bit-exact.  No
``fastmath`` — LLVM must not contract ``v * x + acc`` into an FMA or
reassociate the sum, either of which would break ``array_equal``
against the reference backend.

numba is an *optional* dependency: when it is not importable,
:meth:`NumbaBackend.available` returns ``False`` and the registry falls
back to ``reference`` with a single warning.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.backend.base import KERNEL_NAMES
from repro.tensor.backend.reference import ReferenceBackend

__all__ = ["NumbaBackend"]

try:  # pragma: no cover - exercised via the CI kernel-backend-matrix job
    import numba as _numba
    _HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the default container path
    _numba = None
    _HAVE_NUMBA = False

_KERNELS = None


def _compile_kernels():
    """Define and njit the CSR kernels (lazily, once per process).

    Laziness matters twice over: import of this module must stay cheap
    and must succeed without numba, and the jit itself (a few hundred
    ms) should only be paid by processes that select this backend.
    """
    global _KERNELS
    if _KERNELS is not None:
        return _KERNELS
    njit = _numba.njit

    @njit(fastmath=False)
    def _spmm(indptr, indices, data, x, out):
        f = x.shape[1]
        for i in range(out.shape[0]):
            for j in range(f):
                out[i, j] = 0.0
            for k in range(indptr[i], indptr[i + 1]):
                v = data[k]
                c = indices[k]
                for j in range(f):
                    out[i, j] += v * x[c, j]

    @njit(fastmath=False)
    def _spmm_rows(indptr, indices, data, rows, x, out):
        f = x.shape[1]
        for p in range(rows.shape[0]):
            i = rows[p]
            for j in range(f):
                out[p, j] = 0.0
            for k in range(indptr[i], indptr[i + 1]):
                v = data[k]
                c = indices[k]
                for j in range(f):
                    out[p, j] += v * x[c, j]

    @njit(fastmath=False)
    def _spmm_rows_t(indptr, indices, data, rows, g, out):
        # scatter: out[c] accumulates contributions from every selected
        # row containing column c; out arrives zeroed
        f = g.shape[1]
        for p in range(rows.shape[0]):
            i = rows[p]
            for k in range(indptr[i], indptr[i + 1]):
                v = data[k]
                c = indices[k]
                for j in range(f):
                    out[c, j] += v * g[p, j]

    @njit(fastmath=False)
    def _rescale(data, w, cols, indptr, pos, dinv):
        # same two-multiply expression as the reference, with the row
        # of each position found by binary search over indptr
        n = indptr.shape[0] - 1
        for t in range(pos.shape[0]):
            p = pos[t]
            lo = 0
            hi = n
            while lo < hi:
                mid = (lo + hi) // 2
                if indptr[mid + 1] <= p:
                    lo = mid + 1
                else:
                    hi = mid
            data[p] = (w[p] * dinv[lo]) * dinv[cols[p]]

    _KERNELS = {"spmm": _spmm, "spmm_rows": _spmm_rows,
                "spmm_rows_t": _spmm_rows_t, "rescale": _rescale}
    return _KERNELS


class NumbaBackend(ReferenceBackend):
    """Jitted CSR kernels; structure/splice primitives inherited from
    the reference backend (already vectorized numpy, nothing to win)."""

    name = "numba"
    # the forward kernels preserve the reference accumulation order and
    # are asserted array_equal by the conformance suite; the backward
    # scatter is only guaranteed to 1e-12
    exact = frozenset(KERNEL_NAMES) - {"spmm_rows_t"}

    @classmethod
    def available(cls) -> bool:
        return _HAVE_NUMBA

    def __init__(self) -> None:
        self._k = _compile_kernels()

    def spmm(self, csr, x):
        x = np.ascontiguousarray(x, dtype=np.float64)
        out = np.empty((csr.shape[0], x.shape[1]), dtype=np.float64)
        self._k["spmm"](csr.indptr, csr.indices, csr.data, x, out)
        return out

    def spmm_rows(self, csr, rows, x):
        x = np.ascontiguousarray(x, dtype=np.float64)
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        out = np.empty((len(rows), x.shape[1]), dtype=np.float64)
        self._k["spmm_rows"](csr.indptr, csr.indices, csr.data, rows,
                             x, out)
        return out, None  # fused: no sliced submatrix to stash

    def spmm_rows_t(self, csr, rows, g, ctx=None):
        g = np.ascontiguousarray(g, dtype=np.float64)
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        out = np.zeros((csr.shape[1], g.shape[1]), dtype=np.float64)
        self._k["spmm_rows_t"](csr.indptr, csr.indices, csr.data, rows,
                               g, out)
        return out

    def rescale(self, data, w, cols, indptr, pos, dinv):
        self._k["rescale"](data, w, cols, indptr,
                           np.ascontiguousarray(pos, dtype=np.int64),
                           dinv)
