"""The kernel surface every sparse backend implements.

Every hot path of the reproduction — serving refresh, maintainer
splice, training reuse, exec-tier advance — bottoms out in the handful
of CSR kernels named here.  :class:`KernelBackend` is that surface made
explicit: implement it and register the class with
:func:`repro.tensor.backend.register_backend`, and every tier
(``SparseMatrix``, ``LaplacianMaintainer``, the serving engines, both
trainers, exec-tier workers) can run on your kernels, selected by name.

Conformance contract
--------------------
A backend declares, via :attr:`exact`, which kernels it guarantees to
be **bit-identical** (``array_equal``) to the ``reference`` backend.
Everything else must agree within 1e-12 elementwise.  Exactness is the
codebase's load-bearing invariant — the serve/sharded/exec/train suites
all assert divergence 0.0 against full-recompute oracles — so the
accelerated backends keep the reference per-element accumulation order
(sum over a CSR row's entries in index order) rather than reassociating.

The structural and maintainer primitives (:meth:`transpose`,
:meth:`splice_delete`, :meth:`splice_insert`, :meth:`degree_counts`,
:meth:`rescale`) are exact in *every* backend by construction: they
permute, copy, or recompute entries with the identical floating-point
expression; no reassociation is possible.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["KernelBackend", "KERNEL_NAMES"]

# the kernel names `exact` declarations and the conformance suite use
KERNEL_NAMES = ("spmm", "spmm_rows", "spmm_rows_t", "transpose",
                "row_slice", "degree_counts", "splice_delete",
                "splice_insert", "rescale")


class KernelBackend:
    """Abstract sparse-kernel backend (CSR on float64 data).

    Methods take raw ``scipy.sparse.csr_matrix`` / ``numpy.ndarray``
    operands — backends sit *below* the autograd tape and the
    :class:`~repro.tensor.sparse.SparseMatrix` wrapper, which own
    shape checking, caching and gradient routing.
    """

    #: registry key; subclasses must override
    name = "abstract"

    #: kernels guaranteed bit-identical to the reference backend
    exact: frozenset = frozenset()

    @classmethod
    def available(cls) -> bool:
        """Whether this backend's dependencies are importable/usable in
        the current process.  Called before instantiation; an
        unavailable backend falls back to ``reference`` with a single
        warning instead of failing."""
        return True

    def __reduce__(self):
        # backends may hold process-local handles (JIT caches, dlopened
        # shared objects); pickling ships only the name and the
        # receiving process re-resolves it locally — exec-tier workers
        # pick their kernel backend at fork time
        from repro.tensor.backend import get_backend
        return (get_backend, (self.name,))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<KernelBackend {self.name!r}>"

    # -- SpMM family -------------------------------------------------------------
    def spmm(self, csr: sp.csr_matrix, x: np.ndarray) -> np.ndarray:
        """Full product ``S @ X`` → ``(n_rows, F)``."""
        raise NotImplementedError

    def spmm_rows(self, csr: sp.csr_matrix, rows: np.ndarray,
                  x: np.ndarray) -> tuple[np.ndarray, object]:
        """Fused gather-then-GEMM: ``(S @ X)[rows]`` without the caller
        materializing the row submatrix.

        Returns ``(out, ctx)`` where ``ctx`` is backend-private state
        the matching :meth:`spmm_rows_t` call may reuse (the reference
        backend stashes the sliced CSR so backward does not re-slice;
        fused backends return ``None``).
        """
        raise NotImplementedError

    def spmm_rows_t(self, csr: sp.csr_matrix, rows: np.ndarray,
                    g: np.ndarray, ctx: object = None) -> np.ndarray:
        """Backward of the row-sliced product: ``S[rows, :].T @ G`` —
        the scatter of upstream gradient rows through the sliced
        operator, shape ``(n_cols, F)``."""
        raise NotImplementedError

    # -- structure ---------------------------------------------------------------
    def transpose(self, csr: sp.csr_matrix) -> sp.csr_matrix:
        """Materialize the CSR transpose (canonical: sorted,
        duplicate-free).  Canonical CSR is unique, so every backend
        returns bit-identical arrays."""
        raise NotImplementedError

    def row_slice(self, csr: sp.csr_matrix, rows: np.ndarray
                  ) -> sp.csr_matrix:
        """CSR submatrix of ``rows`` (in order, duplicates allowed),
        preserving each row's entry order."""
        raise NotImplementedError

    # -- maintainer primitives ---------------------------------------------------
    # the LaplacianMaintainer's degree/splice/rescale hot path, kept
    # behind the same seam so an accelerated backend can fuse them
    def degree_counts(self, vertices: np.ndarray, n: int) -> np.ndarray:
        """Occurrence counts of ``vertices`` over ``range(n)`` (the
        degree-delta bincount)."""
        raise NotImplementedError

    def splice_delete(self, arrays: tuple[np.ndarray, ...],
                      pos: np.ndarray) -> tuple[np.ndarray, ...]:
        """Delete positions ``pos`` (sorted, unique) from each parallel
        array — the maintainer's structural-removal splice."""
        raise NotImplementedError

    def splice_insert(self, arrays: tuple[np.ndarray, ...],
                      ins: np.ndarray,
                      extras: tuple[np.ndarray, ...]
                      ) -> tuple[tuple[np.ndarray, ...], np.ndarray]:
        """Insert ``extras[i]`` into ``arrays[i]`` at pre-insertion
        offsets ``ins`` (sorted ``searchsorted`` results).  Returns the
        spliced arrays plus the post-insertion positions of the new
        entries — one shared-mask splice, no re-sort."""
        raise NotImplementedError

    def rescale(self, data: np.ndarray, w: np.ndarray, cols: np.ndarray,
                indptr: np.ndarray, pos: np.ndarray,
                dinv: np.ndarray) -> None:
        """Recompute ``data[pos] = (w[pos] · dinv[row(pos)]) ·
        dinv[cols[pos]]`` in place — the maintainer's targeted
        normalization rescale, with rows derived from ``indptr``.
        Must use exactly this expression (two multiplies, this order)
        for bit-compatibility with the full rebuild."""
        raise NotImplementedError
