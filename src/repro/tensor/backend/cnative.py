"""The ``cnative`` backend: C kernels compiled at first use via gcc.

Same fused gather-then-GEMM design as the numba backend, for
environments that have a C compiler but not numba (notably this repo's
own dev container).  The kernels are compiled once per process into a
private temp directory and loaded with ctypes.

Bit-exactness hinges on one compiler flag: ``-ffp-contract=off``.  At
``-O2+`` gcc defaults to contracting ``acc += v * x`` into a fused
multiply-add, whose single rounding diverges from scipy's separate
multiply and add; with contraction off, the k-outer / feature-inner
loop reproduces scipy's per-element accumulation order bit-for-bit
(verified by the conformance suite's ``array_equal`` assertions).

Index dtypes differ across producers — scipy's ``tocsr`` emits int32
indptr/indices for small matrices while the maintainer hand-builds
int64 arrays — so every kernel is generated in all four
(indptr, indices) dtype combinations and dispatched per call.
"""

from __future__ import annotations

import atexit
import ctypes
import os
import shutil
import subprocess
import tempfile

import numpy as np

from repro.tensor.backend.base import KERNEL_NAMES
from repro.tensor.backend.reference import ReferenceBackend

__all__ = ["CNativeBackend"]

_C_TEMPLATE = """
#include <stdint.h>

void spmm_{s}(const {P} *indptr, const {I} *indices, const double *data,
              int64_t n_rows, const double *x, int64_t f, double *out) {{
    for (int64_t i = 0; i < n_rows; i++) {{
        double *o = out + i * f;
        for (int64_t j = 0; j < f; j++) o[j] = 0.0;
        for (int64_t k = indptr[i]; k < indptr[i + 1]; k++) {{
            const double v = data[k];
            const double *xr = x + (int64_t)indices[k] * f;
            for (int64_t j = 0; j < f; j++) o[j] += v * xr[j];
        }}
    }}
}}

void spmm_rows_{s}(const {P} *indptr, const {I} *indices,
                   const double *data, const int64_t *rows, int64_t n_sel,
                   const double *x, int64_t f, double *out) {{
    for (int64_t p = 0; p < n_sel; p++) {{
        const int64_t i = rows[p];
        double *o = out + p * f;
        for (int64_t j = 0; j < f; j++) o[j] = 0.0;
        for (int64_t k = indptr[i]; k < indptr[i + 1]; k++) {{
            const double v = data[k];
            const double *xr = x + (int64_t)indices[k] * f;
            for (int64_t j = 0; j < f; j++) o[j] += v * xr[j];
        }}
    }}
}}

void spmm_rows_t_{s}(const {P} *indptr, const {I} *indices,
                     const double *data, const int64_t *rows,
                     int64_t n_sel, const double *g, int64_t f,
                     double *out) {{
    for (int64_t p = 0; p < n_sel; p++) {{
        const int64_t i = rows[p];
        const double *gr = g + p * f;
        for (int64_t k = indptr[i]; k < indptr[i + 1]; k++) {{
            const double v = data[k];
            double *o = out + (int64_t)indices[k] * f;
            for (int64_t j = 0; j < f; j++) o[j] += v * gr[j];
        }}
    }}
}}
"""

_CTYPES = {"int32_t": ctypes.c_int32, "int64_t": ctypes.c_int64}
_VARIANTS = [("p32_i32", "int32_t", "int32_t"),
             ("p32_i64", "int32_t", "int64_t"),
             ("p64_i32", "int64_t", "int32_t"),
             ("p64_i64", "int64_t", "int64_t")]

_LIB = None
_COMPILE_ERROR = None


def _find_cc() -> str | None:
    for cc in (os.environ.get("CC"), "gcc", "cc"):
        if cc and shutil.which(cc):
            return cc
    return None


def _load_library():
    """Compile and dlopen the kernels (once per process)."""
    global _LIB, _COMPILE_ERROR
    if _LIB is not None or _COMPILE_ERROR is not None:
        return _LIB
    cc = _find_cc()
    if cc is None:
        _COMPILE_ERROR = RuntimeError("no C compiler on PATH")
        return None
    workdir = tempfile.mkdtemp(prefix="repro-cnative-")
    atexit.register(shutil.rmtree, workdir, ignore_errors=True)
    src = os.path.join(workdir, "kernels.c")
    lib = os.path.join(workdir, "kernels.so")
    with open(src, "w") as fh:
        for suffix, ptype, itype in _VARIANTS:
            fh.write(_C_TEMPLATE.format(s=suffix, P=ptype, I=itype))
    try:
        # -ffp-contract=off is load-bearing: see module docstring
        subprocess.run(
            [cc, "-O3", "-ffp-contract=off", "-fPIC", "-shared",
             "-o", lib, src],
            check=True, capture_output=True, timeout=120)
        _LIB = ctypes.CDLL(lib)
    except (subprocess.SubprocessError, OSError) as exc:
        _COMPILE_ERROR = exc
        return None
    f64 = ctypes.POINTER(ctypes.c_double)
    i64 = ctypes.POINTER(ctypes.c_int64)
    for suffix, ptype, itype in _VARIANTS:
        p = ctypes.POINTER(_CTYPES[ptype])
        i = ctypes.POINTER(_CTYPES[itype])
        fn = getattr(_LIB, f"spmm_{suffix}")
        fn.restype = None
        fn.argtypes = [p, i, f64, ctypes.c_int64, f64, ctypes.c_int64,
                       f64]
        fn = getattr(_LIB, f"spmm_rows_{suffix}")
        fn.restype = None
        fn.argtypes = [p, i, f64, i64, ctypes.c_int64, f64,
                       ctypes.c_int64, f64]
        fn = getattr(_LIB, f"spmm_rows_t_{suffix}")
        fn.restype = None
        fn.argtypes = [p, i, f64, i64, ctypes.c_int64, f64,
                       ctypes.c_int64, f64]
    return _LIB


def _ptr(a: np.ndarray, ct):
    return a.ctypes.data_as(ctypes.POINTER(ct))


class CNativeBackend(ReferenceBackend):
    """gcc-compiled CSR kernels; structure/splice primitives inherited
    from the reference backend."""

    name = "cnative"
    # forward kernels preserve the reference accumulation order (and
    # the conformance suite asserts array_equal); the backward scatter
    # is only guaranteed to 1e-12
    exact = frozenset(KERNEL_NAMES) - {"spmm_rows_t"}

    @classmethod
    def available(cls) -> bool:
        return _load_library() is not None

    def __init__(self) -> None:
        self._lib = _load_library()
        if self._lib is None:  # pragma: no cover - registry checks first
            raise RuntimeError(f"cnative compile failed: {_COMPILE_ERROR}")

    def _dispatch(self, kernel: str, csr):
        indptr, indices = csr.indptr, csr.indices
        if indptr.dtype not in (np.int32, np.int64) or \
                indices.dtype not in (np.int32, np.int64):
            return None, None, None  # exotic dtype: reference fallback
        suffix = (f"p{indptr.dtype.itemsize * 8}"
                  f"_i{indices.dtype.itemsize * 8}")
        fn = getattr(self._lib, f"{kernel}_{suffix}")
        pct = _CTYPES["int32_t"] if indptr.dtype == np.int32 \
            else _CTYPES["int64_t"]
        ict = _CTYPES["int32_t"] if indices.dtype == np.int32 \
            else _CTYPES["int64_t"]
        return fn, pct, ict

    def spmm(self, csr, x):
        fn, pct, ict = self._dispatch("spmm", csr)
        if fn is None:
            return super().spmm(csr, x)
        x = np.ascontiguousarray(x, dtype=np.float64)
        out = np.empty((csr.shape[0], x.shape[1]), dtype=np.float64)
        fn(_ptr(csr.indptr, pct), _ptr(csr.indices, ict),
           _ptr(csr.data, ctypes.c_double), csr.shape[0],
           _ptr(x, ctypes.c_double), x.shape[1],
           _ptr(out, ctypes.c_double))
        return out

    def spmm_rows(self, csr, rows, x):
        fn, pct, ict = self._dispatch("spmm_rows", csr)
        if fn is None:
            return super().spmm_rows(csr, rows, x)
        x = np.ascontiguousarray(x, dtype=np.float64)
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        out = np.empty((len(rows), x.shape[1]), dtype=np.float64)
        fn(_ptr(csr.indptr, pct), _ptr(csr.indices, ict),
           _ptr(csr.data, ctypes.c_double),
           _ptr(rows, ctypes.c_int64), len(rows),
           _ptr(x, ctypes.c_double), x.shape[1],
           _ptr(out, ctypes.c_double))
        return out, None  # fused: no sliced submatrix to stash

    def spmm_rows_t(self, csr, rows, g, ctx=None):
        fn, pct, ict = self._dispatch("spmm_rows_t", csr)
        if fn is None:
            return super().spmm_rows_t(csr, rows, g, ctx)
        g = np.ascontiguousarray(g, dtype=np.float64)
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        out = np.zeros((csr.shape[1], g.shape[1]), dtype=np.float64)
        fn(_ptr(csr.indptr, pct), _ptr(csr.indices, ict),
           _ptr(csr.data, ctypes.c_double),
           _ptr(rows, ctypes.c_int64), len(rows),
           _ptr(g, ctypes.c_double), g.shape[1],
           _ptr(out, ctypes.c_double))
        return out
