"""Autograd substrate: numpy-backed tensors with reverse-mode autodiff.

Public surface::

    from repro.tensor import Tensor, no_grad, ops, functional as F
    from repro.tensor import Parameter, Module, SGD, Adam
    from repro.tensor.sparse import SparseMatrix, spmm, spmm_rows
    from repro.tensor.backend import get_backend, available_backends
"""

from repro.tensor.tensor import Tensor, as_tensor, is_grad_enabled, no_grad
from repro.tensor.module import Module, Parameter
from repro.tensor.optim import SGD, Adam, Optimizer, clip_grad_norm
from repro.tensor.backend import (KernelBackend, available_backends,
                                  get_backend, registered_backends,
                                  resolve_backend)
from repro.tensor.sparse import SparseMatrix, spmm, spmm_rows
from repro.tensor import ops, functional, init

__all__ = [
    "Tensor", "as_tensor", "no_grad", "is_grad_enabled",
    "Module", "Parameter",
    "SGD", "Adam", "Optimizer", "clip_grad_norm",
    "SparseMatrix", "spmm", "spmm_rows",
    "KernelBackend", "get_backend", "resolve_backend",
    "available_backends", "registered_backends",
    "ops", "functional", "init",
]
