"""Module/Parameter abstractions (a small torch.nn.Module analogue).

Modules own named :class:`Parameter` leaves, recurse through attributes,
and support ``state_dict``/``load_state_dict`` — required by the
distributed trainer, which replicates the (small) GCN/RNN weights on every
rank (paper §4.2: "the GCN weight matrices W are very small in size and we
store a copy of the matrices in all the processors").
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import ShapeError
from repro.tensor.tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A leaf tensor registered as a learnable model parameter."""

    def __init__(self, data, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; ``parameters()`` and ``named_parameters()`` discover them
    recursively in deterministic (sorted) order so gradient all-reduce
    buffers line up across simulated ranks.
    """

    def __init__(self) -> None:
        self._params: dict[str, Parameter] = {}
        self._modules: dict[str, Module] = {}
        self.training = True

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_params", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    # -- discovery ---------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name in sorted(self._params):
            yield prefix + name, self._params[name]
        for name in sorted(self._modules):
            yield from self._modules[name].named_parameters(
                prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name in sorted(self._modules):
            yield from self._modules[name].named_modules(
                prefix=f"{prefix}{name}.")

    # -- training-state management -------------------------------------------------
    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for m in self._modules.values():
            m.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -- serialization ---------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise ShapeError(
                f"state_dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}")
        for name, p in own.items():
            value = np.asarray(state[name], dtype=p.data.dtype)
            if value.shape != p.data.shape:
                raise ShapeError(
                    f"parameter {name}: shape {value.shape} != "
                    f"{p.data.shape}")
            p.data = value.copy()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- call protocol ---------------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
