"""Reverse-mode automatic differentiation over numpy arrays.

This module provides the :class:`Tensor` class — a thin wrapper around a
``numpy.ndarray`` that records a tape of operations so gradients can be
propagated with :meth:`Tensor.backward`.

The engine is deliberately small but real: it supports broadcasting,
arbitrary DAGs (values consumed by several ops accumulate gradients),
a ``no_grad`` context used by the gradient-checkpointing machinery, and
explicit graph cutting via :meth:`Tensor.detach` — the primitive on which
block-wise timeline checkpointing (paper §3.1) is built.

Design notes
------------
* Gradients are stored on leaf tensors with ``requires_grad=True`` and on
  any intermediate for which ``retain_grad`` was requested.
* The backward pass walks a topological order of the recorded tape, so the
  cost is linear in the number of recorded ops.
* All data is kept as ``float64`` by default for reproducibility of the
  convergence experiments (paper Fig. 6 compares loss curves down to
  floating-point accumulation noise).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import GradientError, ShapeError

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables tape recording.

    Used by the checkpointed trainer for the first (memory-light) forward
    sweep and by evaluation code.
    """
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd tape."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload; converted to a ``float64`` ndarray by default.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad``.
    name:
        Optional debug label carried through error messages.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "_retain", "name")

    def __init__(self, data, requires_grad: bool = False,
                 name: str | None = None, dtype=np.float64) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=dtype)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self._retain = False
        self.name = name

    # -- basic introspection -------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        """Payload size in bytes (used by the device memory accountant)."""
        return self.data.nbytes

    @property
    def is_leaf(self) -> bool:
        return self._backward is None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tag = f" name={self.name!r}" if self.name else ""
        return (f"Tensor(shape={self.shape}, requires_grad="
                f"{self.requires_grad}{tag})")

    def __len__(self) -> int:
        return len(self.data)

    # -- graph construction helpers -------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Create a non-leaf tensor recording ``backward`` on the tape."""
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, dtype=data.dtype)
        if requires:
            out._backward = backward
            out._parents = tuple(parents)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype),
                            self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def retain_grad(self) -> "Tensor":
        """Request that ``self.grad`` be populated even for a non-leaf."""
        self._retain = True
        return self

    def detach(self) -> "Tensor":
        """Return a new leaf tensor sharing data but cut from the graph.

        This is the core primitive for gradient checkpointing: block
        boundaries detach the RNN carry state so each block's graph can be
        rebuilt and freed independently (paper §3.1).
        """
        return Tensor(self.data, requires_grad=False, dtype=self.data.dtype)

    def clone(self) -> "Tensor":
        """Return a leaf copy of this tensor (fresh storage)."""
        return Tensor(self.data.copy(), requires_grad=self.requires_grad,
                      dtype=self.data.dtype)

    def zero_grad(self) -> None:
        self.grad = None

    # -- backward pass ---------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded tape.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to 1 for scalar tensors; required
            for non-scalars (mirrors the usual autograd contract).
        """
        if not self.requires_grad:
            raise GradientError(
                "backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise GradientError(
                    "grad must be provided for non-scalar backward()")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ShapeError(
                f"backward grad shape {grad.shape} does not match tensor "
                f"shape {self.data.shape}")

        topo: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            g = grads.pop(id(node), None)
            if g is None:
                continue
            if node.is_leaf or node._retain:
                node._accumulate(g)
            if node._backward is not None:
                node._backward_into(g, grads)

    def _backward_into(self, g: np.ndarray,
                       grads: dict[int, np.ndarray]) -> None:
        """Run this node's backward fn, accumulating into ``grads``."""
        parent_grads = self._backward(g)
        if parent_grads is None:
            return
        if not isinstance(parent_grads, (tuple, list)):
            parent_grads = (parent_grads,)
        if len(parent_grads) != len(self._parents):
            raise GradientError(
                f"backward fn produced {len(parent_grads)} grads for "
                f"{len(self._parents)} parents")
        for parent, pg in zip(self._parents, parent_grads):
            if pg is None or not parent.requires_grad:
                continue
            pg = _unbroadcast(np.asarray(pg, dtype=parent.data.dtype),
                              parent.data.shape)
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + pg
            else:
                grads[key] = pg

    # -- operator sugar (implementations live in repro.tensor.ops) -------------
    def __add__(self, other):
        from repro.tensor import ops
        return ops.add(self, other)

    __radd__ = __add__

    def __sub__(self, other):
        from repro.tensor import ops
        return ops.sub(self, other)

    def __rsub__(self, other):
        from repro.tensor import ops
        return ops.sub(other, self)

    def __mul__(self, other):
        from repro.tensor import ops
        return ops.mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        from repro.tensor import ops
        return ops.div(self, other)

    def __rtruediv__(self, other):
        from repro.tensor import ops
        return ops.div(other, self)

    def __neg__(self):
        from repro.tensor import ops
        return ops.neg(self)

    def __matmul__(self, other):
        from repro.tensor import ops
        return ops.matmul(self, other)

    def __pow__(self, exponent: float):
        from repro.tensor import ops
        return ops.power(self, exponent)

    def __getitem__(self, index):
        from repro.tensor import ops
        return ops.getitem(self, index)

    # -- convenience methods ----------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False):
        from repro.tensor import ops
        return ops.sum_(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        from repro.tensor import ops
        return ops.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        from repro.tensor import ops
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self, axes: tuple[int, ...] | None = None):
        from repro.tensor import ops
        return ops.transpose(self, axes)

    @property
    def T(self):
        return self.transpose()

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared storage, read-mostly)."""
        return self.data


def as_tensor(value, requires_grad: bool = False) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)
