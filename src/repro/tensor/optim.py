"""Gradient-descent optimizers over :class:`Parameter` lists.

SGD (with momentum) and Adam, matching the training setup used in the
paper's per-epoch timing and convergence studies.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.tensor.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


class Optimizer:
    """Base optimizer: holds parameters, steps on their ``.grad``."""

    def __init__(self, params: list[Parameter], lr: float) -> None:
        self.params = list(params)
        if not self.params:
            raise ConfigError("optimizer created with no parameters")
        if lr <= 0:
            raise ConfigError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: list[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ConfigError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba), the default in the training harness."""

    def __init__(self, params: list[Parameter], lr: float = 0.001,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ConfigError(f"betas must be in [0, 1), got {betas}")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.betas
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * g * g
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Clip gradients in place to a global L2 norm; returns the norm."""
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad * p.grad).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm > 0:
        scale = max_norm / (norm + 1e-12)
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm
