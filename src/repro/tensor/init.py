"""Deterministic parameter initialization.

All initializers take an explicit ``numpy.random.Generator`` so the
convergence-fidelity experiments (paper Fig. 6) can replay identical
parameter draws for the snapshot-partitioned, vertex-partitioned and
sequential runs.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "zeros", "orthogonal"]


def xavier_uniform(shape: tuple[int, ...],
                   rng: np.random.Generator,
                   gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform init for 2-D weight matrices."""
    fan_in, fan_out = _fans(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: tuple[int, ...],
                  rng: np.random.Generator,
                  gain: float = 1.0) -> np.ndarray:
    fan_in, fan_out = _fans(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def orthogonal(shape: tuple[int, ...],
               rng: np.random.Generator,
               gain: float = 1.0) -> np.ndarray:
    """Orthogonal init (used for LSTM recurrent weights)."""
    rows, cols = shape
    flat = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q *= np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols]


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("init shape must have at least 1 dim")
    if len(shape) == 1:
        return shape[0], shape[0]
    return shape[0], shape[1]
