"""Differentiable activations and losses.

Everything needed by the three dynamic-GNN models: ReLU for GCN (paper
Eq. 2), sigmoid/tanh for the LSTM gates (paper §5.1/§5.2), and the
cross-entropy losses used for link prediction and node classification
(paper §2.2, §6.4).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.tensor.tensor import Tensor, as_tensor

__all__ = [
    "relu", "sigmoid", "tanh", "softmax", "log_softmax", "cross_entropy",
    "binary_cross_entropy_with_logits", "mse_loss",
]


def relu(x) -> Tensor:
    x = as_tensor(x)
    mask = x.data > 0
    out = x.data * mask

    def backward(g):
        return (g * mask,)

    return Tensor._make(out, (x,), backward)


def sigmoid(x) -> Tensor:
    x = as_tensor(x)
    # numerically stable split over sign
    out = np.empty_like(x.data)
    pos = x.data >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x.data[pos]))
    ex = np.exp(x.data[~pos])
    out[~pos] = ex / (1.0 + ex)

    def backward(g):
        return (g * out * (1.0 - out),)

    return Tensor._make(out, (x,), backward)


def tanh(x) -> Tensor:
    x = as_tensor(x)
    out = np.tanh(x.data)

    def backward(g):
        return (g * (1.0 - out * out),)

    return Tensor._make(out, (x,), backward)


def _stable_log_softmax(z: np.ndarray) -> np.ndarray:
    zmax = z.max(axis=-1, keepdims=True)
    shifted = z - zmax
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


def softmax(x) -> Tensor:
    x = as_tensor(x)
    out = np.exp(_stable_log_softmax(x.data))

    def backward(g):
        dot = (g * out).sum(axis=-1, keepdims=True)
        return (out * (g - dot),)

    return Tensor._make(out, (x,), backward)


def log_softmax(x) -> Tensor:
    x = as_tensor(x)
    out = _stable_log_softmax(x.data)
    soft = np.exp(out)

    def backward(g):
        return (g - soft * g.sum(axis=-1, keepdims=True),)

    return Tensor._make(out, (x,), backward)


def cross_entropy(logits, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between row logits and integer labels.

    Parameters
    ----------
    logits:
        Tensor of shape ``(n, C)``.
    labels:
        Integer array of shape ``(n,)`` with values in ``[0, C)``.
    """
    logits = as_tensor(logits)
    labels = np.asarray(labels, dtype=np.int64)
    if logits.ndim != 2:
        raise ShapeError("cross_entropy expects 2-D logits")
    if labels.shape != (logits.shape[0],):
        raise ShapeError(
            f"labels shape {labels.shape} incompatible with logits "
            f"{logits.shape}")
    n = logits.shape[0]
    logp = _stable_log_softmax(logits.data)
    picked = logp[np.arange(n), labels]
    out = np.asarray(-picked.mean())
    soft = np.exp(logp)

    def backward(g):
        grad = soft.copy()
        grad[np.arange(n), labels] -= 1.0
        return (grad * (g / n),)

    return Tensor._make(out, (logits,), backward)


def binary_cross_entropy_with_logits(logits, targets: np.ndarray) -> Tensor:
    """Mean BCE over arbitrary-shape logits against 0/1 targets."""
    logits = as_tensor(logits)
    targets = np.asarray(targets, dtype=np.float64)
    if targets.shape != logits.shape:
        raise ShapeError(
            f"targets shape {targets.shape} != logits shape {logits.shape}")
    z = logits.data
    # log(1 + exp(-|z|)) + max(z, 0) - z*t  (numerically stable)
    loss = np.maximum(z, 0) - z * targets + np.log1p(np.exp(-np.abs(z)))
    out = np.asarray(loss.mean())
    n = z.size

    def backward(g):
        sig = np.empty_like(z)
        pos = z >= 0
        sig[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
        ez = np.exp(z[~pos])
        sig[~pos] = ez / (1.0 + ez)
        return ((sig - targets) * (g / n),)

    return Tensor._make(out, (logits,), backward)


def mse_loss(pred, target: np.ndarray) -> Tensor:
    pred = as_tensor(pred)
    target = np.asarray(target, dtype=np.float64)
    diff = pred.data - target
    out = np.asarray((diff * diff).mean())
    n = diff.size

    def backward(g):
        return (2.0 * diff * (g / n),)

    return Tensor._make(out, (pred,), backward)
