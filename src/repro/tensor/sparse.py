"""Sparse matrices and the differentiable SpMM kernel.

The dynamic-GNN workload multiplies a *fixed* sparse graph operator (the
normalized Laplacian, paper Eq. 1) with dense feature matrices (Eq. 2).
Gradients are therefore needed only with respect to the dense operand:

    Y = S @ X        =>      dL/dX = S.T @ dL/dY

``SparseMatrix`` wraps a ``scipy.sparse.csr_matrix`` and additionally
exposes the byte accounting needed by the CPU→GPU transfer model (index
bytes vs value bytes are tracked separately because the graph-difference
technique of paper §3.2 saves *index* bytes only).

The kernels themselves (SpMM, fused row-sliced SpMM, transpose
materialization, row slicing) run on a pluggable
:class:`~repro.tensor.backend.KernelBackend`.  A matrix is pinned to
one backend at construction (kwarg > ``REPRO_KERNEL_BACKEND`` env >
``reference``); passing a *different* explicit ``backend=`` to a kernel
raises :class:`~repro.errors.KernelError` — convert with
:meth:`SparseMatrix.with_backend` instead.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import KernelError, ShapeError
from repro.tensor.backend import KernelBackend, get_backend, resolve_backend
from repro.tensor.tensor import Tensor, as_tensor

__all__ = ["SparseMatrix", "spmm", "spmm_rows", "spmm_memo", "spmm_patch"]

# Wire format of the (index, value) sparse representation the paper
# ships CPU→GPU: PyTorch sparse tensors use int64 indices and float32
# values.  The 4:1 index:value byte ratio is what lets the
# graph-difference method reach ~4x transfer savings (paper §6.2) —
# indices dominate the naive payload and GD only ships the differing
# ones.  (In-memory numerics in this library stay float64 for the
# convergence-fidelity experiments; only the modeled transfer sizes use
# the float32 wire width.)
INDEX_BYTES = 8
VALUE_BYTES = 4
# dense feature rows move between devices as float32 as well
WIRE_FLOAT_BYTES = 4


class SparseMatrix:
    """An immutable CSR sparse matrix with transfer-size accounting.

    Parameters
    ----------
    matrix:
        Any scipy sparse matrix (converted to CSR) or a dense ndarray.
    backend:
        Kernel backend name or instance; ``None`` applies the selection
        precedence (env var, then default), except when copying another
        ``SparseMatrix``, whose backend is adopted.
    """

    __slots__ = ("csr", "_csr_t", "_transpose_builds", "backend")

    def __init__(self, matrix, backend: str | KernelBackend | None = None
                 ) -> None:
        self._csr_t = None
        self._transpose_builds = 0
        if isinstance(matrix, SparseMatrix):
            self.csr = matrix.csr
            self._csr_t = matrix._csr_t  # share the transpose cache
            # the cache and its build count travel together — a copy
            # that inherits a built transpose inherits the build
            self._transpose_builds = matrix._transpose_builds
            self.backend = resolve_backend(backend) \
                if backend is not None else matrix.backend
        elif sp.issparse(matrix):
            self.csr = matrix.tocsr()
            self.backend = resolve_backend(backend)
        else:
            self.csr = sp.csr_matrix(np.asarray(matrix, dtype=np.float64))
            self.backend = resolve_backend(backend)
        self.csr.sum_duplicates()

    # -- structure -------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self.csr.shape

    @property
    def nnz(self) -> int:
        return self.csr.nnz

    @property
    def dtype(self):
        return self.csr.dtype

    def with_backend(self, backend: str | KernelBackend) -> "SparseMatrix":
        """This matrix pinned to another backend (CSR arrays and the
        transpose cache are shared, not copied)."""
        return SparseMatrix(self, backend=backend)

    def transposed_csr(self) -> sp.csr_matrix:
        """The CSR transpose, built lazily and cached.

        The sparse operand of :func:`spmm` is a fixed graph operator
        reused across layers and epochs; its transpose (needed only by
        the backward pass) is therefore computed at most once per
        matrix instead of per call.
        """
        if self._csr_t is None:
            self._csr_t = self.backend.transpose(self.csr)
            self._transpose_builds += 1
        return self._csr_t

    @property
    def transpose_builds(self) -> int:
        """How many times this matrix (or the matrix it was copied
        from) materialized its transpose."""
        return self._transpose_builds

    def transpose(self) -> "SparseMatrix":
        t = SparseMatrix(self.transposed_csr(), backend=self.backend)
        t._csr_t = self.csr  # (Aᵀ)ᵀ is already resident
        return t

    @property
    def T(self) -> "SparseMatrix":
        return self.transpose()

    def row_slice(self, rows: np.ndarray) -> sp.csr_matrix:
        """CSR submatrix of the requested ``rows`` (in ``rows`` order).

        ``(self.row_slice(rows) @ X)`` equals ``(self.csr @ X)[rows]``
        bit-for-bit: CSR row extraction preserves each row's entry
        order, so the per-row accumulation in the multiply is
        identical.  This is the gather kernel behind :func:`spmm_rows`
        and the serving tier's dirty-frontier refresh.
        """
        rows = np.asarray(rows, dtype=np.int64)
        return self.backend.row_slice(self.csr, rows)

    def coo_edges(self) -> np.ndarray:
        """Return an (nnz, 2) int64 array of (row, col) indices, sorted."""
        coo = self.csr.tocoo()
        edges = np.stack([coo.row.astype(np.int64),
                          coo.col.astype(np.int64)], axis=1)
        order = np.lexsort((edges[:, 1], edges[:, 0]))
        return edges[order]

    def values_sorted(self) -> np.ndarray:
        """Values aligned with :meth:`coo_edges` ordering."""
        coo = self.csr.tocoo()
        order = np.lexsort((coo.col, coo.row))
        return coo.data[order]

    # -- byte accounting (paper §3.2) -------------------------------------------
    @property
    def index_nbytes(self) -> int:
        """Bytes needed to ship the (row, col) index pairs."""
        return 2 * INDEX_BYTES * self.nnz

    @property
    def value_nbytes(self) -> int:
        """Bytes needed to ship the nonzero values."""
        return VALUE_BYTES * self.nnz

    @property
    def nbytes(self) -> int:
        """Full naive (index, value) sparse-transfer footprint."""
        return self.index_nbytes + self.value_nbytes

    # -- algebra ----------------------------------------------------------------
    def matmul_dense(self, dense: np.ndarray) -> np.ndarray:
        return self.backend.spmm(self.csr, dense)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SparseMatrix(shape={self.shape}, nnz={self.nnz}, "
                f"backend={self.backend.name!r})")

    @staticmethod
    def from_edges(edges: np.ndarray, values: np.ndarray | None,
                   shape: tuple[int, int],
                   backend: str | KernelBackend | None = None
                   ) -> "SparseMatrix":
        """Build from an (nnz, 2) index array and optional values."""
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if values is None:
            values = np.ones(len(edges), dtype=np.float64)
        mat = sp.csr_matrix(
            (np.asarray(values, dtype=np.float64),
             (edges[:, 0], edges[:, 1])), shape=shape)
        return SparseMatrix(mat, backend=backend)


def _kernel_backend(sparse: SparseMatrix,
                    backend: str | KernelBackend | None,
                    name: str) -> KernelBackend:
    """The backend a kernel call runs on: the sparse operand's pinned
    backend, unless an explicit override *agrees* with it.

    Backends own per-matrix cached state (the transpose cache, compiled
    handles), so a differing explicit ``backend=`` is an error, not a
    conversion — callers convert with
    :meth:`SparseMatrix.with_backend`.
    """
    if backend is None:
        return sparse.backend
    b = backend if isinstance(backend, KernelBackend) \
        else get_backend(backend)
    if b is not sparse.backend:
        raise KernelError(
            f"{name}: operand is pinned to backend "
            f"{sparse.backend.name!r} but backend={b.name!r} was "
            f"requested; use SparseMatrix.with_backend to convert")
    return b


def spmm(sparse: SparseMatrix, dense,
         backend: str | KernelBackend | None = None) -> Tensor:
    """Differentiable sparse @ dense product (gradient w.r.t. dense only).

    The sparse operand is a fixed graph operator; its (lazily cached)
    transpose serves the backward pass (``grad_X = S.T @ grad_Y``).

    .. warning::
       Autograd assumes ``sparse`` is frozen between forward and
       backward.  Do not tape over a *live* maintained operator
       (:attr:`LaplacianMaintainer.laplacian`, whose arrays the next
       ``update()`` replaces) — train on frozen ``export()`` copies,
       as :func:`~repro.train.preprocess.compute_laplacians` provides.
    """
    dense = as_tensor(dense)
    if dense.ndim != 2:
        raise ShapeError(f"spmm expects a 2-D dense operand, got "
                         f"{dense.ndim}-D")
    if sparse.shape[1] != dense.shape[0]:
        raise ShapeError(
            f"spmm shape mismatch: {sparse.shape} @ {dense.shape}")
    kb = _kernel_backend(sparse, backend, "spmm")
    out = kb.spmm(sparse.csr, dense.data)

    def backward(g):
        # lazy: the transpose is materialized only if backward runs,
        # and the per-matrix cache makes repeated calls free
        return (kb.spmm(sparse.transposed_csr(), g),)

    return Tensor._make(out, (dense,), backward)


def spmm_rows(sparse: SparseMatrix, dense, rows: np.ndarray,
              backend: str | KernelBackend | None = None) -> Tensor:
    """Row-sliced differentiable SpMM: only ``rows`` of ``S @ X``.

    Computes ``(S @ X)[rows]`` with the backend's fused
    gather-then-GEMM kernel — O(nnz(rows) · F) instead of O(nnz · F).
    The output rows are bit-identical to the corresponding rows of the
    full product (same per-row accumulation order).  The backward pass
    scatters the upstream gradient through the sliced operator:
    ``dL/dX = S[rows, :].T @ dL/dY`` (gradient w.r.t. the dense operand
    only, as for :func:`spmm`).
    """
    dense = as_tensor(dense)
    if dense.ndim != 2:
        raise ShapeError(f"spmm_rows expects a 2-D dense operand, got "
                         f"{dense.ndim}-D")
    if sparse.shape[1] != dense.shape[0]:
        raise ShapeError(
            f"spmm_rows shape mismatch: {sparse.shape} @ {dense.shape}")
    rows = np.asarray(rows, dtype=np.int64).reshape(-1)
    if len(rows) and (rows.min() < 0 or rows.max() >= sparse.shape[0]):
        raise ShapeError(
            f"spmm_rows row index out of range for {sparse.shape[0]} rows")
    kb = _kernel_backend(sparse, backend, "spmm_rows")
    out, ctx = kb.spmm_rows(sparse.csr, rows, dense.data)

    def backward(g):
        return (kb.spmm_rows_t(sparse.csr, rows, g, ctx),)

    return Tensor._make(out, (dense,), backward)


def _check_spmm_operands(sparse: SparseMatrix, dense: Tensor,
                         name: str) -> None:
    if dense.ndim != 2:
        raise ShapeError(f"{name} expects a 2-D dense operand, got "
                         f"{dense.ndim}-D")
    if sparse.shape[1] != dense.shape[0]:
        raise ShapeError(
            f"{name} shape mismatch: {sparse.shape} @ {dense.shape}")


def spmm_memo(sparse: SparseMatrix, dense, product: np.ndarray,
              backend: str | KernelBackend | None = None) -> Tensor:
    """``S @ X`` with the forward *values* taken from a memoized product.

    ``product`` must be bit-equal to ``sparse.csr @ dense.data`` (the
    caller — the training-tier :class:`~repro.train.reuse.AggregationCache`
    — verifies this by comparing the dense operand against the one the
    memo was computed from).  The forward therefore costs nothing, while
    the backward is the *unconditional* true Jacobian ``S.T @ g`` — no
    assumption beyond value equality is needed for exact gradients.
    """
    dense = as_tensor(dense)
    _check_spmm_operands(sparse, dense, "spmm_memo")
    kb = _kernel_backend(sparse, backend, "spmm_memo")
    product = np.asarray(product)
    if product.shape != (sparse.shape[0], dense.shape[1]):
        raise ShapeError(
            f"spmm_memo product shape {product.shape} does not match "
            f"{(sparse.shape[0], dense.shape[1])}")

    def backward(g):
        return (kb.spmm(sparse.transposed_csr(), g),)

    return Tensor._make(product, (dense,), backward)


def spmm_patch(sparse: SparseMatrix, dense, rows: np.ndarray,
               base: np.ndarray, parent: Tensor | None = None,
               backend: str | KernelBackend | None = None) -> Tensor:
    """``S @ X`` computed by patching a previous product's rows.

    The output equals ``base`` with ``rows`` overwritten by
    ``(S @ X)[rows]`` (fused row recompute, bit-identical to the full
    product's rows).  The caller guarantees that the untouched rows of
    ``base`` already equal the corresponding rows of ``S @ X`` — the
    cross-timestep reuse invariant established by the delta-touched
    frontier expansion.

    Backward routes gradients through the sliced recompute:
    ``dL/dX = S[rows, :].T @ g[rows]``.  When ``parent`` (the previous
    timestep's product tensor, whose data is ``base``) is given, the
    untouched rows' gradient ``g[~rows]`` flows to it — exact whenever
    the untouched rows of both products are the *same function* of the
    parameters, which the structural dirty propagation guarantees;
    without a parent the untouched rows are treated as constants (only
    valid when they carry no gradient, e.g. first-layer aggregations
    over leaf features).
    """
    dense = as_tensor(dense)
    _check_spmm_operands(sparse, dense, "spmm_patch")
    rows = np.asarray(rows, dtype=np.int64).reshape(-1)
    if len(rows) and (rows.min() < 0 or rows.max() >= sparse.shape[0]):
        raise ShapeError(
            f"spmm_patch row index out of range for {sparse.shape[0]} rows")
    base = np.asarray(base)
    if base.shape != (sparse.shape[0], dense.shape[1]):
        raise ShapeError(
            f"spmm_patch base shape {base.shape} does not match "
            f"{(sparse.shape[0], dense.shape[1])}")
    kb = _kernel_backend(sparse, backend, "spmm_patch")
    if len(rows) == 0:
        out = base
        ctx = None
    else:
        patch, ctx = kb.spmm_rows(sparse.csr, rows, dense.data)
        out = base.copy()
        out[rows] = patch

    if parent is None:
        def backward(g):
            if len(rows) == 0:
                return (np.zeros_like(dense.data),)
            return (kb.spmm_rows_t(sparse.csr, rows, g[rows], ctx),)

        return Tensor._make(out, (dense,), backward)

    def backward_chain(g):
        g_parent = g.copy()
        if len(rows) == 0:
            return (np.zeros_like(dense.data), g_parent)
        g_parent[rows] = 0.0
        return (kb.spmm_rows_t(sparse.csr, rows, g[rows], ctx),
                g_parent)

    return Tensor._make(out, (dense, parent), backward_chain)
