"""Sparse matrices and the differentiable SpMM kernel.

The dynamic-GNN workload multiplies a *fixed* sparse graph operator (the
normalized Laplacian, paper Eq. 1) with dense feature matrices (Eq. 2).
Gradients are therefore needed only with respect to the dense operand:

    Y = S @ X        =>      dL/dX = S.T @ dL/dY

``SparseMatrix`` wraps a ``scipy.sparse.csr_matrix`` and additionally
exposes the byte accounting needed by the CPU→GPU transfer model (index
bytes vs value bytes are tracked separately because the graph-difference
technique of paper §3.2 saves *index* bytes only).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import ShapeError
from repro.tensor.tensor import Tensor, as_tensor

__all__ = ["SparseMatrix", "spmm"]

# Wire format of the (index, value) sparse representation the paper
# ships CPU→GPU: PyTorch sparse tensors use int64 indices and float32
# values.  The 4:1 index:value byte ratio is what lets the
# graph-difference method reach ~4x transfer savings (paper §6.2) —
# indices dominate the naive payload and GD only ships the differing
# ones.  (In-memory numerics in this library stay float64 for the
# convergence-fidelity experiments; only the modeled transfer sizes use
# the float32 wire width.)
INDEX_BYTES = 8
VALUE_BYTES = 4
# dense feature rows move between devices as float32 as well
WIRE_FLOAT_BYTES = 4


class SparseMatrix:
    """An immutable CSR sparse matrix with transfer-size accounting.

    Parameters
    ----------
    matrix:
        Any scipy sparse matrix (converted to CSR) or a dense ndarray.
    """

    __slots__ = ("csr",)

    def __init__(self, matrix) -> None:
        if isinstance(matrix, SparseMatrix):
            self.csr = matrix.csr
        elif sp.issparse(matrix):
            self.csr = matrix.tocsr()
        else:
            self.csr = sp.csr_matrix(np.asarray(matrix, dtype=np.float64))
        self.csr.sum_duplicates()

    # -- structure -------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self.csr.shape

    @property
    def nnz(self) -> int:
        return self.csr.nnz

    @property
    def dtype(self):
        return self.csr.dtype

    def transpose(self) -> "SparseMatrix":
        return SparseMatrix(self.csr.T)

    @property
    def T(self) -> "SparseMatrix":
        return self.transpose()

    def coo_edges(self) -> np.ndarray:
        """Return an (nnz, 2) int64 array of (row, col) indices, sorted."""
        coo = self.csr.tocoo()
        edges = np.stack([coo.row.astype(np.int64),
                          coo.col.astype(np.int64)], axis=1)
        order = np.lexsort((edges[:, 1], edges[:, 0]))
        return edges[order]

    def values_sorted(self) -> np.ndarray:
        """Values aligned with :meth:`coo_edges` ordering."""
        coo = self.csr.tocoo()
        order = np.lexsort((coo.col, coo.row))
        return coo.data[order]

    # -- byte accounting (paper §3.2) -------------------------------------------
    @property
    def index_nbytes(self) -> int:
        """Bytes needed to ship the (row, col) index pairs."""
        return 2 * INDEX_BYTES * self.nnz

    @property
    def value_nbytes(self) -> int:
        """Bytes needed to ship the nonzero values."""
        return VALUE_BYTES * self.nnz

    @property
    def nbytes(self) -> int:
        """Full naive (index, value) sparse-transfer footprint."""
        return self.index_nbytes + self.value_nbytes

    # -- algebra ----------------------------------------------------------------
    def matmul_dense(self, dense: np.ndarray) -> np.ndarray:
        return self.csr @ dense

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SparseMatrix(shape={self.shape}, nnz={self.nnz})"

    @staticmethod
    def from_edges(edges: np.ndarray, values: np.ndarray | None,
                   shape: tuple[int, int]) -> "SparseMatrix":
        """Build from an (nnz, 2) index array and optional values."""
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if values is None:
            values = np.ones(len(edges), dtype=np.float64)
        mat = sp.csr_matrix(
            (np.asarray(values, dtype=np.float64),
             (edges[:, 0], edges[:, 1])), shape=shape)
        return SparseMatrix(mat)


def spmm(sparse: SparseMatrix, dense) -> Tensor:
    """Differentiable sparse @ dense product (gradient w.r.t. dense only).

    The sparse operand is a fixed graph operator; its transpose is captured
    for the backward pass (``grad_X = S.T @ grad_Y``).
    """
    dense = as_tensor(dense)
    if dense.ndim != 2:
        raise ShapeError(f"spmm expects a 2-D dense operand, got "
                         f"{dense.ndim}-D")
    if sparse.shape[1] != dense.shape[0]:
        raise ShapeError(
            f"spmm shape mismatch: {sparse.shape} @ {dense.shape}")
    out = sparse.csr @ dense.data
    csr_t = sparse.csr.T.tocsr()

    def backward(g):
        return (csr_t @ g,)

    return Tensor._make(out, (dense,), backward)
