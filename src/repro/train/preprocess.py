"""Input pre-processing (paper §5.4, §5.5, §6.1).

* :func:`degree_features` — the paper's input features: per-timestep
  in/out degrees (F = 2).
* :func:`apply_edge_life` — EvolveGCN's smoothing: each snapshot absorbs
  the edges of the previous ``l − 1`` snapshots.
* :func:`apply_mproduct_smoothing` — TM-GCN's smoothing: the sparse
  adjacency tensor (and optionally the features) is M-transformed along
  the timeline.
* :func:`compute_laplacians` / :func:`precompute_aggregation` — Eq. 1
  operators and the §5.5 trick of pre-computing the parameter-free
  ``Ã·X`` of the first layer once before training.

Both smoothing operations *increase* the overlap between consecutive
snapshots — the property that magnifies graph-difference gains for
TM-GCN and EvolveGCN relative to CD-GCN (paper §6.2).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.graph.diff import encode_sequence
from repro.graph.dtdg import DTDG
from repro.graph.inc_laplacian import LaplacianMaintainer
from repro.graph.snapshot import GraphSnapshot
from repro.nn.mproduct import m_matrix
from repro.tensor.sparse import SparseMatrix

__all__ = ["degree_features", "apply_edge_life", "apply_mproduct_smoothing",
           "compute_laplacians", "compute_laplacians_with_diffs",
           "precompute_aggregation", "smooth_for_model"]


def degree_features(dtdg: DTDG) -> list[np.ndarray]:
    """Per-timestep ``N × 2`` frames of (in-degree, out-degree)."""
    frames = []
    for snap in dtdg.snapshots:
        frames.append(np.stack([snap.in_degrees(), snap.out_degrees()],
                               axis=1))
    return frames


def _combine(snapshots: list[GraphSnapshot],
             coeffs: list[float]) -> GraphSnapshot:
    """Weighted union of snapshots (sparse sum of adjacency matrices)."""
    n = snapshots[0].num_vertices
    total = None
    for snap, c in zip(snapshots, coeffs):
        if c == 0.0 or snap.num_edges == 0:
            continue
        mat = snap.adjacency().csr * c
        total = mat if total is None else total + mat
    if total is None:
        return GraphSnapshot(n, np.empty((0, 2), dtype=np.int64))
    coo = total.tocoo()
    edges = np.stack([coo.row.astype(np.int64),
                      coo.col.astype(np.int64)], axis=1)
    return GraphSnapshot(n, edges, coo.data)


def apply_edge_life(dtdg: DTDG, life: int) -> DTDG:
    """EvolveGCN smoothing: ``A_t ← A_t + Σ_{i=t−l+1}^{t−1} A_i`` (§5.4)."""
    if life < 1:
        raise ConfigError(f"edge life must be >= 1, got {life}")
    out = []
    for t in range(dtdg.num_timesteps):
        lo = max(0, t - life + 1)
        window = dtdg.snapshots[lo:t + 1]
        out.append(_combine(window, [1.0] * len(window)))
    smoothed = DTDG(out, name=f"{dtdg.name}+edgelife{life}")
    return smoothed


def apply_mproduct_smoothing(dtdg: DTDG, window: int,
                             smooth_features: bool = True) -> DTDG:
    """TM-GCN smoothing: M-transform the adjacency tensor (and the
    feature tensor when present) along the timeline (§5.4)."""
    if window < 1:
        raise ConfigError(f"window must be >= 1, got {window}")
    t_count = dtdg.num_timesteps
    m = m_matrix(t_count, window)
    out = []
    for t in range(t_count):
        ks = np.nonzero(m[t])[0]
        out.append(_combine([dtdg.snapshots[k] for k in ks],
                            [m[t, k] for k in ks]))
    features = None
    if dtdg.features is not None and smooth_features:
        stacked = np.stack(dtdg.features)  # (T, N, F)
        smoothed = np.einsum("tk,knf->tnf", m, stacked)
        features = [smoothed[t] for t in range(t_count)]
    elif dtdg.features is not None:
        features = dtdg.features
    return DTDG(out, features, name=f"{dtdg.name}+mprod{window}")


def smooth_for_model(dtdg: DTDG, model_name: str,
                     edge_life: int = 3, window: int = 3) -> DTDG:
    """Apply each paper model's own preprocessing (§5.4/§6.1).

    TM-GCN → M-product; EvolveGCN → edge-life; CD-GCN → raw input.
    """
    if model_name == "tmgcn":
        return apply_mproduct_smoothing(dtdg, window)
    if model_name in ("egcn", "evolvegcn"):
        return apply_edge_life(dtdg, edge_life)
    if model_name == "cdgcn":
        return dtdg
    raise ConfigError(f"unknown model {model_name!r}")


def compute_laplacians(dtdg: DTDG, *,
                       backend=None) -> list[SparseMatrix]:
    """Normalized Laplacian ``Ã_t`` per snapshot (Eq. 1).

    ``Ã_0`` is built in full once; every subsequent operator streams
    through the :class:`~repro.graph.inc_laplacian.LaplacianMaintainer`
    via the timeline's GD deltas (§3.2), touching only the rows and
    columns each transition changed.  The result is bit-compatible
    with a per-snapshot full rebuild.  ``backend`` pins the kernel
    backend of the maintainer and every exported operator.
    """
    return compute_laplacians_with_diffs(dtdg, backend=backend)[0]


def compute_laplacians_with_diffs(dtdg: DTDG, *, backend=None):
    """Per-snapshot ``Ã_t`` plus the GD deltas that produced them.

    Returns ``(laplacians, diffs)`` where ``diffs[t - 1]`` encodes the
    transition ``A_{t-1} → A_t``.  The training tier's cross-timestep
    aggregation reuse consumes the diffs to derive each timestep's
    delta-touched row set, so they are exposed here instead of being
    recomputed from the snapshots a second time.
    """
    snapshots = dtdg.snapshots
    if not snapshots:
        return [], []
    first, diffs = encode_sequence(snapshots)
    maintainer = LaplacianMaintainer(first, backend=backend)
    laplacians = [maintainer.export()]
    for snap, diff in zip(snapshots[1:], diffs):
        maintainer.update(snap, diff)
        laplacians.append(maintainer.export())
    return laplacians, diffs


def precompute_aggregation(laplacians: list[SparseMatrix],
                           frames: list[np.ndarray]) -> list[np.ndarray]:
    """§5.5: the first layer's ``Ã·X`` is parameter-free — compute it
    once and reuse it every epoch."""
    if len(laplacians) != len(frames):
        raise ConfigError("laplacian/frame count mismatch")
    return [lap.backend.spmm(lap.csr, np.asarray(frame)) for lap, frame
            in zip(laplacians, frames)]
