"""Learning tasks over dynamic-GNN embeddings (paper §2.2, §6.4).

Link prediction follows the paper's protocol exactly: train on the
first ``T`` timesteps, predict edges of timestep ``T+1``.  Per training
timestep, a ``θ`` fraction of that snapshot's edges get label 1 and an
equal number of random vertex pairs get label 0; the test set is built
the same way from the held-out final snapshot.  Pairs are classified by
concatenating the two endpoint embeddings and applying a fully
connected layer.

Both tasks expose a *block* loss — ``loss_block(embeddings, t_start)``
— additive over blocks, which is the contract the checkpointed and
distributed trainers consume; ``loss_full`` is the single-block special
case.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError, DatasetError
from repro.graph.dtdg import DTDG
from repro.nn.linear import EdgeScorer, Linear
from repro.tensor import Tensor, functional as F, no_grad

__all__ = ["LinkPredictionTask", "NodeClassificationTask"]


def _sample_negative_pairs(num_vertices: int, count: int,
                           rng: np.random.Generator) -> np.ndarray:
    """Random vertex pairs with label 0 (paper §6.4 protocol)."""
    src = rng.integers(0, num_vertices, size=count)
    dst = rng.integers(0, num_vertices, size=count)
    return np.stack([src, dst], axis=1).astype(np.int64)


@dataclass
class _TimestepSample:
    pairs: np.ndarray   # (m, 2)
    labels: np.ndarray  # (m,) in {0, 1}


class LinkPredictionTask:
    """Paper §6.4 link prediction.

    Parameters
    ----------
    dtdg:
        The *full* dynamic graph; the last snapshot is held out as the
        test timestep ``T+1``, the rest form the training timeline.
    theta:
        Fraction of each snapshot's edges used as positive examples
        (paper: 0.1).
    embed_dim:
        Embedding width produced by the model (the head consumes
        ``2 × embed_dim``).
    """

    def __init__(self, dtdg: DTDG, embed_dim: int, theta: float = 0.1,
                 seed: int = 0) -> None:
        if not 0.0 < theta <= 1.0:
            raise ConfigError(f"theta must be in (0, 1], got {theta}")
        if dtdg.num_timesteps < 2:
            raise DatasetError("link prediction needs >= 2 timesteps")
        rng = np.random.default_rng(seed)
        n = dtdg.num_vertices
        self.num_vertices = n
        self.num_train_timesteps = dtdg.num_timesteps - 1
        self.theta = theta
        self.samples: list[_TimestepSample] = []
        for t in range(self.num_train_timesteps):
            self.samples.append(self._build_sample(dtdg[t], theta, rng))
        self.test_sample = self._build_sample(
            dtdg[dtdg.num_timesteps - 1], theta, rng)
        self.head = EdgeScorer(embed_dim, 2, rng)

    @staticmethod
    def _build_sample(snapshot, theta: float,
                      rng: np.random.Generator) -> _TimestepSample:
        n_pos = max(1, int(round(theta * snapshot.num_edges)))
        if snapshot.num_edges == 0:
            pos = np.empty((0, 2), dtype=np.int64)
            n_pos = 0
        else:
            idx = rng.choice(snapshot.num_edges,
                             size=min(n_pos, snapshot.num_edges),
                             replace=False)
            pos = snapshot.edges[np.sort(idx)]
            n_pos = len(pos)
        neg = _sample_negative_pairs(snapshot.num_vertices, n_pos, rng)
        pairs = np.concatenate([pos, neg], axis=0)
        labels = np.concatenate([np.ones(n_pos, dtype=np.int64),
                                 np.zeros(n_pos, dtype=np.int64)])
        return _TimestepSample(pairs=pairs, labels=labels)

    # -- training loss ------------------------------------------------------------------
    def loss_block(self, embeddings: list[Tensor],
                   t_start: int) -> Tensor | None:
        """Loss contribution of timesteps ``[t_start, t_start+len)``.

        Each timestep contributes its mean cross-entropy divided by the
        number of training timesteps, so block losses sum to the full
        loss regardless of the blocking.
        """
        total: Tensor | None = None
        for offset, z in enumerate(embeddings):
            t = t_start + offset
            if t >= self.num_train_timesteps:
                continue
            sample = self.samples[t]
            if len(sample.pairs) == 0:
                continue
            logits = self.head(z, sample.pairs)
            term = F.cross_entropy(logits, sample.labels) * \
                (1.0 / self.num_train_timesteps)
            total = term if total is None else total + term
        return total

    def loss_full(self, embeddings: list[Tensor]) -> Tensor:
        loss = self.loss_block(embeddings, 0)
        if loss is None:
            raise DatasetError("no training pairs available")
        return loss

    # -- evaluation -----------------------------------------------------------------------
    def test_accuracy(self, final_embedding: Tensor) -> float:
        """Accuracy on the held-out timestep, scored from the last
        available embedding (the paper predicts ``T+1`` from ``T``)."""
        sample = self.test_sample
        if len(sample.pairs) == 0:
            return float("nan")
        with no_grad():
            logits = self.head(final_embedding, sample.pairs)
        pred = logits.data.argmax(axis=1)
        return float((pred == sample.labels).mean())

    def train_accuracy(self, embeddings: list[Tensor]) -> float:
        correct = 0
        total = 0
        with no_grad():
            for t, z in enumerate(embeddings[:self.num_train_timesteps]):
                sample = self.samples[t]
                if len(sample.pairs) == 0:
                    continue
                pred = self.head(z, sample.pairs).data.argmax(axis=1)
                correct += int((pred == sample.labels).sum())
                total += len(sample.labels)
        return correct / total if total else float("nan")

    def head_flops_per_step(self) -> float:
        rows = int(np.mean([len(s.pairs) for s in self.samples])) \
            if self.samples else 0
        return self.head.fc.flops(rows)


class NodeClassificationTask:
    """Vertex classification (paper §2.2): ground-truth labels per vertex
    at each timestep, projected from embeddings by a learnable ``U``.

    Used with the AML-Sim account labels (suspicious vs normal).
    """

    def __init__(self, labels: np.ndarray, num_timesteps: int,
                 embed_dim: int, num_classes: int = 2,
                 seed: int = 0) -> None:
        labels = np.asarray(labels, dtype=np.int64)
        if labels.ndim == 1:
            labels = np.tile(labels, (num_timesteps, 1))
        if labels.shape[0] != num_timesteps:
            raise ConfigError("labels must cover every timestep")
        if labels.min() < 0 or labels.max() >= num_classes:
            raise ConfigError("label values out of class range")
        self.labels = labels
        self.num_train_timesteps = num_timesteps
        self.head = Linear(embed_dim, num_classes,
                           np.random.default_rng(seed))

    def loss_block(self, embeddings: list[Tensor],
                   t_start: int) -> Tensor | None:
        total: Tensor | None = None
        for offset, z in enumerate(embeddings):
            t = t_start + offset
            if t >= self.num_train_timesteps:
                continue
            term = F.cross_entropy(self.head(z), self.labels[t]) * \
                (1.0 / self.num_train_timesteps)
            total = term if total is None else total + term
        return total

    def loss_full(self, embeddings: list[Tensor]) -> Tensor:
        loss = self.loss_block(embeddings, 0)
        if loss is None:
            raise ConfigError("no embeddings supplied")
        return loss

    def accuracy(self, embeddings: list[Tensor]) -> float:
        correct = 0
        total = 0
        with no_grad():
            for t, z in enumerate(embeddings[:self.num_train_timesteps]):
                pred = self.head(z).data.argmax(axis=1)
                correct += int((pred == self.labels[t]).sum())
                total += len(pred)
        return correct / total if total else float("nan")

    def head_flops_per_step(self) -> float:
        return self.head.flops(self.labels.shape[1])
