"""Timeline gradient checkpointing (paper §3.1) — core contribution.

The timeline of ``T`` snapshots is cut into ``nb`` blocks.  The forward
pass streams the blocks under ``no_grad``, keeping only the inter-block
RNN carry ``π_b`` (hidden states / trailing window frames — paper
Fig. 2) and the scalar loss.  Backpropagation walks the blocks in
reverse: each block's forward is **re-run** with the tape enabled from
its stored carry, the block's own loss contribution is recomputed, the
gradient arriving from the *future* (the next block's gradient with
respect to this block's outgoing carry) is injected, and a normal
backward pass over just that block accumulates parameter gradients and
produces the carry gradient for the preceding block.

Only one block's activations are ever live, bounding GPU memory by
``O(T/nb)`` activations plus ``O(nb)`` carries — the trade the paper
balances by tuning ``nb``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.models.base import DynamicGNN, detach_carry
from repro.partition.snapshot_part import block_ranges
from repro.tensor import Tensor, no_grad
from repro.tensor.sparse import SparseMatrix

__all__ = ["CheckpointRunner", "flatten_tensors", "carry_nbytes",
           "ModelCheckpoint", "save_model_checkpoint",
           "load_model_checkpoint"]

# Loss callback: (block_embeddings, global_start_timestep) -> Tensor | None
BlockLossFn = Callable[[list[Tensor], int], Tensor | None]


def flatten_tensors(structure: Any) -> list[Tensor]:
    """Deterministic left-to-right list of every Tensor in a carry."""
    out: list[Tensor] = []

    def walk(node: Any) -> None:
        if isinstance(node, Tensor):
            out.append(node)
        elif isinstance(node, (list, tuple)):
            for item in node:
                walk(item)
        elif isinstance(node, dict):
            for key in sorted(node):
                walk(node[key])

    walk(structure)
    return out


def _leafify(structure: Any) -> Any:
    """Clone a carry with every Tensor replaced by a grad-requiring leaf."""
    if isinstance(structure, Tensor):
        leaf = Tensor(structure.data, requires_grad=True)
        return leaf
    if isinstance(structure, tuple):
        return tuple(_leafify(s) for s in structure)
    if isinstance(structure, list):
        return [_leafify(s) for s in structure]
    if isinstance(structure, dict):
        return {k: _leafify(v) for k, v in structure.items()}
    return structure


def carry_nbytes(carry: Any) -> int:
    """Bytes of checkpoint payload ``π_b`` (for the memory model)."""
    return sum(t.nbytes for t in flatten_tensors(carry))


@dataclass
class CheckpointResult:
    """Outcome of one checkpointed forward+backward epoch."""

    loss: float
    num_blocks: int
    peak_live_timesteps: int
    carry_bytes: int
    # wall seconds of the two forward sweeps (phase-1 streaming plus the
    # phase-2 per-block re-runs, which are forward work re-executed for
    # the backward schedule) — what the training bench reports as
    # per-epoch forward time
    forward_seconds: float = 0.0


class CheckpointRunner:
    """Executes the §3.1 two-phase schedule over a model's block protocol."""

    def __init__(self, model: DynamicGNN, num_blocks: int) -> None:
        if num_blocks < 1:
            raise ConfigError(f"num_blocks must be >= 1, got {num_blocks}")
        self.model = model
        self.num_blocks = num_blocks

    # -- forward only (inference) ---------------------------------------------------
    def forward_streaming(self, laplacians: Sequence[SparseMatrix],
                          frames: Sequence[Tensor]) -> list[Tensor]:
        """Memory-light inference: embeddings, one block at a time."""
        t_total = len(frames)
        if t_total == 0:
            return []
        outs: list[Tensor] = []
        carry = self.model.init_carry(frames[0].shape[0])
        with no_grad():
            for lo, hi in block_ranges(t_total, min(self.num_blocks,
                                                    t_total)):
                block_out, carry = self.model.forward_block(
                    list(laplacians[lo:hi]), list(frames[lo:hi]), carry,
                    t0=lo)
                outs.extend(block_out)
        return outs

    # -- training step ------------------------------------------------------------------
    def run_epoch(self, laplacians: Sequence[SparseMatrix],
                  frames: Sequence[Tensor],
                  block_loss: BlockLossFn) -> CheckpointResult:
        """One forward + checkpointed backward; parameter ``.grad`` fields
        are populated exactly as a full-graph backward would."""
        t_total = len(frames)
        if t_total == 0:
            raise ConfigError("cannot train on an empty timeline")
        if len(laplacians) != t_total:
            raise ConfigError("laplacian/frame count mismatch")
        nb = min(self.num_blocks, t_total)
        ranges = block_ranges(t_total, nb)
        rows = frames[0].shape[0]

        # ---- phase 1: streaming forward, storing carries ------------------
        # keep the live initial carry: it can contain learnable tensors
        # (EvolveGCN's base weight is the weight-LSTM's initial hidden
        # state), whose gradient arrives through block 0's carry
        init_carry_live = self.model.init_carry(rows)
        carries: list[Any] = [detach_carry(init_carry_live)]
        total_loss = 0.0
        forward_s = 0.0
        with no_grad():
            for lo, hi in ranges:
                t0 = time.perf_counter()
                block_out, carry = self.model.forward_block(
                    list(laplacians[lo:hi]), list(frames[lo:hi]),
                    carries[-1], t0=lo)
                forward_s += time.perf_counter() - t0
                carries.append(detach_carry(carry))
                loss = block_loss(block_out, lo)
                if loss is not None:
                    total_loss += loss.item()

        # ---- phase 2: reverse sweep with per-block re-run ------------------
        future_grads: list[np.ndarray] | None = None
        for b in range(nb - 1, -1, -1):
            lo, hi = ranges[b]
            carry_in = _leafify(carries[b])
            in_leaves = flatten_tensors(carry_in)
            t0 = time.perf_counter()
            block_out, carry_out = self.model.forward_block(
                list(laplacians[lo:hi]), list(frames[lo:hi]), carry_in,
                t0=lo)
            forward_s += time.perf_counter() - t0

            objective = block_loss(block_out, lo)
            # inject the future's gradient through the outgoing carry:
            # d(total)/d(carry_out) was produced by block b+1's backward
            if future_grads is not None:
                out_tensors = flatten_tensors(carry_out)
                if len(out_tensors) != len(future_grads):
                    raise ConfigError(
                        "carry structure changed between blocks; cannot "
                        "propagate checkpoint gradients")
                for tensor, grad in zip(out_tensors, future_grads):
                    if grad is None or not tensor.requires_grad:
                        continue
                    term = (tensor * Tensor(grad)).sum()
                    objective = term if objective is None \
                        else objective + term
            if objective is None or not objective.requires_grad:
                future_grads = [None] * len(in_leaves)
                continue
            objective.backward()
            future_grads = [leaf.grad for leaf in in_leaves]

        # route the gradient w.r.t. the initial carry into any learnable
        # tensors it contains (no-op for zero-state carries)
        if future_grads is not None:
            for tensor, grad in zip(flatten_tensors(init_carry_live),
                                    future_grads):
                if grad is not None and tensor.requires_grad:
                    tensor._accumulate(grad)

        bsize = max(hi - lo for lo, hi in ranges)
        return CheckpointResult(
            loss=total_loss, num_blocks=nb, peak_live_timesteps=bsize,
            carry_bytes=sum(carry_nbytes(c) for c in carries[1:]),
            forward_seconds=forward_s)


# ---------------------------------------------------------------------------
# Model persistence: the train→serve hand-off.
#
# A checkpoint is a single .npz with every model (and optional head)
# parameter plus a JSON config record sufficient to rebuild the model
# through repro.models.registry — the ModelServer's loading path.
# ---------------------------------------------------------------------------

@dataclass
class ModelCheckpoint:
    """A rebuilt model plus its task heads, as loaded from disk."""

    model: DynamicGNN
    model_name: str
    link_head: Any = None    # EdgeScorer | None
    fraud_head: Any = None   # Linear | None
    extra: dict | None = None


def _model_config(model: DynamicGNN, model_name: str) -> dict:
    config = {
        "model_name": model_name,
        "in_features": model.in_features,
        "hidden": model.hidden,
        "embed_dim": model.embed_dim,
        "num_layers": model.num_layers,
    }
    if hasattr(model, "window"):
        config["window"] = model.window
    return config


def save_model_checkpoint(path: str, model: DynamicGNN, model_name: str,
                          *, link_head=None, fraud_head=None,
                          extra: dict | None = None) -> str:
    """Persist a trained model (and optional heads) to ``path`` (.npz).

    ``model_name`` must resolve through the model registry so
    :func:`load_model_checkpoint` can rebuild the architecture.
    """
    from repro.models.registry import resolve_model_name
    config = _model_config(model, resolve_model_name(model_name))
    if link_head is not None:
        config["link_head"] = {"embed_dim": link_head.embed_dim,
                               "num_classes": link_head.num_classes}
    if fraud_head is not None:
        config["fraud_head"] = {"in_features": fraud_head.in_features,
                                "out_features": fraud_head.out_features,
                                "bias": fraud_head.use_bias}
    if extra:
        config["extra"] = extra
    payload: dict[str, np.ndarray] = {
        "config_json": np.array([json.dumps(config)])}
    for name, value in model.state_dict().items():
        payload[f"model/{name}"] = value
    if link_head is not None:
        for name, value in link_head.state_dict().items():
            payload[f"link_head/{name}"] = value
    if fraud_head is not None:
        for name, value in fraud_head.state_dict().items():
            payload[f"fraud_head/{name}"] = value
    # write through a file handle: np.savez would otherwise silently
    # append ".npz" to a suffix-less path and the returned path would
    # not exist
    with open(path, "wb") as fh:
        np.savez_compressed(fh, **payload)
    return path


def load_model_checkpoint(path: str, seed: int = 0) -> ModelCheckpoint:
    """Rebuild a model (via the registry) from a saved checkpoint."""
    from repro.models.registry import build_model
    from repro.nn.linear import EdgeScorer, Linear
    if not os.path.exists(path):
        raise ConfigError(f"no such checkpoint: {path}")
    with np.load(path, allow_pickle=False) as archive:
        config = json.loads(str(archive["config_json"][0]))
        kwargs = {}
        if "window" in config:
            kwargs["window"] = config["window"]
        model = build_model(config["model_name"],
                            in_features=config["in_features"],
                            hidden=config["hidden"],
                            embed_dim=config["embed_dim"],
                            num_layers=config["num_layers"],
                            seed=seed, **kwargs)

        def section(prefix: str) -> dict[str, np.ndarray]:
            plen = len(prefix) + 1
            return {key[plen:]: archive[key] for key in archive.files
                    if key.startswith(prefix + "/")}

        model.load_state_dict(section("model"))
        rng = np.random.default_rng(seed)
        link_head = fraud_head = None
        if "link_head" in config:
            spec = config["link_head"]
            link_head = EdgeScorer(spec["embed_dim"], spec["num_classes"],
                                  rng)
            link_head.load_state_dict(section("link_head"))
        if "fraud_head" in config:
            spec = config["fraud_head"]
            fraud_head = Linear(spec["in_features"], spec["out_features"],
                                rng, bias=spec["bias"])
            fraud_head.load_state_dict(section("fraud_head"))
    return ModelCheckpoint(model=model, model_name=config["model_name"],
                           link_head=link_head, fraud_head=fraud_head,
                           extra=config.get("extra"))
