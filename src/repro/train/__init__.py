"""Training systems: preprocessing, checkpointing, tasks, trainers."""

from repro.train.preprocess import (apply_edge_life, apply_mproduct_smoothing,
                                    compute_laplacians, degree_features,
                                    precompute_aggregation, smooth_for_model)
from repro.train.checkpoint import (CheckpointRunner, ModelCheckpoint,
                                    carry_nbytes, flatten_tensors,
                                    load_model_checkpoint,
                                    save_model_checkpoint)
from repro.train.tasks import LinkPredictionTask, NodeClassificationTask
from repro.train.metrics import ConvergenceCurve, EpochResult
from repro.train.trainer import SingleDeviceTrainer, TrainerConfig
from repro.train.distributed import DistConfig, DistributedTrainer

__all__ = [
    "degree_features", "apply_edge_life", "apply_mproduct_smoothing",
    "compute_laplacians", "precompute_aggregation", "smooth_for_model",
    "CheckpointRunner", "carry_nbytes", "flatten_tensors",
    "ModelCheckpoint", "save_model_checkpoint", "load_model_checkpoint",
    "LinkPredictionTask", "NodeClassificationTask",
    "EpochResult", "ConvergenceCurve",
    "SingleDeviceTrainer", "TrainerConfig",
    "DistConfig", "DistributedTrainer",
]
