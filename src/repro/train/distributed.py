"""Distributed training engines (paper §4) on the simulated cluster.

Three data distributions are implemented:

* **snapshot** (§4.2) — ranks own contiguous runs of timesteps (within
  each checkpoint block); the GCN stage is communication-free and the
  RNN stage is reached through two all-to-all redistributions per layer
  with fixed ``O(T·N)`` volume.  EvolveGCN additionally skips the
  redistributions entirely (§5.5) because its recurrence runs over
  replicated weights.
* **vertex** (§4.1) — ranks own (hypergraph-partitioned, consecutively
  renamed) vertex sets; the RNN is free but every SpMM exchanges
  neighbor feature rows along precomputed send lists, with volume that
  grows with P and an irregular packing/indexing overhead.
* **hybrid** (§6.5) — ranks form groups; snapshots are partitioned
  across groups and split row-wise within a group (per-snapshot
  all-gather), which is how the paper trains snapshots too large for a
  single GPU.

Numerics run *once* per epoch through the shared autograd graph — all
ranks live in one process, and the simulated schemes are mathematically
exact simulations of the sequential algorithm (the paper makes the same
argument in §6.4: "both schemes simulate the underlying sequential
algorithms faithfully").  Time, volume and memory are charged per rank
onto the cluster's clocks/ledgers as the real schedule would.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.errors import ConfigError, PartitionError
from repro.graph.dtdg import DTDG
from repro.graph.snapshot import GraphSnapshot
from repro.models.base import DynamicGNN
from repro.obs import Telemetry
from repro.partition.base import VertexChunks, contiguous_chunks
from repro.partition.hybrid import hybrid_partition
from repro.partition.snapshot_part import block_ranges
from repro.partition.vertex_part import (SnapshotCommPlan, VertexPartition,
                                         hypergraph_vertex_partition,
                                         random_vertex_partition)
from repro.tensor import Adam, Tensor, ops
from repro.tensor.sparse import WIRE_FLOAT_BYTES
from repro.train.metrics import EpochResult, collect_epoch_metrics
from repro.train.preprocess import (compute_laplacians,
                                    compute_laplacians_with_diffs,
                                    degree_features)
from repro.train.reuse import AggregationCache
from repro.train.tasks import LinkPredictionTask

__all__ = ["DistConfig", "DistributedTrainer"]


@dataclass(frozen=True)
class DistConfig:
    """Distributed-training knobs.

    ``partitioning`` selects the engine (``"snapshot"``, ``"vertex"``,
    ``"hybrid"``); ``vertex_method`` picks the §4.1 partitioner
    (``"hypergraph"`` or ``"random"``); ``group_size`` is the §6.5
    intra-group split width.  ``packing_overhead_per_byte`` models the
    send/recv buffer construction + irregular indexing cost that the
    paper identifies as vertex-partitioning's implementation overhead.
    """

    num_blocks: int = 1
    use_graph_difference: bool = True
    partitioning: str = "snapshot"
    vertex_method: str = "hypergraph"
    group_size: int = 1
    learning_rate: float = 0.01
    backward_compute_factor: float = 2.0
    packing_overhead_per_byte: float = 1.5e-10
    # per-peer send/recv buffer construction + index maintenance cost of
    # the irregular vertex-partitioning exchange (paper §6.4: "the
    # irregular indexing and buffering operations induce significant
    # overheads, especially when performed on GPU") — a latency-class
    # constant, charged per message on the issuing/receiving rank
    vertex_message_overhead: float = 8.0e-5
    precompute_first_layer: bool = False
    # cross-timestep aggregation reuse (repro.train.reuse): patch
    # delta-touched rows of each Ã·X instead of recomputing in full,
    # charge the simulated devices for the rows actually recomputed,
    # and — under vertex/hybrid partitioning — shrink the halo
    # exchanges to the delta-touched boundary rows
    reuse_aggregation: bool = False
    reuse_crossover: float = 0.35
    seed: int = 0

    def __post_init__(self) -> None:
        if self.partitioning not in ("snapshot", "vertex", "hybrid"):
            raise ConfigError(
                f"unknown partitioning {self.partitioning!r}")
        if self.vertex_method not in ("hypergraph", "random"):
            raise ConfigError(
                f"unknown vertex_method {self.vertex_method!r}")
        if self.num_blocks < 1:
            raise ConfigError("num_blocks must be >= 1")
        if self.group_size < 1:
            raise ConfigError("group_size must be >= 1")
        if not 0.0 < self.reuse_crossover <= 1.0:
            raise ConfigError("reuse_crossover must be in (0, 1]")


class DistributedTrainer:
    """Drives one model over one DTDG on a simulated cluster."""

    def __init__(self, model: DynamicGNN, dtdg: DTDG, task,
                 cluster: Cluster, config: DistConfig, *,
                 telemetry: Telemetry | None = None,
                 kernel_backend=None) -> None:
        self.model = model
        self.task = task
        self.cluster = cluster
        self.config = config
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        if dtdg.features is None:
            dtdg.set_features(degree_features(dtdg))
        self.dtdg = dtdg
        self.num_ranks = cluster.num_ranks
        self.train_t = task.num_train_timesteps
        if self.train_t < 1:
            raise ConfigError("no training timesteps")

        # one kernel backend for every operator this trainer multiplies
        # through (renamed operators included — _setup_vertex reads it)
        self.kernel_backend = kernel_backend
        self.laplacians, self._lap_diffs = \
            compute_laplacians_with_diffs(dtdg, backend=kernel_backend)
        self.frames = [Tensor(f) for f in dtdg.features]

        if config.partitioning == "vertex":
            self._setup_vertex()
        elif config.partitioning == "hybrid":
            self._setup_hybrid()
        else:
            self._setup_snapshot()

        # cross-timestep reuse cache over whichever operator space the
        # engine multiplies in (renamed for vertex partitioning)
        self.reuse: AggregationCache | None = None
        if config.reuse_aggregation:
            if config.partitioning == "vertex":
                from repro.graph.diff import encode_sequence
                _, renamed_diffs = encode_sequence(self.renamed_snaps)
                self.reuse = AggregationCache(
                    self.renamed_laps, renamed_diffs, self.renamed_snaps,
                    model.reuse_profile(),
                    crossover=config.reuse_crossover)
            else:
                self.reuse = AggregationCache(
                    self.laplacians, self._lap_diffs, dtdg.snapshots,
                    model.reuse_profile(),
                    crossover=config.reuse_crossover)

        params = model.parameters() + task.head.parameters()
        self.optimizer = Adam(params, lr=config.learning_rate)
        self._grad_nbytes = sum(p.nbytes for p in params)
        self._replay_comm: list[np.ndarray] = []
        self._block_transfer_log: list = []
        # seconds of per-rank sparse compute charged by the reuse path
        # (forward + its exact backward estimate) — excluded from the
        # backward factor sweep, which would otherwise re-multiply them
        self._reuse_sparse_s = [0.0] * self.num_ranks

    @classmethod
    def from_store(cls, model: DynamicGNN, store, task_factory,
                   cluster: Cluster, config: DistConfig, *,
                   start: int = 0, stop: int | None = None
                   ) -> "DistributedTrainer":
        """Train over a :class:`~repro.store.store.GraphStore` window
        (lazy :class:`~repro.store.store.StoreView`) instead of an
        in-memory DTDG; ``task_factory(dtdg)`` builds the task over the
        view."""
        view = store.window(start, stop)
        return cls(model, view, task_factory(view), cluster, config)

    # ------------------------------------------------------------------
    # setup per partitioning scheme
    # ------------------------------------------------------------------
    def _setup_snapshot(self) -> None:
        self.vertex_chunks = VertexChunks.uniform(self.dtdg.num_vertices,
                                                  self.num_ranks)

    def _setup_vertex(self) -> None:
        """§4.1 preprocessing: partition, rename, precompute send lists.

        All of this happens once before training (the paper charges it
        as preprocessing, not per-epoch time)."""
        cfg = self.config
        n = self.dtdg.num_vertices
        train_view = DTDG(self.dtdg.snapshots[:self.train_t], name="train")
        if cfg.vertex_method == "hypergraph":
            self.vpart = hypergraph_vertex_partition(train_view,
                                                     self.num_ranks,
                                                     seed=cfg.seed)
        else:
            self.vpart = random_vertex_partition(n, self.num_ranks,
                                                 seed=cfg.seed)
        # renamed snapshots / Laplacians / features
        self.renamed_laps = []
        self.renamed_snaps = []
        for snap in self.dtdg.snapshots:
            renamed = GraphSnapshot(n, self.vpart.rename_edges(snap.edges),
                                    snap.values)
            self.renamed_snaps.append(renamed)
        self.renamed_laps = compute_laplacians(
            DTDG(self.renamed_snaps, name="renamed"),
            backend=self.kernel_backend)
        old_of_new = np.argsort(self.vpart.perm)
        self.renamed_frames = [Tensor(f.data[old_of_new])
                               for f in self.frames]
        self.comm_plans = [SnapshotCommPlan.build(lap, self.vpart)
                           for lap in self.renamed_laps[:self.train_t]]
        # per-rank row ranges and per-snapshot nnz shares
        self.row_nnz = []
        for lap in self.renamed_laps:
            indptr = lap.csr.indptr
            per_rank = []
            for p in range(self.num_ranks):
                lo, hi = self.vpart.chunks.ranges[p]
                per_rank.append(int(indptr[hi] - indptr[lo]))
            self.row_nnz.append(per_rank)

    def _setup_hybrid(self) -> None:
        cfg = self.config
        if self.num_ranks % cfg.group_size != 0:
            raise PartitionError("group_size must divide num_ranks")
        self.hplan = hybrid_partition(
            self.train_t, self.dtdg.num_vertices, self.num_ranks,
            cfg.group_size,
            num_blocks=cfg.num_blocks if cfg.num_blocks > 1 else None)
        if self.hplan.num_groups > 1 and self.model.kind == "gcn_rnn":
            raise ConfigError(
                "hybrid partitioning with multiple groups is implemented "
                "for EvolveGCN only; gcn_rnn models need a single group "
                "(the paper's §6.5 configuration)")
        # per-snapshot nnz within each member's row block
        self.hybrid_row_nnz = []
        for lap in self.laplacians:
            indptr = lap.csr.indptr
            per_member = []
            for i in range(cfg.group_size):
                lo, hi = self.hplan.row_chunks.ranges[i]
                per_member.append(int(indptr[hi] - indptr[lo]))
            self.hybrid_row_nnz.append(per_member)

    # ------------------------------------------------------------------
    # shared charging helpers
    # ------------------------------------------------------------------
    def _charge_a2a(self, matrix: np.ndarray, label: str,
                    record: bool = True,
                    full_equivalent: np.ndarray | None = None) -> None:
        self.cluster.comm.all_to_all_bytes(matrix, label=label,
                                           full_equivalent=full_equivalent)
        if record:
            self._replay_comm.append((matrix, label, full_equivalent))

    def _charge_sparse_rank(self, rank: int, flops: float) -> None:
        """Charge delta-aware sparse FLOPs (forward + exact-backward
        estimate) onto one rank, remembering the seconds so the
        backward factor sweep does not re-multiply them."""
        secs = self.cluster.device(rank).compute_sparse(flops)
        self._reuse_sparse_s[rank] += secs

    def _charge_packing(self, matrix: np.ndarray) -> None:
        """Irregular exchange overheads (vertex partitioning): per-byte
        gather/scatter packing plus per-peer message setup."""
        rate = self.config.packing_overhead_per_byte
        setup = self.config.vertex_message_overhead
        sent = matrix.sum(axis=1)
        received = matrix.sum(axis=0)
        sends = (matrix > 0).sum(axis=1)
        recvs = (matrix > 0).sum(axis=0)
        for r in range(self.num_ranks):
            seconds = float(sent[r] + received[r]) * rate + \
                float(sends[r] + recvs[r]) * setup
            if seconds > 0:
                self.cluster.clocks[r].advance("comm", seconds)

    def _charge_block_transfer(self, rank: int,
                               snaps: list[GraphSnapshot],
                               frame_bytes: int, use_gd: bool) -> None:
        engine = self.cluster.transfer(rank)
        device = self.cluster.device(rank)
        if use_gd:
            engine.send_block_gd(device, snaps)
        else:
            engine.send_block_naive(device, snaps)
        if frame_bytes:
            engine.send_dense(device, frame_bytes)

    def _account_block_memory(self, rank: int, input_bytes: int,
                              activation_bytes: int):
        """Reserve a block's inputs + activations on the rank's device.

        Returns the allocation handle (freed when the block retires).
        Raising :class:`~repro.errors.DeviceOOM` here is how the
        benchmark harness reproduces the paper's blank entries ("did not
        execute on small numbers of GPUs due to insufficient memory")."""
        device = self.cluster.device(rank)
        return device.alloc(max(input_bytes + activation_bytes, 1), "block")

    # ------------------------------------------------------------------
    # snapshot engine (§4.2)
    # ------------------------------------------------------------------
    def _snapshot_epoch_forward(self) -> tuple[Tensor, Tensor]:
        cfg = self.config
        p_count = self.num_ranks
        nb = min(cfg.num_blocks, self.train_t)
        ranges = block_ranges(self.train_t, nb)
        chunks = self.vertex_chunks
        n = self.dtdg.num_vertices

        if self.model.kind == "evolve":
            wstates = self.model.init_carry(n)
        else:
            # The RNN is row-independent, so executing it monolithically
            # is mathematically identical to running it per vertex chunk
            # (the paper's §6.4 faithful-simulation argument); per-rank
            # time is still charged chunk-by-chunk below.
            rnn_states = [self.model.rnn_init(idx, n)
                          for idx in range(self.model.num_layers)]

        total_loss: Tensor | None = None
        last_embedding: Tensor | None = None
        act_per_step = self.model.activation_bytes_per_step(n)
        for lo, hi in ranges:
            local = contiguous_chunks(hi - lo, p_count)
            owner = np.empty(hi - lo, dtype=np.int64)
            block_handles = []
            for r, (s, e) in enumerate(local):
                owner[s:e] = r
                snaps = [self.dtdg.snapshots[lo + t] for t in range(s, e)]
                frame_bytes = sum(self.frames[lo + t].size *
                                  WIRE_FLOAT_BYTES for t in range(s, e))
                input_bytes = sum(sn.nbytes for sn in snaps) + frame_bytes
                # forward activations + gradient buffers live together
                # during backward (factor 2); baseline (nb=1) therefore
                # holds the whole timeline's activations at once
                block_handles.append(self._account_block_memory(
                    r, input_bytes, 2 * (e - s) * act_per_step))
                if snaps or frame_bytes:
                    self._charge_block_transfer(
                        r, snaps, frame_bytes, cfg.use_graph_difference)
                    self._block_transfer_log.append(
                        (r, snaps, frame_bytes, cfg.use_graph_difference))

            xs = list(self.frames[lo:hi])
            if self.model.kind == "evolve":
                xs, wstates = self._evolve_block(lo, hi, xs, owner, wstates)
            else:
                for idx in range(self.model.num_layers):
                    xs, rnn_states[idx] = self._gcn_rnn_layer_block(
                        idx, lo, hi, xs, owner, rnn_states[idx])

            block_loss = self.task.loss_block(xs, lo)
            head_flops = self.task.head_flops_per_step()
            for i in range(hi - lo):
                self.cluster.device(int(owner[i])).compute_dense(head_flops)
            if block_loss is not None:
                total_loss = block_loss if total_loss is None \
                    else total_loss + block_loss
            if hi == self.train_t:
                last_embedding = xs[-1]
            for r, handle in enumerate(block_handles):
                self.cluster.device(r).free(handle)
                if cfg.num_blocks > 1:
                    # the π_b carry stays resident until backward (§3.1)
                    self.cluster.device(r).alloc(
                        max(act_per_step // 4, 1), "carry")
        if total_loss is None:
            raise ConfigError("epoch produced no loss terms")
        return total_loss, last_embedding

    def _evolve_block(self, lo, hi, xs, owner, wstates):
        """EvolveGCN: replicated weight evolution + local GCN (§5.5)."""
        n = self.dtdg.num_vertices
        count = hi - lo
        for idx in range(self.model.num_layers):
            weights, wstates[idx] = self.model.evolve_weights(
                idx, count, wstates[idx])
            rnn_flops = self.model.rnn_flops_per_step(n) * count
            for device in self.cluster.devices:
                device.compute_dense(rnn_flops /
                                     max(self.model.num_layers, 1))
            new_xs = []
            for i in range(count):
                t = lo + i
                lap = self.laplacians[t]
                sparse, dense = self.model.gcn_layer(idx).flops(lap.nnz, n)
                device = self.cluster.device(int(owner[i]))
                agg = None
                if self.reuse is not None:
                    agg = self.reuse.aggregate(idx, t, lap, xs[i])
                    call = self.reuse.last_call
                    self._charge_sparse_rank(
                        int(owner[i]),
                        call.forward_flops + call.backward_flops)
                else:
                    device.compute_sparse(sparse)
                device.compute_dense(dense)
                new_xs.append(self.model.gcn_layer(idx).forward_with_weight(
                    lap, xs[i], weights[i], precomputed=agg))
            xs = new_xs
        return xs, wstates

    def _gcn_rnn_layer_block(self, idx, lo, hi, xs, owner, layer_states):
        """One GCN stage + redistribution + RNN + redistribution (§4.2)."""
        p_count = self.num_ranks
        chunks = self.vertex_chunks
        n = self.dtdg.num_vertices
        count = hi - lo

        ys = []
        for i in range(count):
            t = lo + i
            lap = self.laplacians[t]
            sparse, dense = self.model.gcn_layer(idx).flops(lap.nnz, n)
            device = self.cluster.device(int(owner[i]))
            agg = None
            if self.reuse is not None:
                agg = self.reuse.aggregate(idx, t, lap, xs[i])
                call = self.reuse.last_call
                self._charge_sparse_rank(
                    int(owner[i]),
                    call.forward_flops + call.backward_flops)
            else:
                device.compute_sparse(sparse)
            device.compute_dense(dense)
            ys.append(self.model.gcn_forward(idx, lap, xs[i],
                                             precomputed=agg))
        feat = ys[0].shape[1]

        # redistribution 1: snapshot layout -> vertex-chunk layout
        matrix = np.zeros((p_count, p_count))
        steps_of = np.bincount(owner, minlength=p_count)
        for src in range(p_count):
            for dst in range(p_count):
                matrix[src, dst] = (steps_of[src] * chunks.size(dst) *
                                    feat * WIRE_FLOAT_BYTES)
        self._charge_a2a(matrix, "redistribution")

        # RNN over vertex chunks: charge each rank for its rows, execute
        # the row-independent numerics once (identical results)
        for q in range(p_count):
            rows = chunks.size(q)
            if rows:
                self.cluster.device(q).compute_dense(
                    self.model.rnn_flops_per_step(rows) * count)
        zs, new_state = self.model.rnn_block(idx, ys, layer_states)

        # redistribution 2: back to snapshot layout for the next layer
        self._charge_a2a(matrix.T, "redistribution")
        return zs, new_state

    # ------------------------------------------------------------------
    # vertex engine (§4.1)
    # ------------------------------------------------------------------
    def _vertex_epoch_forward(self) -> tuple[Tensor, Tensor]:
        cfg = self.config
        p_count = self.num_ranks
        nb = min(cfg.num_blocks, self.train_t)
        ranges = block_ranges(self.train_t, nb)
        n = self.dtdg.num_vertices
        sizes = [self.vpart.chunks.size(p) for p in range(p_count)]

        if self.model.kind == "evolve":
            wstates = self.model.init_carry(n)
        else:
            rnn_states = [self.model.rnn_init(idx, n)
                          for idx in range(self.model.num_layers)]

        total_loss: Tensor | None = None
        last_embedding: Tensor | None = None
        act_per_step = self.model.activation_bytes_per_step(n)
        for lo, hi in ranges:
            # transfer: each rank streams its row share of the block
            block_handles = []
            for r in range(p_count):
                share = sum(self.row_nnz[t][r] for t in range(lo, hi))
                total_nnz = sum(max(self.renamed_laps[t].nnz, 1)
                                for t in range(lo, hi))
                snap_bytes = sum(self.renamed_snaps[t].nbytes
                                 for t in range(lo, hi))
                frame_bytes = sum(self.renamed_frames[t].size *
                                  WIRE_FLOAT_BYTES
                                  for t in range(lo, hi))
                nbytes = int(snap_bytes * share / total_nnz +
                             frame_bytes * sizes[r] / n)
                act_bytes = 2 * (hi - lo) * act_per_step * sizes[r] // n
                block_handles.append(self._account_block_memory(
                    r, nbytes, act_bytes))
                engine = self.cluster.transfer(r)
                engine.h2d(self.cluster.device(r), nbytes)
                engine.stats.snapshot_bytes_naive_equivalent += nbytes
                self._block_transfer_log.append(
                    ("raw", r, nbytes))

            xs = list(self.renamed_frames[lo:hi])
            if self.model.kind == "evolve":
                xs, wstates = self._vertex_evolve_block(lo, hi, xs, wstates)
            else:
                for idx in range(self.model.num_layers):
                    xs, rnn_states[idx] = self._vertex_layer_block(
                        idx, lo, hi, xs, rnn_states[idx])

            # loss computed on embeddings mapped back to original ids
            orig = [x[self.vpart.perm] for x in xs]
            block_loss = self.task.loss_block(orig, lo)
            head_flops = self.task.head_flops_per_step() / p_count
            for device in self.cluster.devices:
                device.compute_dense(head_flops * (hi - lo))
            if block_loss is not None:
                total_loss = block_loss if total_loss is None \
                    else total_loss + block_loss
            if hi == self.train_t:
                last_embedding = orig[-1]
            for r, handle in enumerate(block_handles):
                self.cluster.device(r).free(handle)
        if total_loss is None:
            raise ConfigError("epoch produced no loss terms")
        return total_loss, last_embedding

    def _vertex_spmm_comm(self, t: int, feat: int,
                          halo_rows: np.ndarray | None = None) -> None:
        """Charge one SpMM's neighbor-row exchange.

        ``halo_rows`` (delta-aware mode) are the renamed input rows
        whose values changed since the previous timestep: receivers
        mirror remote rows across timesteps, so only the changed
        send-list rows move — the full exchange is recorded as the
        event's full-equivalent volume.  ``None`` ships everything (the
        always-full baseline, a chain reset, or an unknown delta).
        """
        plan = self.comm_plans[t]
        full = plan.bytes_matrix(feat)
        if halo_rows is None:
            self._charge_a2a(full, "redistribution")
            self._charge_packing(full)
            return
        matrix = plan.bytes_matrix_rows(feat, halo_rows)
        self._charge_a2a(matrix, "redistribution", full_equivalent=full)
        self._charge_packing(matrix)

    def _vertex_layer_block(self, idx, lo, hi, xs, layer_states):
        p_count = self.num_ranks
        gcn = self.model.gcn_layer(idx)
        ys = []
        for i, t in enumerate(range(lo, hi)):
            lap = self.renamed_laps[t]
            agg = None
            if self.reuse is not None:
                agg = self.reuse.aggregate(idx, t, lap, xs[i])
                call = self.reuse.last_call
                self._vertex_spmm_comm(t, gcn.in_features,
                                       halo_rows=call.halo_rows)
                per_rank = AggregationCache.rank_sparse_flops(
                    call, lap, self.vpart.chunks.ranges)
                for r in range(p_count):
                    self._charge_sparse_rank(r, per_rank[r])
            else:
                self._vertex_spmm_comm(t, gcn.in_features)
            for r in range(p_count):
                rows = self.vpart.chunks.size(r)
                dense = 2.0 * rows * gcn.in_features * gcn.out_features
                device = self.cluster.device(r)
                if self.reuse is None:
                    device.compute_sparse(
                        2.0 * self.row_nnz[t][r] * gcn.in_features)
                device.compute_dense(dense)
            ys.append(self.model.gcn_forward(idx, lap, xs[i],
                                             precomputed=agg))

        # RNN: communication-free; charge each rank for its own vertices,
        # execute the row-independent numerics once (identical results)
        for q in range(p_count):
            rows = self.vpart.chunks.size(q)
            if rows:
                self.cluster.device(q).compute_dense(
                    self.model.rnn_flops_per_step(rows) * len(ys))
        zs, new_state = self.model.rnn_block(idx, ys, layer_states)
        return zs, new_state

    def _vertex_evolve_block(self, lo, hi, xs, wstates):
        n = self.dtdg.num_vertices
        count = hi - lo
        for idx in range(self.model.num_layers):
            gcn = self.model.gcn_layer(idx)
            weights, wstates[idx] = self.model.evolve_weights(
                idx, count, wstates[idx])
            for device in self.cluster.devices:
                device.compute_dense(
                    self.model.rnn_flops_per_step(n) * count /
                    max(self.model.num_layers, 1))
            new_xs = []
            for i, t in enumerate(range(lo, hi)):
                lap = self.renamed_laps[t]
                agg = None
                if self.reuse is not None:
                    agg = self.reuse.aggregate(idx, t, lap, xs[i])
                    call = self.reuse.last_call
                    self._vertex_spmm_comm(t, gcn.in_features,
                                           halo_rows=call.halo_rows)
                    per_rank = AggregationCache.rank_sparse_flops(
                        call, lap, self.vpart.chunks.ranges)
                    for r in range(self.num_ranks):
                        self._charge_sparse_rank(r, per_rank[r])
                else:
                    self._vertex_spmm_comm(t, gcn.in_features)
                for r in range(self.num_ranks):
                    rows = self.vpart.chunks.size(r)
                    device = self.cluster.device(r)
                    if self.reuse is None:
                        device.compute_sparse(
                            2.0 * self.row_nnz[t][r] * gcn.in_features)
                    device.compute_dense(
                        2.0 * rows * gcn.in_features * gcn.out_features)
                new_xs.append(gcn.forward_with_weight(
                    lap, xs[i], weights[i], precomputed=agg))
            xs = new_xs
        return xs, wstates

    # ------------------------------------------------------------------
    # hybrid engine (§6.5)
    # ------------------------------------------------------------------
    def _hybrid_epoch_forward(self) -> tuple[Tensor, Tensor]:
        cfg = self.config
        plan = self.hplan
        n = self.dtdg.num_vertices
        g_size = cfg.group_size
        owner_map = plan.timestep_assignment.owner_map()

        if self.model.kind == "evolve":
            carry = self.model.init_carry(n)
        else:
            # single group: member i carries RNN state for its row chunk
            carry = [[self.model.rnn_init(idx, plan.row_chunks.size(i))
                      for i in range(g_size)]
                     for idx in range(self.model.num_layers)]

        # transfer: each member streams its row share of owned snapshots
        act_per_step = self.model.activation_bytes_per_step(n)
        for t in range(self.train_t):
            group = int(owner_map[t])
            snap = self.dtdg.snapshots[t]
            total_nnz = max(self.laplacians[t].nnz, 1)
            for i, rank in enumerate(plan.groups[group]):
                share = self.hybrid_row_nnz[t][i] / total_nnz
                nbytes = int(snap.nbytes * share +
                             self.frames[t].size *
                             WIRE_FLOAT_BYTES / g_size)
                # row share of the snapshot + this member's activation
                # slice stay resident for the backward pass
                self._account_block_memory(
                    rank, nbytes, 2 * act_per_step // g_size)
                engine = self.cluster.transfer(rank)
                engine.h2d(self.cluster.device(rank), nbytes)
                engine.stats.snapshot_bytes_naive_equivalent += nbytes

        xs = list(self.frames[:self.train_t])
        for idx in range(self.model.num_layers):
            gcn = self.model.gcn_layer(idx)
            if self.model.kind == "evolve":
                weights, carry[idx] = self.model.evolve_weights(
                    idx, self.train_t, carry[idx])
            ys = []
            for t in range(self.train_t):
                group = int(owner_map[t])
                members = plan.groups[group]
                feat = gcn.in_features
                lap = self.laplacians[t]
                agg = None
                call = None
                if self.reuse is not None:
                    agg = self.reuse.aggregate(idx, t, lap, xs[t])
                    call = self.reuse.last_call
                # intra-group all-gather of X_t row blocks; delta-aware
                # members mirror each other's rows across timesteps and
                # gather only the rows that changed since t-1
                halo = call.halo_rows if call is not None else None
                full = np.zeros((self.num_ranks, self.num_ranks))
                matrix = np.zeros((self.num_ranks, self.num_ranks))
                for i, src in enumerate(members):
                    rows = plan.row_chunks.size(i)
                    c_lo, c_hi = plan.row_chunks.ranges[i]
                    if halo is None:
                        changed = rows
                    else:
                        changed = int(np.searchsorted(halo, c_hi)
                                      - np.searchsorted(halo, c_lo))
                    for dst in members:
                        if dst != src:
                            full[src, dst] = rows * feat * WIRE_FLOAT_BYTES
                            matrix[src, dst] = changed * feat * \
                                WIRE_FLOAT_BYTES
                if halo is None:
                    self._charge_a2a(full, "allgather")
                else:
                    self._charge_a2a(matrix, "allgather",
                                     full_equivalent=full)
                if call is not None:
                    per_member = AggregationCache.rank_sparse_flops(
                        call, lap, plan.row_chunks.ranges)
                for i, rank in enumerate(members):
                    device = self.cluster.device(rank)
                    if call is None:
                        device.compute_sparse(
                            2.0 * self.hybrid_row_nnz[t][i] * feat)
                    else:
                        self._charge_sparse_rank(rank, per_member[i])
                    device.compute_dense(
                        2.0 * plan.row_chunks.size(i) * feat *
                        gcn.out_features)
                if self.model.kind == "evolve":
                    ys.append(gcn.forward_with_weight(
                        lap, xs[t], weights[t], precomputed=agg))
                else:
                    ys.append(self.model.gcn_forward(
                        idx, lap, xs[t], precomputed=agg))
            if self.model.kind == "evolve":
                xs = ys
                continue
            # RNN: single group ⇒ member i already holds rows R_i across
            # the whole timeline — communication-free
            outs_per_member = []
            for i in range(g_size):
                sl = plan.row_chunks.slice_of(i)
                rows = plan.row_chunks.size(i)
                seq = [y[sl] for y in ys]
                for rank in [grp[i] for grp in plan.groups]:
                    self.cluster.device(rank).compute_dense(
                        self.model.rnn_flops_per_step(rows) * len(seq) /
                        plan.num_groups)
                outs, carry[idx][i] = self.model.rnn_block(
                    idx, seq, carry[idx][i])
                outs_per_member.append(outs)
            xs = [ops.concat([outs_per_member[i][t] for i in range(g_size)],
                             axis=0) if g_size > 1 else outs_per_member[0][t]
                  for t in range(self.train_t)]

        total_loss = self.task.loss_block(xs, 0)
        if total_loss is None:
            raise ConfigError("epoch produced no loss terms")
        head_flops = self.task.head_flops_per_step() / self.num_ranks
        for device in self.cluster.devices:
            device.compute_dense(head_flops * self.train_t)
        return total_loss, xs[-1]

    # ------------------------------------------------------------------
    # epoch driver
    # ------------------------------------------------------------------
    def train_epoch(self) -> EpochResult:
        cfg = self.config
        self.cluster.reset()
        self._replay_comm.clear()
        self._block_transfer_log.clear()
        self.optimizer.zero_grad()
        self._reuse_sparse_s = [0.0] * self.num_ranks
        if self.reuse is not None:
            self.reuse.begin_epoch()
            # the cache's resident products are sharded by row
            # ownership in a real delta-aware execution: hold each
            # rank's share on its ledger for the epoch (retired by the
            # end-of-epoch free_all with the carries and row shares)
            share = max(self.reuse.resident_nbytes // self.num_ranks, 1)
            for device in self.cluster.devices:
                device.alloc(share, "reuse-cache")

        t0 = time.perf_counter()
        try:
            with self.telemetry.trace("train.forward",
                                      partitioning=cfg.partitioning,
                                      ranks=self.num_ranks):
                if cfg.partitioning == "vertex":
                    loss, last_embed = self._vertex_epoch_forward()
                elif cfg.partitioning == "hybrid":
                    loss, last_embed = self._hybrid_epoch_forward()
                else:
                    loss, last_embed = self._snapshot_epoch_forward()
            forward_wall = time.perf_counter() - t0
            with self.telemetry.trace("train.backward"):
                loss.backward()
        finally:
            if self.reuse is not None:
                self.reuse.release()
        rerun = cfg.num_blocks > 1 and cfg.partitioning != "hybrid"
        # reuse-charged sparse seconds already include their own exact
        # backward estimate — exclude them from the factor sweep
        self._charge_backward_mixed(list(self._reuse_sparse_s), rerun)

        # end-of-epoch gradient aggregation (replicated weights, §5.5)
        self.cluster.comm.all_reduce_sum(
            [np.zeros(max(self._grad_nbytes // 8, 1))
             for _ in range(self.num_ranks)], label="gradient")
        self.optimizer.step()

        transfer_bytes = sum(t.stats.bytes_moved for t in
                             self.cluster.transfers)
        naive_equiv = sum(t.stats.snapshot_bytes_naive_equivalent
                          for t in self.cluster.transfers)
        breakdown = self.cluster.breakdown
        for device in self.cluster.devices:  # retire carries & row shares
            device.free_all()
        agg_flops = agg_full = 0.0
        if self.reuse is not None:
            agg_flops = self.reuse.stats.forward_flops
            agg_full = self.reuse.stats.full_equivalent_flops
        result = EpochResult(
            loss=loss.item(),
            breakdown=breakdown,
            test_accuracy=self._test_accuracy(last_embed),
            comm_volume_units=(
                self.cluster.comm.volume_units("redistribution") +
                self.cluster.comm.volume_units("allgather")),
            gradient_volume_units=self.cluster.comm.volume_units("gradient"),
            transfer_bytes=transfer_bytes,
            transfer_naive_equivalent_bytes=naive_equiv,
            peak_memory_bytes=self.cluster.peak_memory(),
            forward_wall_s=forward_wall,
            comm_volume_full_units=(
                self.cluster.comm.full_equivalent_units("redistribution") +
                self.cluster.comm.full_equivalent_units("allgather")),
            agg_flops=agg_flops,
            agg_flops_full_equivalent=agg_full,
        )
        collect_epoch_metrics(self.telemetry, result,
                              self.reuse.stats if self.reuse is not None
                              else None)
        self.cluster.comm.collect_metrics(self.telemetry.registry)
        return result

    def _charge_backward_mixed(self, fwd_compute: list[float],
                               rerun_transfers: bool) -> None:
        cfg = self.config
        for r, clock in enumerate(self.cluster.clocks):
            fwd = clock.breakdown.compute - fwd_compute[r]
            clock.advance("compute", cfg.backward_compute_factor * fwd)
        for matrix, label, full in list(self._replay_comm):
            matrix = np.asarray(matrix).T
            full = np.asarray(full).T if full is not None else None
            self.cluster.comm.all_to_all_bytes(matrix, label=label,
                                               full_equivalent=full)
            if cfg.partitioning == "vertex":
                self._charge_packing(matrix)
        if rerun_transfers:
            for entry in self._block_transfer_log:
                if entry[0] == "raw":
                    _, r, nbytes = entry
                    engine = self.cluster.transfer(r)
                    engine.h2d(self.cluster.device(r), nbytes)
                    engine.stats.snapshot_bytes_naive_equivalent += nbytes
                else:
                    rank, snaps, frame_bytes, use_gd = entry
                    self._charge_block_transfer(rank, snaps, frame_bytes,
                                                use_gd)
        self._replay_comm.clear()
        self._block_transfer_log.clear()

    def _test_accuracy(self, last_embed: Tensor | None) -> float:
        if last_embed is None:
            return float("nan")
        if isinstance(self.task, LinkPredictionTask):
            return self.task.test_accuracy(last_embed)
        return float("nan")

    def fit(self, epochs: int) -> list[EpochResult]:
        return [self.train_epoch() for _ in range(epochs)]
