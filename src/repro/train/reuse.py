"""Cross-timestep aggregation reuse for training (ReInc / InstantGNN).

The paper's thesis is that dynamic-graph work should be charged to what
*changed*; PR 4 delivered that for preprocessing and serving, but the
training loop still ran a full ``Ã_t · X`` aggregation at every timestep
of every epoch.  :class:`AggregationCache` closes the gap: it holds the
previous timestep's per-layer ``S @ X`` products, consumes each
timestep's :class:`~repro.graph.diff.SnapshotDiff` to derive the
**delta-touched row set**, and patches only those rows through the
row-sliced SpMM kernel — identical numerics, O(delta)-ish forward work.

Exactness is *structural*, not statistical.  For the transition
``t-1 → t`` at layer ``ℓ``, the rows of ``Ã_t X^ℓ_t`` that can differ
from ``Ã_{t-1} X^ℓ_{t-1}`` are bounded by

    touched = seeds ∪ dirty_in ∪ rows_reading(seeds ∪ dirty_in)

where ``seeds`` are the diff's endpoint vertices (added, removed and
value-changed edges — the same seed set the serving frontier expands)
and ``dirty_in`` are the input rows that changed across the timestep.
``rows_reading`` — the rows whose ``Ã_t`` row reads a changed column —
is one O(E) boolean scan of the snapshot's directed edge array (the
serving tier's frontier hop specialized to the operator, taken only
after the candidate set clears the crossover pre-check); applied once
per layer it compounds into exactly the serving tier's k-hop
expansion.  ``dirty_in`` propagates through the model's temporal
components per its :meth:`~repro.models.base.DynamicGNN.reuse_profile`:

* first-layer inputs are the (parameter-free) degree features — they
  change only at delta endpoints, for every model;
* TM-GCN's M-transform is a trailing-window average under time-shared
  weights, so a deeper row is dirty only if one of the last ``w``
  aggregations touched it — deeper layers stay patchable;
* CD-GCN's per-vertex LSTM and EvolveGCN's per-timestep weights dirty
  every row (``"dense"``), and the cache falls back to a full SpMM —
  the crossover guarantee also taken whenever the touched fraction
  exceeds ``crossover``.

Three kernel flavors back the scheme (:mod:`repro.tensor.sparse`):

``spmm_memo``
    the operand is bit-equal to a cached one (same timestep, previous
    pass or epoch — e.g. the checkpointed backward's forward re-run, or
    the parameter-free first layer across epochs): zero forward work,
    unconditional full-Jacobian backward;
``spmm_patch``
    delta-touched rows recomputed row-sliced, untouched rows copied
    from the previous timestep's product, gradients routed through the
    sliced recompute (and, for the untouched rows, through the previous
    product — exact because the structural bound certifies those rows
    are the same function of the parameters);
``spmm``
    the full kernel, whenever neither reuse is provably exact.

The cache also records, per call, the sparse FLOPs a delta-aware
execution actually pays plus the halo rows a distributed exchange must
still ship — the trainers charge the simulated cost model from these
instead of the full-graph formulas.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.graph.inc_laplacian import diff_touched_vertices
from repro.tensor import Tensor
from repro.tensor.sparse import SparseMatrix, spmm, spmm_memo, spmm_patch

__all__ = ["AggregationCache", "ReuseStats", "AggregateCall"]

_EMPTY = np.empty(0, dtype=np.int64)

# sentinel: dirty/touched sets are None when unknown (treat as "every
# row may have changed" — forbids patching); an *empty* array means a
# provably unchanged transition and allows a zero-row patch
_ALL = None


@dataclass
class ReuseStats:
    """Monotonic counters over a cache's lifetime (reset per epoch)."""

    calls: int = 0
    memo_hits: int = 0
    patches: int = 0
    full_spmm: int = 0
    crossover_fallbacks: int = 0
    rows_patched: int = 0
    rows_reused: int = 0
    forward_flops: float = 0.0
    backward_flops: float = 0.0
    full_equivalent_flops: float = 0.0

    @property
    def forward_flops_saved(self) -> float:
        return self.full_equivalent_flops - self.forward_flops


@dataclass(frozen=True)
class AggregateCall:
    """What the last :meth:`AggregationCache.aggregate` call did.

    The trainers read this record to charge the simulated cost model:
    ``forward_flops``/``backward_flops`` are the sparse FLOPs a
    delta-aware execution pays (backward estimated from whether the
    dense operand requires grad), ``rows`` the recomputed output rows
    (``None`` = all), and ``halo_rows`` the input rows whose values
    changed since the previous timestep — the only rows a distributed
    exchange still has to ship to mirrors (``None`` = unknown, ship
    everything).
    """

    mode: str                      # "memo" | "patch" | "full"
    rows: np.ndarray | None
    sub_nnz: int
    forward_flops: float
    backward_flops: float
    full_flops: float
    halo_rows: np.ndarray | None


@dataclass
class _Entry:
    """Cached state of one (layer, timestep) aggregation."""

    lap: SparseMatrix
    x: np.ndarray                  # operand the product was computed from
    product: np.ndarray            # = (lap @ x), bit-exact
    out_dirty: np.ndarray | None   # rows differing vs timestep t-1


@dataclass
class _LayerState:
    entries: dict = field(default_factory=dict)
    last_t: int | None = None      # chain head within the current pass
    last_tensor: Tensor | None = None


class AggregationCache:
    """Holds per-layer ``S @ X`` products and patches them across
    adjacent timesteps.

    Parameters
    ----------
    laplacians:
        Frozen per-timestep operators (``compute_laplacians`` output);
        callers must pass these exact objects to :meth:`aggregate`.
    diffs:
        ``diffs[t - 1]`` is the GD delta ``A_{t-1} → A_t`` (the
        ``compute_laplacians_with_diffs`` companion list).
    snapshots:
        The snapshots the diffs were encoded over (needed to resolve
        value-changed edge endpoints from the encoder hints).
    temporal:
        The model's :meth:`~repro.models.base.DynamicGNN.reuse_profile`.
    crossover:
        Touched-row fraction above which patching falls back to the
        full SpMM (row-gather overhead exceeds the saving).
    """

    def __init__(self, laplacians, diffs, snapshots, temporal, *,
                 crossover: float = 0.35) -> None:
        if len(laplacians) != len(snapshots):
            raise ConfigError("laplacian/snapshot count mismatch")
        if diffs and len(diffs) != len(laplacians) - 1:
            raise ConfigError(
                f"{len(diffs)} diffs cannot chain {len(laplacians)} "
                f"operators")
        if not 0.0 < crossover <= 1.0:
            raise ConfigError("crossover must be in (0, 1]")
        self.laps = list(laplacians)
        self.snaps = list(snapshots)
        self.crossover = crossover
        self.temporal = list(temporal)
        self.stats = ReuseStats()
        self.last_call: AggregateCall | None = None
        self._layers: dict[int, _LayerState] = {}
        # delta seed vertices per transition: seeds[t] are the endpoints
        # of every edge changed by A_{t-1} -> A_t (None = unknown)
        self._seeds: list[np.ndarray | None] = [None]
        for diff, snap in zip(diffs or [], snapshots[1:]):
            self._seeds.append(diff_touched_vertices(diff, snap))

    # -- bookkeeping -------------------------------------------------------------
    def begin_epoch(self) -> None:
        """Reset per-epoch stats and drop chain/tape references.

        Cached products survive — the parameter-free first layer (and
        any other operand that proves bit-equal) is reused across
        epochs through the memo path."""
        self.stats = ReuseStats()
        for state in self._layers.values():
            state.last_t = None
            state.last_tensor = None

    def release(self) -> None:
        """Drop the chain tensors (and with them the autograd tape the
        last pass built) without touching the memo entries."""
        for state in self._layers.values():
            state.last_t = None
            state.last_tensor = None

    @property
    def resident_nbytes(self) -> int:
        """Bytes of cached operands + products currently held — the
        memory the reuse trade spends; the trainers charge it against
        the simulated device ledgers so the cost model shows that
        patching/memoization buys compute with memory, not for free."""
        return sum(entry.x.nbytes + entry.product.nbytes
                   for state in self._layers.values()
                   for entry in state.entries.values())

    # -- dirty derivation ---------------------------------------------------------
    @staticmethod
    def _row_diff(prev: np.ndarray, curr: np.ndarray) -> np.ndarray:
        """Rows where two aligned operands differ (vectorized compare)."""
        return np.flatnonzero((prev != curr).any(axis=1))

    @staticmethod
    def _operands_equal(prev: np.ndarray, curr: np.ndarray) -> bool:
        """Bit-equality of two operands, cheap-failing: identity first
        (the trainers hand the same frame arrays across passes and
        epochs), then a strided row sample, then the full compare."""
        if prev is curr:
            return True
        if prev.shape != curr.shape:
            return False
        n = prev.shape[0]
        if n > 256:
            probe = slice(0, n, max(1, n // 64))
            if not np.array_equal(prev[probe], curr[probe]):
                return False
        return np.array_equal(prev, curr)

    def _input_dirty(self, layer: int, t: int,
                     x_now: np.ndarray | None) -> np.ndarray | None:
        """Rows where layer ``layer``'s input at ``t`` differs from its
        input at ``t-1`` (None = unknown, i.e. every row may differ).

        The first layer's set is established *numerically* against the
        cached ``t-1`` operand (exact for any feature source, degree
        features or otherwise); deeper layers derive it structurally
        from the layer below's touched sets through the model's
        temporal reuse profile — numeric equality of two recurrent
        states would not certify equal *functions* of the parameters,
        the structural bound does.
        """
        state = self._layers.get(layer)
        if layer == 0:
            prev = state.entries.get(t - 1) if state else None
            if prev is None or x_now is None or \
                    prev.x.shape != x_now.shape:
                return _ALL
            if prev.x is x_now:  # static feature table across timesteps
                return _EMPTY
            return self._row_diff(prev.x, x_now)
        kind = self.temporal[layer - 1]
        if kind == "dense":
            return _ALL
        below = self._layers.get(layer - 1)
        if below is None:
            return _ALL
        if kind == "local":
            window = 1
        elif isinstance(kind, tuple) and kind[0] == "window":
            window = int(kind[1])
        else:
            raise ConfigError(f"unknown reuse profile entry {kind!r}")
        parts = []
        for k in range(max(1, t - window + 1), t + 1):
            entry = below.entries.get(k)
            if entry is None or entry.out_dirty is None:
                return _ALL
            parts.append(entry.out_dirty)
        return np.unique(np.concatenate(parts)) if parts else _EMPTY

    def _touched(self, layer: int, t: int, lap: SparseMatrix,
                 x_now: np.ndarray | None) -> tuple[np.ndarray | None,
                                                    np.ndarray | None]:
        """(output rows to recompute, input rows changed) for the
        ``t-1 → t`` transition.  ``(None, dirty_in)`` marks a known-but-
        too-large delta (the crossover pre-check: expansion can only
        grow the candidate set, so there is no point walking the
        frontier); ``(None, None)`` an unknown one."""
        seeds = self._seeds[t] if t < len(self._seeds) else None
        if seeds is None:
            return _ALL, _ALL
        dirty_in = self._input_dirty(layer, t, x_now)
        if dirty_in is None:
            return _ALL, _ALL
        cand = np.union1d(seeds, dirty_in)
        if len(cand) == 0:
            return _EMPTY, dirty_in
        if len(cand) > self.crossover * lap.shape[0]:
            return _ALL, dirty_in
        # one frontier hop — the serving tier's expansion specialized to
        # the directed operator: rows of Ã_t reading a changed column
        # are the in-edge sources of `cand` (plus the diagonal, i.e.
        # `cand` itself).  One O(E) boolean scan of the snapshot's edge
        # array, no transpose materialization.
        edges = self.snaps[t].edges
        if len(edges):
            mark = np.zeros(lap.shape[0], dtype=bool)
            mark[cand] = True
            readers = edges[mark[edges[:, 1]], 0]
            touched = np.union1d(cand, readers)
        else:
            touched = cand
        return touched, dirty_in

    # -- the kernel --------------------------------------------------------------
    def aggregate(self, layer: int, t: int, lap: SparseMatrix,
                  x) -> Tensor:
        """Layer-``layer`` aggregation ``lap @ x`` at global timestep
        ``t``, reusing/patching cached products whenever provably exact.
        """
        x = x if isinstance(x, Tensor) else Tensor(x)
        feat = x.shape[1]
        full_flops = 2.0 * lap.nnz * feat
        state = self._layers.setdefault(layer, _LayerState())
        known = t < len(self.laps) and lap is self.laps[t]

        # ---- memo: same (layer, t) operand seen before -------------------
        entry = state.entries.get(t) if known else None
        if entry is not None and entry.lap is lap and \
                self._operands_equal(entry.x, x.data):
            out = spmm_memo(lap, x, entry.product)
            bwd = full_flops if x.requires_grad else 0.0
            halo = self._memo_halo(state, layer, t, lap)
            self._record("memo", None, 0, 0.0, bwd, full_flops, halo)
            self.stats.memo_hits += 1
            self.stats.rows_reused += lap.shape[0]
            state.last_t, state.last_tensor = t, out
            return out

        # ---- patch: chain from the previous timestep's product -----------
        # a grad-requiring operand needs a grad-carrying parent for the
        # untouched rows' gradient to flow; without one, patching would
        # silently drop it — fall through to the full kernel instead
        if known and state.last_t == t - 1 and \
                state.last_tensor is not None and \
                state.last_tensor.data.shape == (lap.shape[0], feat) and \
                (not x.requires_grad or state.last_tensor.requires_grad):
            touched, dirty_in = self._touched(layer, t, lap, x.data)
            if touched is not None and \
                    len(touched) <= self.crossover * lap.shape[0]:
                parent = state.last_tensor
                out = spmm_patch(lap, x, touched, parent.data,
                                 parent=parent if parent.requires_grad
                                 else None)
                sub_nnz = int(lap.csr.indptr[touched + 1].sum()
                              - lap.csr.indptr[touched].sum()) \
                    if len(touched) else 0
                fwd = 2.0 * sub_nnz * feat
                bwd = fwd if x.requires_grad else 0.0
                state.entries[t] = _Entry(lap=lap, x=x.data,
                                          product=out.data,
                                          out_dirty=touched)
                self._record("patch", touched, sub_nnz, fwd, bwd,
                             full_flops, dirty_in)
                self.stats.patches += 1
                self.stats.rows_patched += len(touched)
                self.stats.rows_reused += lap.shape[0] - len(touched)
                state.last_t, state.last_tensor = t, out
                return out
            if dirty_in is not None:
                # known delta, too large to pay off: full SpMM, but the
                # halo exchange still only needs the changed input rows
                self.stats.crossover_fallbacks += 1
                return self._full(state, layer, t, lap, x, full_flops,
                                  out_dirty=_ALL, halo=dirty_in,
                                  known=known)

        # ---- full SpMM ---------------------------------------------------
        return self._full(state, layer, t, lap, x, full_flops,
                          out_dirty=_ALL, halo=_ALL, known=known)

    def _memo_halo(self, state: _LayerState, layer: int, t: int,
                   lap: SparseMatrix) -> np.ndarray | None:
        """Input rows a mirror must still receive on a memo hit: the
        rows that changed vs the previous timestep (derivable only when
        the chain context is live)."""
        if state.last_t != t - 1:
            return _ALL
        entry = state.entries.get(t)
        return self._input_dirty(layer, t,
                                 entry.x if entry is not None else None)

    def _full(self, state: _LayerState, layer: int, t: int,
              lap: SparseMatrix, x: Tensor, full_flops: float, *,
              out_dirty, halo, known: bool) -> Tensor:
        out = spmm(lap, x)
        bwd = full_flops if x.requires_grad else 0.0
        if known:
            state.entries[t] = _Entry(lap=lap, x=x.data, product=out.data,
                                      out_dirty=out_dirty)
            state.last_t, state.last_tensor = t, out
        self._record("full", None, int(lap.nnz), full_flops, bwd,
                     full_flops, halo)
        self.stats.full_spmm += 1
        return out

    def _record(self, mode: str, rows, sub_nnz: int, fwd: float,
                bwd: float, full: float, halo) -> None:
        self.last_call = AggregateCall(
            mode=mode, rows=rows, sub_nnz=sub_nnz, forward_flops=fwd,
            backward_flops=bwd, full_flops=full, halo_rows=halo)
        self.stats.calls += 1
        self.stats.forward_flops += fwd
        self.stats.backward_flops += bwd
        self.stats.full_equivalent_flops += full

    # -- cost-model helpers -------------------------------------------------------
    @staticmethod
    def rank_sparse_flops(call: AggregateCall, lap: SparseMatrix,
                          ranges) -> np.ndarray:
        """Split a call's (forward + estimated backward) sparse FLOPs
        across contiguous row ranges of a partitioned execution —
        proportional to each range's share of the nnz actually
        multiplied, so delta-aware ranks are charged only for the rows
        they recompute."""
        total = call.forward_flops + call.backward_flops
        out = np.zeros(len(ranges))
        if total <= 0.0:
            return out
        indptr = lap.csr.indptr
        if call.rows is None:
            shares = np.array([float(indptr[hi] - indptr[lo])
                               for lo, hi in ranges])
            denom = float(lap.nnz)
        else:
            rows = call.rows
            row_nnz = (indptr[rows + 1] - indptr[rows]).astype(np.float64)
            bounds = np.array([lo for lo, _ in ranges] +
                              [ranges[-1][1]], dtype=np.int64)
            owner = np.clip(np.searchsorted(bounds, rows, side="right") - 1,
                            0, len(ranges) - 1)
            shares = np.bincount(owner, weights=row_nnz,
                                 minlength=len(ranges))
            denom = float(call.sub_nnz)
        if denom > 0:
            out = shares / denom * total
        return out
