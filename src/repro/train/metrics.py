"""Result records shared by the trainers and the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.clock import TimeBreakdown

__all__ = ["EpochResult", "ConvergenceCurve"]


@dataclass
class EpochResult:
    """Everything one training epoch reports.

    Times come from the simulated clocks (critical-path rank), volumes
    from the communicator's event log, memory from the device ledgers —
    the same quantities the paper's Figs. 4/5 and Table 2 plot.
    """

    loss: float
    breakdown: TimeBreakdown
    test_accuracy: float = float("nan")
    comm_volume_units: float = 0.0        # feature-vector units (floats)
    gradient_volume_units: float = 0.0
    transfer_bytes: int = 0
    transfer_naive_equivalent_bytes: int = 0
    peak_memory_bytes: int = 0
    # wall seconds the epoch spent in forward sweeps (numerics, not the
    # simulated clocks) — the training-reuse bench's headline metric
    forward_wall_s: float = 0.0
    # full-halo equivalent of comm_volume_units: what the exchanges
    # would have shipped without delta-aware shrinking (equal to
    # comm_volume_units when reuse is off)
    comm_volume_full_units: float = 0.0
    # sparse FLOPs the aggregation stage actually executed vs what an
    # always-full execution would have (cache-reported; 0 when off)
    agg_flops: float = 0.0
    agg_flops_full_equivalent: float = 0.0

    @property
    def gd_savings_ratio(self) -> float:
        if self.transfer_bytes == 0:
            return 1.0
        return self.transfer_naive_equivalent_bytes / self.transfer_bytes

    @property
    def total_ms(self) -> float:
        return self.breakdown.total * 1e3


@dataclass
class ConvergenceCurve:
    """Per-epoch loss/accuracy series (paper Fig. 6)."""

    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)

    def record(self, result: EpochResult) -> None:
        self.losses.append(result.loss)
        self.accuracies.append(result.test_accuracy)

    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    def final_accuracy(self) -> float:
        return self.accuracies[-1] if self.accuracies else float("nan")

    def max_divergence(self, other: "ConvergenceCurve") -> float:
        """Largest per-epoch |loss difference| against another run."""
        if len(self.losses) != len(other.losses):
            raise ValueError("curves must have equal length")
        return max((abs(a - b) for a, b in zip(self.losses, other.losses)),
                   default=0.0)
