"""Result records shared by the trainers and the benchmark harness."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cluster.clock import TimeBreakdown

__all__ = ["EpochResult", "ConvergenceCurve", "collect_epoch_metrics"]


@dataclass
class EpochResult:
    """Everything one training epoch reports.

    Times come from the simulated clocks (critical-path rank), volumes
    from the communicator's event log, memory from the device ledgers —
    the same quantities the paper's Figs. 4/5 and Table 2 plot.
    """

    loss: float
    breakdown: TimeBreakdown
    test_accuracy: float = float("nan")
    comm_volume_units: float = 0.0        # feature-vector units (floats)
    gradient_volume_units: float = 0.0
    transfer_bytes: int = 0
    transfer_naive_equivalent_bytes: int = 0
    peak_memory_bytes: int = 0
    # wall seconds the epoch spent in forward sweeps (numerics, not the
    # simulated clocks) — the training-reuse bench's headline metric
    forward_wall_s: float = 0.0
    # full-halo equivalent of comm_volume_units: what the exchanges
    # would have shipped without delta-aware shrinking (equal to
    # comm_volume_units when reuse is off)
    comm_volume_full_units: float = 0.0
    # sparse FLOPs the aggregation stage actually executed vs what an
    # always-full execution would have (cache-reported; 0 when off)
    agg_flops: float = 0.0
    agg_flops_full_equivalent: float = 0.0

    @property
    def gd_savings_ratio(self) -> float:
        if self.transfer_bytes == 0:
            return 1.0
        return self.transfer_naive_equivalent_bytes / self.transfer_bytes

    @property
    def total_ms(self) -> float:
        return self.breakdown.total * 1e3


@dataclass
class ConvergenceCurve:
    """Per-epoch loss/accuracy series (paper Fig. 6)."""

    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)

    def record(self, result: EpochResult) -> None:
        self.losses.append(result.loss)
        self.accuracies.append(result.test_accuracy)

    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    def final_accuracy(self) -> float:
        return self.accuracies[-1] if self.accuracies else float("nan")

    def max_divergence(self, other: "ConvergenceCurve") -> float:
        """Largest per-epoch |loss difference| against another run."""
        if len(self.losses) != len(other.losses):
            raise ValueError("curves must have equal length")
        return max((abs(a - b) for a, b in zip(self.losses, other.losses)),
                   default=0.0)


def collect_epoch_metrics(telemetry, result: EpochResult,
                          reuse_stats=None) -> None:
    """Fold one epoch's :class:`EpochResult` into a telemetry registry.

    Epoch results (and the aggregation cache's ``ReuseStats``, which
    resets every epoch) are per-epoch deltas, so everything accumulates
    with ``inc`` — unlike the serving tier's monotonic plain-int
    counters, which sync with ``set_to`` at export time.
    """
    reg = telemetry.registry
    reg.counter("train_epochs_total", "Epochs completed").inc()
    reg.counter("train_forward_seconds_total",
                "Wall seconds in forward sweeps").inc(result.forward_wall_s)
    reg.counter("train_comm_volume_units_total",
                "Feature-vector units exchanged").inc(
        result.comm_volume_units)
    reg.counter("train_comm_volume_full_units_total",
                "Full-halo equivalent of the exchanged units").inc(
        result.comm_volume_full_units)
    reg.counter("train_transfer_bytes_total",
                "Delta-encoded snapshot bytes moved").inc(
        result.transfer_bytes)
    reg.gauge("train_loss", "Most recent epoch loss").set(result.loss)
    if not math.isnan(result.test_accuracy):
        reg.gauge("train_test_accuracy",
                  "Most recent epoch test accuracy").set(
            result.test_accuracy)
    reg.gauge("train_peak_memory_bytes",
              "Peak device-ledger bytes last epoch").set(
        result.peak_memory_bytes)
    if reuse_stats is None:
        return
    # per-timestep aggregation decisions, labeled by how each
    # aggregation was satisfied (memo reuse / sparse patch / full SpMM)
    for mode, value in (("memo", reuse_stats.memo_hits),
                        ("patch", reuse_stats.patches),
                        ("full", reuse_stats.full_spmm)):
        reg.counter("train_agg_decisions_total",
                    "Aggregation-cache decisions by mode",
                    mode=mode).inc(value)
    reg.counter("train_agg_flops_total",
                "Sparse FLOPs the aggregation stage executed").inc(
        reuse_stats.forward_flops + reuse_stats.backward_flops)
    reg.counter("train_agg_flops_full_equivalent_total",
                "FLOPs an always-full execution would have paid").inc(
        reuse_stats.full_equivalent_flops)
