"""Single-device training (paper §3).

:class:`SingleDeviceTrainer` runs real numerics through either the
baseline path (whole-timeline autograd graph) or the checkpointed path
(:class:`~repro.train.checkpoint.CheckpointRunner`), and — when handed a
simulated :class:`~repro.cluster.device.Device` — reproduces the paper's
single-GPU resource behaviour:

* **memory**: the baseline materializes inputs + activations for the
  whole timeline and OOMs on large configs; the checkpointed path holds
  one block plus the ``π`` carries (§3.1);
* **transfer**: snapshots stream CPU→GPU per block, twice per epoch when
  checkpointing (forward + backward re-run), via the naive or the
  graph-difference encoding (§3.2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.cluster.clock import TimeBreakdown
from repro.cluster.device import Device
from repro.cluster.transfer import TransferEngine
from repro.errors import ConfigError
from repro.graph.dtdg import DTDG
from repro.models.base import DynamicGNN
from repro.obs import Telemetry
from repro.partition.snapshot_part import block_ranges
from repro.tensor import Adam, Tensor
from repro.train.checkpoint import CheckpointRunner, carry_nbytes
from repro.train.metrics import EpochResult, collect_epoch_metrics
from repro.train.preprocess import (compute_laplacians_with_diffs,
                                    degree_features)
from repro.train.reuse import AggregationCache
from repro.train.tasks import LinkPredictionTask

__all__ = ["TrainerConfig", "SingleDeviceTrainer"]


@dataclass(frozen=True)
class TrainerConfig:
    """Single-device training knobs.

    ``num_blocks = 1`` is the non-checkpointed baseline; larger values
    enable the §3.1 schedule.  ``use_graph_difference`` switches the
    snapshot transfer between Base and GD (§3.2).
    ``reuse_aggregation`` enables the cross-timestep aggregation cache
    (:mod:`repro.train.reuse`): per-layer ``Ã·X`` products are patched
    from the previous timestep's instead of recomputed in full —
    identical numerics, delta-proportional forward work — and the
    simulated device is charged for the rows actually recomputed.
    """

    num_blocks: int = 1
    use_graph_difference: bool = False
    learning_rate: float = 0.01
    backward_compute_factor: float = 2.0
    reuse_aggregation: bool = False
    reuse_crossover: float = 0.35

    def __post_init__(self) -> None:
        if self.num_blocks < 1:
            raise ConfigError("num_blocks must be >= 1")
        if self.learning_rate <= 0:
            raise ConfigError("learning_rate must be positive")
        if not 0.0 < self.reuse_crossover <= 1.0:
            raise ConfigError("reuse_crossover must be in (0, 1]")


class SingleDeviceTrainer:
    """Train a dynamic GNN on one (simulated) GPU."""

    def __init__(self, model: DynamicGNN, dtdg: DTDG, task,
                 config: TrainerConfig,
                 device: Device | None = None, *,
                 telemetry: Telemetry | None = None,
                 kernel_backend=None) -> None:
        self.model = model
        self.task = task
        self.config = config
        self.device = device
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.transfer = TransferEngine()
        if dtdg.features is None:
            dtdg.set_features(degree_features(dtdg))
        self.dtdg = dtdg
        # every per-timestep operator is pinned to one kernel backend;
        # the reuse cache's spmm/memo/patch calls pick it up implicitly
        self.laplacians, diffs = compute_laplacians_with_diffs(
            dtdg, backend=kernel_backend)
        self.frames = [Tensor(f) for f in dtdg.features]
        # train on the first T timesteps; the held-out last snapshot is
        # only used by the task's test set (paper §6.4)
        self.train_t = task.num_train_timesteps
        params = model.parameters() + task.head.parameters()
        self.optimizer = Adam(params, lr=config.learning_rate)
        self._runner = CheckpointRunner(model, config.num_blocks)
        self.reuse: AggregationCache | None = None
        if config.reuse_aggregation:
            self.reuse = AggregationCache(
                self.laplacians, diffs, dtdg.snapshots,
                model.reuse_profile(), crossover=config.reuse_crossover)

    @classmethod
    def from_store(cls, model: DynamicGNN, store, task_factory,
                   config: TrainerConfig, device: Device | None = None, *,
                   start: int = 0, stop: int | None = None
                   ) -> "SingleDeviceTrainer":
        """Train over a :class:`~repro.store.store.GraphStore` window.

        ``store.window(start, stop)`` hands the trainer a lazy
        :class:`~repro.store.store.StoreView`: snapshots decode from the
        delta log (nearest compacted base + tail replay) as the training
        loop touches them instead of the whole timeline being resident
        up front.  ``task_factory(dtdg)`` builds the training task over
        the view (tasks need the timeline to draw their samples)."""
        view = store.window(start, stop)
        return cls(model, view, task_factory(view), config, device)

    # -- memory & transfer accounting -------------------------------------------------
    def _input_bytes(self, lo: int, hi: int) -> int:
        snaps = sum(self.laplacians[t].nbytes for t in range(lo, hi))
        frames = sum(self.frames[t].nbytes for t in range(lo, hi))
        return snaps + frames

    def _activation_bytes(self, lo: int, hi: int) -> int:
        n = self.dtdg.num_vertices
        return (hi - lo) * self.model.activation_bytes_per_step(n)

    def _account_epoch_resources(self) -> None:
        """Charge transfer time and exercise the device memory ledger the
        way the §3 execution would."""
        if self.device is None:
            return
        device = self.device
        nb = min(self.config.num_blocks, self.train_t)
        ranges = block_ranges(self.train_t, nb)
        checkpointed = nb > 1
        carry_handles = []
        if not checkpointed:
            # baseline: everything resident for the whole epoch
            with device.hold(self._input_bytes(0, self.train_t), "inputs"):
                with device.hold(self._activation_bytes(0, self.train_t),
                                 "activations"):
                    self._charge_block_transfer(0, self.train_t, passes=1)
                    self._charge_block_compute(0, self.train_t)
            return
        carry = self.model.init_carry(self.dtdg.num_vertices)
        for lo, hi in ranges:
            with device.hold(self._input_bytes(lo, hi), "block-inputs"):
                with device.hold(self._activation_bytes(lo, hi),
                                 "block-activations"):
                    # forward + backward re-run: two transfers, ~3x the
                    # forward compute (fwd + rerun + gradient sweep)
                    self._charge_block_transfer(lo, hi, passes=2)
                    self._charge_block_compute(lo, hi)
            # π_b stays resident until its block's backward completes
            _, carry = self._peek_carry(lo, hi, carry)
            carry_handles.append(
                device.alloc(max(carry_nbytes(carry), 1), "carry"))
        for handle in carry_handles:
            device.free(handle)

    def _peek_carry(self, lo: int, hi: int, carry):
        from repro.tensor import no_grad
        from repro.models.base import detach_carry
        with no_grad():
            outs, new_carry = self.model.forward_block(
                self.laplacians[lo:hi], self.frames[lo:hi], carry)
        return outs, detach_carry(new_carry)

    def _charge_block_transfer(self, lo: int, hi: int, passes: int) -> None:
        snaps = [self.dtdg.snapshots[t] for t in range(lo, hi)]
        for _ in range(passes):
            if self.config.use_graph_difference:
                self.transfer.send_block_gd(self.device, snaps)
            else:
                self.transfer.send_block_naive(self.device, snaps)
            for t in range(lo, hi):
                self.transfer.send_dense(self.device, self.frames[t].nbytes)

    def _charge_block_compute(self, lo: int, hi: int) -> None:
        n = self.dtdg.num_vertices
        factor = 1.0 + self.config.backward_compute_factor
        for t in range(lo, hi):
            nnz = self.laplacians[t].nnz
            sparse, dense = self.model.gcn_flops_per_step(nnz, n)
            rnn = self.model.rnn_flops_per_step(n)
            head = self.task.head_flops_per_step()
            if self.reuse is None:
                # always-full baseline: every aggregation at full nnz
                self.device.compute_sparse(sparse * factor)
            self.device.compute_dense((dense + rnn + head) * factor)

    def _charge_reuse_sparse(self) -> None:
        """Charge the aggregation work a delta-aware execution actually
        pays: the cache's measured forward FLOPs (patched rows only,
        re-runs memoized) plus its estimated backward FLOPs (the full
        Jacobian where the operand carries gradients, the sliced one on
        patched chains, nothing over leaf features)."""
        if self.device is None or self.reuse is None:
            return
        stats = self.reuse.stats
        self.device.compute_sparse(stats.forward_flops +
                                   stats.backward_flops)

    # -- training --------------------------------------------------------------------------
    def train_epoch(self) -> EpochResult:
        laps = self.laplacians[:self.train_t]
        frames = self.frames[:self.train_t]
        self.optimizer.zero_grad()
        # the reuse cache's products stay resident across the whole
        # epoch (and across epochs): hold them on the ledger so peak
        # memory reflects the compute-for-memory trade.  Epoch 0 sees
        # last epoch's footprint (zero on the first), steady-state
        # epochs the full one.
        cache_hold = None
        if self.device is not None and self.reuse is not None:
            cache_hold = self.device.alloc(
                max(self.reuse.resident_nbytes, 1), "reuse-cache")
        self._account_epoch_resources()
        if self.reuse is not None:
            self.reuse.begin_epoch()
        self.model.set_aggregation_hook(
            self.reuse.aggregate if self.reuse is not None else None)
        try:
            if self.config.num_blocks == 1:
                t0 = time.perf_counter()
                with self.telemetry.trace("train.forward",
                                          timesteps=self.train_t):
                    outs = self.model(laps, frames)
                forward_wall = time.perf_counter() - t0
                loss = self.task.loss_full(outs)
                with self.telemetry.trace("train.backward"):
                    loss.backward()
                loss_value = loss.item()
                final_embed = outs[-1]
            else:
                # the checkpointed runner interleaves forward re-runs
                # and per-block backwards; one span covers the pair
                with self.telemetry.trace("train.forward",
                                          blocks=self.config.num_blocks):
                    result = self._runner.run_epoch(laps, frames,
                                                    self.task.loss_block)
                loss_value = result.loss
                t0 = time.perf_counter()
                final_embed = self._runner.forward_streaming(
                    laps, frames)[-1]
                forward_wall = result.forward_seconds + \
                    (time.perf_counter() - t0)
        finally:
            self.model.set_aggregation_hook(None)
            if self.reuse is not None:
                self.reuse.release()
            if cache_hold is not None:
                self.device.free(cache_hold)
        self._charge_reuse_sparse()
        self.optimizer.step()

        breakdown = (self.device.clock.breakdown if self.device
                     else TimeBreakdown())
        agg_flops = agg_full = 0.0
        if self.reuse is not None:
            agg_flops = self.reuse.stats.forward_flops
            agg_full = self.reuse.stats.full_equivalent_flops
        result = EpochResult(
            loss=loss_value,
            breakdown=TimeBreakdown(breakdown.transfer, breakdown.compute,
                                    breakdown.comm),
            test_accuracy=self._test_accuracy(final_embed),
            transfer_bytes=self.transfer.stats.bytes_moved,
            transfer_naive_equivalent_bytes=(
                self.transfer.stats.snapshot_bytes_naive_equivalent),
            peak_memory_bytes=(self.device.peak_in_use if self.device
                               else 0),
            forward_wall_s=forward_wall,
            agg_flops=agg_flops,
            agg_flops_full_equivalent=agg_full,
        )
        collect_epoch_metrics(self.telemetry, result,
                              self.reuse.stats if self.reuse is not None
                              else None)
        return result

    def _test_accuracy(self, final_embed: Tensor) -> float:
        if isinstance(self.task, LinkPredictionTask):
            return self.task.test_accuracy(final_embed)
        return float("nan")

    def fit(self, epochs: int) -> list[EpochResult]:
        results = []
        for _ in range(epochs):
            if self.device is not None:
                self.device.clock.reset()
            self.transfer.reset()
            results.append(self.train_epoch())
        return results
