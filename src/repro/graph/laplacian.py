"""Normalized graph Laplacian used by the GCN operator (paper Eq. 1).

    Ã = D^{-1/2} · (A + I) · D^{-1/2},   D[u, u] = 1 + deg(u)

Degree here follows the paper's GCN formulation: each edge ``(u, v)``
receives weight ``1 / sqrt((1 + deg_u)(1 + deg_v))``, where ``deg`` counts
neighbors.  For directed snapshots we use the symmetrized neighbor count
(out+in), matching how GCN treats transaction/link graphs.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.snapshot import GraphSnapshot
from repro.tensor.sparse import SparseMatrix

__all__ = ["normalized_laplacian", "laplacian_from_adjacency"]


def normalized_laplacian(snapshot: GraphSnapshot) -> SparseMatrix:
    """Compute ``Ã`` for one snapshot (paper Eq. 1)."""
    return laplacian_from_adjacency(snapshot.adjacency())


def laplacian_from_adjacency(adj: SparseMatrix) -> SparseMatrix:
    """``Ã = D^{-1/2}(A + I)D^{-1/2}`` with ``D = 1 + neighbor count``."""
    a = adj.csr
    n = a.shape[0]
    a_hat = (a + sp.eye(n, format="csr", dtype=np.float64)).tocsr()
    # Neighbor count from topology (binarized, symmetrized), per Eq. 1.
    # Stored-entry counts read straight off the CSR structure — row
    # counts are indptr differences, column counts a bincount of the
    # index array — with no nnz-sized value copy.
    deg = np.diff(a.indptr).astype(np.int64)
    deg_in = np.bincount(a.indices, minlength=n).astype(np.int64)
    neighbors = np.maximum(deg, deg_in)
    d_inv_sqrt = 1.0 / np.sqrt(1.0 + neighbors)
    d_mat = sp.diags(d_inv_sqrt)
    return SparseMatrix((d_mat @ a_hat @ d_mat).tocsr())
