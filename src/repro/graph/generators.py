"""Synthetic dynamic-graph generators.

Two families:

* :func:`random_dtdg` — the paper's weak-scaling generator (§6.3):
  each snapshot drawn independently with ``m = N·f`` random edges.
* :func:`evolving_dtdg` — a churn-controlled generator where each
  snapshot keeps a fraction ``1 − churn`` of the previous snapshot's
  edges and resamples the rest.  Real dynamic graphs "change gradually"
  (paper §3.2); ``churn`` directly dials the consecutive-snapshot overlap
  the graph-difference technique exploits, which makes it the right
  instrument for the GD ablation and for calibrating the synthetic
  stand-ins of the paper's datasets.

Both use power-law-ish vertex popularity so the hypergraph partitioner
sees realistic skewed degree distributions.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.graph.dtdg import DTDG
from repro.graph.snapshot import GraphSnapshot, canonical_edges

__all__ = ["random_dtdg", "evolving_dtdg", "sample_edges"]


def sample_edges(num_vertices: int, num_edges: int,
                 rng: np.random.Generator,
                 skew: float = 0.0) -> np.ndarray:
    """Sample ``num_edges`` distinct directed edges (no self loops).

    ``skew > 0`` draws endpoints from a Zipf-like popularity distribution
    with exponent ``skew``; ``skew == 0`` is uniform.
    """
    if num_edges < 0:
        raise DatasetError("num_edges must be non-negative")
    cap = num_vertices * (num_vertices - 1)
    if num_edges > cap:
        raise DatasetError(
            f"cannot place {num_edges} distinct edges in a {num_vertices}-"
            f"vertex simple digraph (max {cap})")
    if skew > 0:
        weights = 1.0 / np.arange(1, num_vertices + 1) ** skew
        probs = weights / weights.sum()
    else:
        probs = None

    chosen: np.ndarray = np.empty((0, 2), dtype=np.int64)
    # rejection-sample in vectorized rounds until we have enough edges
    need = num_edges
    while need > 0:
        draw = max(int(need * 1.5) + 8, 16)
        src = rng.choice(num_vertices, size=draw, p=probs)
        dst = rng.choice(num_vertices, size=draw, p=probs)
        cand = np.stack([src, dst], axis=1).astype(np.int64)
        cand = cand[cand[:, 0] != cand[:, 1]]
        pool = canonical_edges(np.concatenate([chosen, cand], axis=0))
        if len(pool) > num_edges:
            # keep a random subset to avoid order bias toward low ids
            keep = rng.choice(len(pool), size=num_edges, replace=False)
            pool = pool[np.sort(keep)]
        chosen = pool
        need = num_edges - len(chosen)
    return chosen


def random_dtdg(num_vertices: int, num_timesteps: int, density: float,
                seed: int = 0, skew: float = 0.0,
                name: str = "random") -> DTDG:
    """Independent-snapshot generator used for weak scaling (paper §6.3).

    ``density`` is ``f`` in the paper: each snapshot has ``m = N·f``
    edges chosen at random.
    """
    if density <= 0:
        raise DatasetError("density must be positive")
    rng = np.random.default_rng(seed)
    m = int(round(num_vertices * density))
    snaps = [GraphSnapshot(num_vertices,
                           sample_edges(num_vertices, m, rng, skew=skew))
             for _ in range(num_timesteps)]
    return DTDG(snaps, name=name)


def evolving_dtdg(num_vertices: int, num_timesteps: int,
                  edges_per_snapshot: int, churn: float,
                  seed: int = 0, skew: float = 1.0,
                  name: str = "evolving") -> DTDG:
    """Churn-controlled generator: consecutive snapshots share
    ``(1 − churn)`` of their edges in expectation.

    Parameters
    ----------
    churn:
        Fraction of each snapshot's edges resampled at the next timestep;
        ``0`` gives identical topology every step, ``1`` independent
        snapshots.
    """
    if not 0.0 <= churn <= 1.0:
        raise DatasetError(f"churn must be in [0, 1], got {churn}")
    rng = np.random.default_rng(seed)
    snaps: list[GraphSnapshot] = []
    edges = sample_edges(num_vertices, edges_per_snapshot, rng, skew=skew)
    snaps.append(GraphSnapshot(num_vertices, edges))
    for _ in range(1, num_timesteps):
        m = len(edges)
        n_keep = int(round((1.0 - churn) * m))
        if n_keep < m:
            keep_idx = rng.choice(m, size=n_keep, replace=False)
            kept = edges[np.sort(keep_idx)]
        else:
            kept = edges
        # resample replacements avoiding collisions with the kept edges
        need = edges_per_snapshot - len(kept)
        merged = kept
        while need > 0:
            fresh = sample_edges(num_vertices, need, rng, skew=skew)
            merged = canonical_edges(np.concatenate([merged, fresh], axis=0))
            need = edges_per_snapshot - len(merged)
        edges = merged
        snaps.append(GraphSnapshot(num_vertices, edges))
    return DTDG(snaps, name=name)
