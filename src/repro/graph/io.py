"""Persist DTDGs through the temporal graph store.

:func:`save_dtdg` writes a :class:`~repro.store.store.GraphStore`
directory: the timeline lands as a checksummed delta log (one GD record
per timestep) plus periodic CSR bases, so a saved DTDG is both smaller
than the legacy one-array-per-snapshot ``.npz`` and time-travelable
without loading the whole archive.  :func:`load_dtdg` reads either
format — store directories and legacy ``.npz`` archives — returning a
fully materialized :class:`~repro.graph.dtdg.DTDG` (use
``GraphStore.open(path).window(...)`` directly for lazy, out-of-core
access).
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import DatasetError, StoreError
from repro.graph.dtdg import DTDG
from repro.graph.snapshot import GraphSnapshot

__all__ = ["save_dtdg", "load_dtdg"]


def save_dtdg(dtdg: DTDG, path: str, *,
              base_interval: int | None = 8) -> None:
    """Write a DTDG (and its features, if attached) as a graph store
    directory at ``path``, replacing whatever a previous save left
    there (matching the legacy writer's overwrite semantics — cached
    benchmark inputs get regenerated in place)."""
    import shutil

    from repro.store import GraphStore
    if os.path.isdir(path) and os.path.exists(os.path.join(path,
                                                           "wal.log")):
        shutil.rmtree(path)  # a previous save's store directory
    elif os.path.isfile(path):
        os.remove(path)      # a legacy single-file archive
    try:
        GraphStore.from_dtdg(path, dtdg, base_interval=base_interval)
    except StoreError as exc:
        raise DatasetError(f"cannot write DTDG store at {path}: "
                           f"{exc}") from exc


def load_dtdg(path: str) -> DTDG:
    """Read a DTDG written by :func:`save_dtdg` (either format)."""
    if os.path.isdir(path):
        from repro.store import GraphStore
        try:
            store = GraphStore.open(path)
            view = store.window()
            return DTDG(list(view.snapshots), view.features,
                        name=store.name)
        except StoreError as exc:
            raise DatasetError(f"unreadable DTDG store at {path}: "
                               f"{exc}") from exc
    if not os.path.exists(path):
        raise DatasetError(f"no such DTDG archive: {path}")
    return _load_dtdg_npz(path)


# ---------------------------------------------------------------------------
# legacy single-file .npz format (read support kept; _save kept for tests)
# ---------------------------------------------------------------------------

def _save_dtdg_npz(dtdg: DTDG, path: str) -> None:
    """Write the legacy one-array-per-snapshot ``.npz`` archive."""
    payload: dict[str, np.ndarray] = {
        "meta": np.array([dtdg.num_vertices, dtdg.num_timesteps,
                          1 if dtdg.features is not None else 0],
                         dtype=np.int64),
        "name": np.array([dtdg.name]),
    }
    for t, snap in enumerate(dtdg.snapshots):
        payload[f"edges_{t}"] = snap.edges
        payload[f"values_{t}"] = snap.values
    if dtdg.features is not None:
        for t, frame in enumerate(dtdg.features):
            payload[f"features_{t}"] = frame
    np.savez_compressed(path, **payload)


def _load_dtdg_npz(path: str) -> DTDG:
    """Read a legacy archive written by :func:`_save_dtdg_npz`."""
    with np.load(path, allow_pickle=False) as archive:
        n, t_count, has_features = archive["meta"]
        name = str(archive["name"][0])
        snaps = [GraphSnapshot(int(n), archive[f"edges_{t}"],
                               archive[f"values_{t}"])
                 for t in range(int(t_count))]
        features = None
        if has_features:
            features = [archive[f"features_{t}"] for t in range(int(t_count))]
    return DTDG(snaps, features, name=name)
