"""Persist DTDGs to a single ``.npz`` archive.

Format: per-snapshot edge arrays and values plus optional feature frames,
all under deterministic keys, so generated benchmark inputs can be cached
between runs.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import DatasetError
from repro.graph.dtdg import DTDG
from repro.graph.snapshot import GraphSnapshot

__all__ = ["save_dtdg", "load_dtdg"]


def save_dtdg(dtdg: DTDG, path: str) -> None:
    """Write a DTDG (and its features, if attached) to ``path``."""
    payload: dict[str, np.ndarray] = {
        "meta": np.array([dtdg.num_vertices, dtdg.num_timesteps,
                          1 if dtdg.features is not None else 0],
                         dtype=np.int64),
        "name": np.array([dtdg.name]),
    }
    for t, snap in enumerate(dtdg.snapshots):
        payload[f"edges_{t}"] = snap.edges
        payload[f"values_{t}"] = snap.values
    if dtdg.features is not None:
        for t, frame in enumerate(dtdg.features):
            payload[f"features_{t}"] = frame
    np.savez_compressed(path, **payload)


def load_dtdg(path: str) -> DTDG:
    """Read a DTDG previously written by :func:`save_dtdg`."""
    if not os.path.exists(path):
        raise DatasetError(f"no such DTDG archive: {path}")
    with np.load(path, allow_pickle=False) as archive:
        n, t_count, has_features = archive["meta"]
        name = str(archive["name"][0])
        snaps = [GraphSnapshot(int(n), archive[f"edges_{t}"],
                               archive[f"values_{t}"])
                 for t in range(int(t_count))]
        features = None
        if has_features:
            features = [archive[f"features_{t}"] for t in range(int(t_count))]
    return DTDG(snaps, features, name=name)
