"""Discrete-Time Dynamic Graph container (paper §2.1).

A :class:`DTDG` is the sequence ``G_1 … G_T`` of :class:`GraphSnapshot`
over a fixed vertex set, plus the input feature frames ``X_1 … X_T``
(each ``N × F``).  Snapshots and frames are stored as Python lists — the
natural unit for snapshot partitioning (paper §4.2) and block-wise
gradient checkpointing (paper §3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.errors import DatasetError
from repro.graph.snapshot import GraphSnapshot

__all__ = ["DTDG", "DTDGStats", "validate_feature_frames"]


def validate_feature_frames(features, num_vertices: int,
                            num_timesteps: int) -> list[np.ndarray]:
    """Coerce and shape-check per-timestep feature frames.

    The single validation both :class:`DTDG` and the store's lazy
    ``StoreView`` apply: one ``(N, F)`` float frame per timestep.
    """
    frames = [np.asarray(f, dtype=np.float64) for f in features]
    if len(frames) != num_timesteps:
        raise DatasetError(
            f"{len(frames)} feature frames for {num_timesteps} snapshots")
    dim = frames[0].shape[1] if frames[0].ndim == 2 else None
    for i, f in enumerate(frames):
        if f.ndim != 2 or f.shape[0] != num_vertices or f.shape[1] != dim:
            raise DatasetError(
                f"feature frame {i} has shape {f.shape}; expected "
                f"({num_vertices}, {dim})")
    return frames


@dataclass(frozen=True)
class DTDGStats:
    """Summary statistics matching the columns of paper Table 1."""

    name: str
    num_vertices: int
    num_timesteps: int
    total_nnz: int
    mean_overlap: float  # mean Jaccard similarity of consecutive snapshots

    def row(self) -> tuple:
        return (self.name, self.num_vertices, self.num_timesteps,
                self.total_nnz, round(self.mean_overlap, 3))


class DTDG:
    """A dynamic graph plus per-timestep feature frames.

    Parameters
    ----------
    snapshots:
        Sequence of :class:`GraphSnapshot`, all over the same vertex set.
    features:
        Optional sequence of ``N × F`` frames (one per timestep).  When
        omitted, call :func:`repro.train.preprocess.degree_features` to
        attach the paper's in/out-degree features.
    name:
        Label used by dataset registries and benchmark reports.
    """

    def __init__(self, snapshots: Sequence[GraphSnapshot],
                 features: Sequence[np.ndarray] | None = None,
                 name: str = "dtdg") -> None:
        snapshots = list(snapshots)
        if not snapshots:
            raise DatasetError("a DTDG needs at least one snapshot")
        n = snapshots[0].num_vertices
        for i, snap in enumerate(snapshots):
            if snap.num_vertices != n:
                raise DatasetError(
                    f"snapshot {i} has {snap.num_vertices} vertices, "
                    f"expected {n}")
        self.snapshots = snapshots
        self.name = name
        self.features: list[np.ndarray] | None = None
        if features is not None:
            self.set_features(features)

    # -- basic shape -----------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.snapshots[0].num_vertices

    @property
    def num_timesteps(self) -> int:
        return len(self.snapshots)

    @property
    def feature_dim(self) -> int:
        if self.features is None:
            raise DatasetError(f"DTDG {self.name!r} has no features attached")
        return self.features[0].shape[1]

    @property
    def total_nnz(self) -> int:
        return sum(s.num_edges for s in self.snapshots)

    def __len__(self) -> int:
        return len(self.snapshots)

    def __iter__(self) -> Iterator[GraphSnapshot]:
        return iter(self.snapshots)

    def __getitem__(self, t: int) -> GraphSnapshot:
        return self.snapshots[t]

    # -- features ---------------------------------------------------------------------
    def set_features(self, features: Sequence[np.ndarray]) -> None:
        self.features = validate_feature_frames(
            features, self.num_vertices, len(self.snapshots))

    # -- statistics ----------------------------------------------------------------------
    def mean_topology_overlap(self) -> float:
        """Mean Jaccard overlap between consecutive snapshots (GD driver)."""
        if len(self.snapshots) < 2:
            return 1.0
        overlaps = [self.snapshots[i].topology_overlap(self.snapshots[i + 1])
                    for i in range(len(self.snapshots) - 1)]
        return float(np.mean(overlaps))

    def stats(self) -> DTDGStats:
        return DTDGStats(
            name=self.name,
            num_vertices=self.num_vertices,
            num_timesteps=self.num_timesteps,
            total_nnz=self.total_nnz,
            mean_overlap=self.mean_topology_overlap(),
        )

    def slice_time(self, start: int, stop: int, name: str | None = None) -> "DTDG":
        """Sub-DTDG over timesteps ``[start, stop)`` (features included)."""
        feats = (self.features[start:stop]
                 if self.features is not None else None)
        return DTDG(self.snapshots[start:stop], feats,
                    name=name or f"{self.name}[{start}:{stop}]")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"DTDG(name={self.name!r}, N={self.num_vertices}, "
                f"T={self.num_timesteps}, nnz={self.total_nnz})")
