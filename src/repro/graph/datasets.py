"""Calibrated synthetic stand-ins for the paper's benchmark datasets.

The paper (Table 1) evaluates on epinions, flickr and youtube from the
Network Data Repository plus an AMLSim-generated graph.  Those raw files
are not available offline, so each dataset is replaced by a synthetic
DTDG *calibrated to the paper's published statistics*: vertex count,
timestep count, total nnz, degree skew, and — the property the
graph-difference study actually depends on — the topology overlap
between consecutive snapshots.

A ``scale`` parameter shrinks ``N`` and per-snapshot nnz proportionally
(the simulator executes real numerics, so billion-edge absolute sizes are
out of reach on one machine); a ``t_scale`` shrinks the timeline.  All
the paper's *ratios* (density, overlap, relative dataset sizes) are
preserved, which is what the reproduced experiment shapes rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DatasetError
from repro.graph.amlsim import AMLSimConfig, generate_amlsim
from repro.graph.dtdg import DTDG
from repro.graph.generators import evolving_dtdg

__all__ = ["DatasetSpec", "DATASETS", "load_dataset", "paper_table1_rows"]


@dataclass(frozen=True)
class DatasetSpec:
    """Published statistics of one paper dataset (Table 1) plus the
    calibration knobs for its synthetic stand-in."""

    name: str
    paper_vertices: int          # N
    paper_timesteps: int         # T
    paper_nnz: int               # total edges across snapshots
    paper_nnz_mproduct: int      # after M-product smoothing
    paper_nnz_edgelife: int      # after edge-life smoothing
    churn: float                 # consecutive-snapshot edge turnover
    skew: float                  # degree-distribution skew

    @property
    def edges_per_snapshot(self) -> float:
        return self.paper_nnz / self.paper_timesteps

    def scaled_shape(self, scale: float,
                     t_scale: float = 1.0) -> tuple[int, int, int]:
        """Return (N, T, edges-per-snapshot) at the given scale."""
        n = max(64, int(round(self.paper_vertices * scale)))
        t = max(8, int(round(self.paper_timesteps * t_scale)))
        m = max(16, int(round(self.edges_per_snapshot * scale)))
        # keep the simple-digraph constraint satisfiable
        m = min(m, n * (n - 1) // 2)
        return n, t, m


# ``churn`` calibration: the link datasets (snapshots = links formed per
# interval, with some repeat activity) get moderate churn, so smoothing
# grows them substantially as the paper's Table 1 shows; AML-Sim
# (recurring transactions) gets low churn, which is what gives CD-GCN's
# raw-graph GD transfer its gains in the paper's §6.2.
DATASETS: dict[str, DatasetSpec] = {
    "epinions": DatasetSpec(
        name="epinions", paper_vertices=755_000, paper_timesteps=501,
        paper_nnz=13_000_000, paper_nnz_mproduct=653_000_000,
        paper_nnz_edgelife=1_038_000_000, churn=0.30, skew=1.0),
    "flickr": DatasetSpec(
        name="flickr", paper_vertices=2_300_000, paper_timesteps=134,
        paper_nnz=33_000_000, paper_nnz_mproduct=963_000_000,
        paper_nnz_edgelife=796_000_000, churn=0.30, skew=1.1),
    "youtube": DatasetSpec(
        name="youtube", paper_vertices=3_200_000, paper_timesteps=203,
        paper_nnz=12_000_000, paper_nnz_mproduct=851_000_000,
        paper_nnz_edgelife=802_000_000, churn=0.32, skew=1.2),
    "amlsim": DatasetSpec(
        name="amlsim", paper_vertices=1_000_000, paper_timesteps=200,
        paper_nnz=124_000_000, paper_nnz_mproduct=1_094_000_000,
        paper_nnz_edgelife=1_038_000_000, churn=0.12, skew=0.9),
}


def load_dataset(name: str, scale: float = 1e-3, t_scale: float = 0.15,
                 seed: int = 0) -> DTDG:
    """Build the calibrated synthetic stand-in for a paper dataset.

    Parameters
    ----------
    name:
        One of ``epinions``, ``flickr``, ``youtube``, ``amlsim``.
    scale:
        Fraction of the paper's vertex/edge counts to materialize.
    t_scale:
        Fraction of the paper's timeline length.
    """
    if name not in DATASETS:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}")
    spec = DATASETS[name]
    n, t, m = spec.scaled_shape(scale, t_scale)
    if name == "amlsim":
        # route through the AML simulator so laundering structure is real
        config = AMLSimConfig(
            num_accounts=n, num_timesteps=t,
            background_per_step=m,
            partner_persistence=1.0 - spec.churn,
            num_fan_out=max(2, t // 8), num_fan_in=max(2, t // 8),
            num_cycles=max(2, t // 10), num_scatter_gather=max(1, t // 12),
            activity_skew=spec.skew, seed=seed)
        dtdg = generate_amlsim(config).dtdg
        dtdg.name = "amlsim"
        return dtdg
    return evolving_dtdg(
        num_vertices=n, num_timesteps=t, edges_per_snapshot=m,
        churn=spec.churn, seed=seed, skew=spec.skew, name=name)


def paper_table1_rows() -> list[tuple]:
    """The reference rows of paper Table 1 (for report rendering)."""
    rows = []
    for spec in DATASETS.values():
        rows.append((spec.name, spec.paper_vertices, spec.paper_timesteps,
                     spec.paper_nnz, spec.paper_nnz_mproduct,
                     spec.paper_nnz_edgelife))
    return rows
