"""Graph-difference snapshot encoding (paper §3.2) — core contribution.

Consecutive DTDG snapshots overlap heavily in topology.  Instead of
shipping snapshot ``A_{i+1}`` as full (index, value) pairs, the GD method
ships only:

* the indices of ``A_i^ext``   — edges in ``A_i`` but not ``A_{i+1}``,
* the indices of ``A_{i+1}^ext`` — edges in ``A_{i+1}`` but not ``A_i``,
* *all* values of ``A_{i+1}`` (values do not overlap even when topology
  does).

The receiver removes ``A_i^ext`` from its resident copy of ``A_i`` to get
the common part, then inserts ``A_{i+1}^ext`` to reconstruct ``A_{i+1}``'s
index structure, and attaches the freshly shipped values.

This module implements both directions plus the exact byte accounting the
transfer-time model consumes (index bytes are what GD saves).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import DatasetError
from repro.graph.snapshot import GraphSnapshot, canonical_edges
from repro.tensor.sparse import INDEX_BYTES, VALUE_BYTES

__all__ = ["SnapshotDiff", "diff_snapshots", "apply_diff",
           "encode_sequence", "DiffDecoder", "sequence_transfer_stats",
           "split_diff_by_blocks"]


@dataclass(frozen=True)
class SnapshotDiff:
    """The GD wire format for one snapshot transition ``A_i → A_{i+1}``.

    Attributes
    ----------
    removed:
        Canonical ``(r, 2)`` edges present in ``A_i`` but not ``A_{i+1}``.
    added:
        Canonical ``(a, 2)`` edges present in ``A_{i+1}`` but not ``A_i``.
    values:
        All ``A_{i+1}`` values, aligned with its canonical edge order.
    """

    removed: np.ndarray
    added: np.ndarray
    values: np.ndarray
    # cheap integrity token over the *base* snapshot's edge keys, so a
    # receiver applying the diff to the wrong resident snapshot fails fast
    # instead of silently reconstructing garbage
    base_checksum: int = -1
    # receiver-side acceleration, derived (redundant) data computed at
    # encode time where both aligned value arrays are in hand: positions
    # into the *new* snapshot's canonical order of (a) the added edges
    # (aligned with ``added``'s row order) and (b) the common edges whose
    # value changed.  Lets an incremental operator maintainer work in
    # O(delta) instead of re-deriving the changed values with an O(nnz)
    # alignment pass.  Not part of the §3.2 wire payload accounting.
    value_hint: tuple | None = None

    @property
    def payload_nbytes(self) -> int:
        """Bytes on the wire under GD (paper §3.2's transfer list)."""
        index_bytes = 2 * INDEX_BYTES * (len(self.removed) + len(self.added))
        return index_bytes + VALUE_BYTES * len(self.values)

    @property
    def naive_nbytes(self) -> int:
        """Bytes a naive (index, value) transfer of ``A_{i+1}`` would use."""
        return (2 * INDEX_BYTES + VALUE_BYTES) * len(self.values)

    @property
    def savings_ratio(self) -> float:
        """naive / GD byte ratio (≥ 1 when snapshots overlap)."""
        payload = self.payload_nbytes
        return self.naive_nbytes / payload if payload else float("inf")


def _keys(edges: np.ndarray, n: int) -> np.ndarray:
    return edges[:, 0] * np.int64(n) + edges[:, 1]


def _unkeys(keys: np.ndarray, n: int) -> np.ndarray:
    return np.stack([keys // n, keys % n], axis=1)


def _checksum(edges: np.ndarray, n: int) -> int:
    """Order-independent integrity token of an edge set."""
    if len(edges) == 0:
        return 0
    keys = _keys(edges, n).astype(np.uint64)
    mixed = keys * np.uint64(0x9E3779B97F4A7C15)
    return int((np.bitwise_xor.reduce(mixed) + np.uint64(len(keys)))
               & np.uint64(0x7FFFFFFFFFFFFFFF))


def diff_snapshots(prev: GraphSnapshot,
                   curr: GraphSnapshot) -> SnapshotDiff:
    """Encode the transition ``prev → curr`` in GD wire format."""
    if prev.num_vertices != curr.num_vertices:
        raise DatasetError("diff requires snapshots over the same vertices")
    n = prev.num_vertices
    prev_keys = _keys(prev.edges, n)
    curr_keys = _keys(curr.edges, n)
    removed_keys = np.setdiff1d(prev_keys, curr_keys, assume_unique=True)
    added_keys = np.setdiff1d(curr_keys, prev_keys, assume_unique=True)
    # the value hint: common edges sit at identical offsets once the
    # diffed positions are pruned from either side's canonical order
    added_pos = np.searchsorted(curr_keys, added_keys)
    keep_prev = np.ones(len(prev_keys), dtype=bool)
    keep_prev[np.searchsorted(prev_keys, removed_keys)] = False
    keep_curr = np.ones(len(curr_keys), dtype=bool)
    keep_curr[added_pos] = False
    changed = prev.values[keep_prev] != curr.values[keep_curr]
    changed_pos = np.flatnonzero(keep_curr)[changed]
    return SnapshotDiff(removed=_unkeys(removed_keys, n),
                        added=_unkeys(added_keys, n),
                        values=curr.values.copy(),
                        base_checksum=_checksum(prev.edges, n),
                        value_hint=(added_pos, changed_pos))


def apply_diff(prev: GraphSnapshot, diff: SnapshotDiff) -> GraphSnapshot:
    """Reconstruct ``A_{i+1}`` from a resident ``A_i`` plus a diff."""
    n = prev.num_vertices
    if diff.base_checksum != -1 and \
            diff.base_checksum != _checksum(prev.edges, n):
        raise DatasetError(
            "diff does not apply: resident snapshot is not the base the "
            "diff was encoded against")
    prev_keys = _keys(prev.edges, n)
    removed_keys = _keys(np.asarray(diff.removed, dtype=np.int64).reshape(-1, 2), n)
    common_keys = np.setdiff1d(prev_keys, removed_keys, assume_unique=True)
    added = np.asarray(diff.added, dtype=np.int64).reshape(-1, 2)
    edges = np.concatenate([_unkeys(common_keys, n), added], axis=0)
    edges = canonical_edges(edges)
    if len(edges) != len(diff.values):
        raise DatasetError(
            f"diff reconstruction produced {len(edges)} edges for "
            f"{len(diff.values)} values — prev snapshot mismatch?")
    return GraphSnapshot(n, edges, diff.values)


def encode_sequence(snapshots: Sequence[GraphSnapshot]
                    ) -> tuple[GraphSnapshot, list[SnapshotDiff]]:
    """Encode a block of snapshots: first full, the rest as diffs.

    Mirrors the checkpoint implementation (paper §3.2): "the first
    snapshot ``A_{s(b)}`` is transferred … using standard sparse matrix
    representation", subsequent ones via GD.
    """
    snapshots = list(snapshots)
    if not snapshots:
        raise DatasetError("cannot encode an empty snapshot sequence")
    diffs = [diff_snapshots(snapshots[i], snapshots[i + 1])
             for i in range(len(snapshots) - 1)]
    return snapshots[0], diffs


class DiffDecoder:
    """Receiver-side streaming state: holds the resident snapshot.

    The GPU in the paper keeps the previous snapshot while the block is
    being processed; this class plays that role in the simulator.
    """

    def __init__(self, first: GraphSnapshot) -> None:
        self._resident = first

    @property
    def resident(self) -> GraphSnapshot:
        return self._resident

    def push(self, diff: SnapshotDiff) -> GraphSnapshot:
        """Apply the next diff and advance the resident snapshot."""
        self._resident = apply_diff(self._resident, diff)
        return self._resident


@dataclass(frozen=True)
class SequenceTransferStats:
    """Aggregate byte accounting for a snapshot sequence under Base vs GD."""

    naive_nbytes: int
    gd_nbytes: int
    num_full: int
    num_diffs: int

    @property
    def savings_ratio(self) -> float:
        return self.naive_nbytes / self.gd_nbytes if self.gd_nbytes else 1.0


def sequence_transfer_stats(snapshots: Sequence[GraphSnapshot],
                            chunk: int | None = None
                            ) -> SequenceTransferStats:
    """Byte totals for transferring ``snapshots`` naively vs via GD.

    Parameters
    ----------
    chunk:
        Transfer-chunk length: the first snapshot of each chunk goes out
        full (paper: the first snapshot of each per-processor block).
        ``None`` means one chunk covering the whole sequence.
    """
    snapshots = list(snapshots)
    if chunk is None:
        chunk = len(snapshots)
    if chunk <= 0:
        raise DatasetError(f"chunk must be positive, got {chunk}")
    naive = sum(s.nbytes for s in snapshots)
    gd = 0
    num_full = 0
    num_diffs = 0
    for start in range(0, len(snapshots), chunk):
        block = snapshots[start:start + chunk]
        gd += block[0].nbytes
        num_full += 1
        for i in range(len(block) - 1):
            gd += diff_snapshots(block[i], block[i + 1]).payload_nbytes
            num_diffs += 1
    return SequenceTransferStats(naive_nbytes=naive, gd_nbytes=gd,
                                 num_full=num_full, num_diffs=num_diffs)


def split_diff_by_blocks(diff: SnapshotDiff, curr: GraphSnapshot,
                         owners: np.ndarray,
                         num_blocks: int | None = None
                         ) -> list[SnapshotDiff]:
    """Split a GD delta into per-vertex-block sub-deltas.

    ``owners`` maps each vertex to its block (shard).  Block ``b``'s
    sub-delta contains every removed/added edge *incident* to a vertex
    it owns plus the new values of ``curr``'s edges incident to it —
    exactly what a shard mirroring only its vertex block (and ghost
    fringe) needs to stay current.  An edge whose endpoints live in two
    different blocks appears in both sub-deltas; the duplication is the
    cross-shard delta traffic the sharded serving tier accounts for.

    Sub-deltas carry no base checksum (they do not apply against the
    full resident base); their summed ``payload_nbytes`` is the total
    wire cost of fanning the delta out to all shards.

    When the parent diff carries an encoder-side ``value_hint``, each
    sub-delta's hint is **re-indexed into the block-local value order**:
    hinted positions point into that block's ``values`` array (the
    incident edges of ``curr`` in canonical order), never into the
    whole-graph canonical order — whole-graph positions in a shard-local
    diff would silently address the wrong edges.  A hint-less parent
    yields hint-less sub-deltas (the consumers' aligned fallback is
    exact either way).
    """
    owners = np.asarray(owners, dtype=np.int64)
    if len(owners) != curr.num_vertices:
        raise DatasetError(
            f"owners maps {len(owners)} vertices, snapshot has "
            f"{curr.num_vertices}")
    blocks = int(owners.max()) + 1 if num_blocks is None else num_blocks
    if len(owners) and (owners.min() < 0 or owners.max() >= blocks):
        raise DatasetError("owner block ids out of range")

    removed = np.asarray(diff.removed, dtype=np.int64).reshape(-1, 2)
    added = np.asarray(diff.added, dtype=np.int64).reshape(-1, 2)
    if diff.value_hint is not None:
        added_pos = np.asarray(diff.value_hint[0], dtype=np.int64)
        changed_pos = np.asarray(diff.value_hint[1], dtype=np.int64)
    else:
        added_pos = changed_pos = None

    def incident_mask(edges: np.ndarray, b: int) -> np.ndarray:
        return (owners[edges[:, 0]] == b) | (owners[edges[:, 1]] == b)

    out = []
    for b in range(blocks):
        if curr.num_edges:
            vmask = incident_mask(curr.edges, b)
            values = curr.values[vmask]
        else:
            vmask = np.zeros(0, dtype=bool)
            values = curr.values[:0]
        rmask = incident_mask(removed, b) if len(removed) \
            else np.zeros(0, dtype=bool)
        amask = incident_mask(added, b) if len(added) \
            else np.zeros(0, dtype=bool)
        hint = None
        if added_pos is not None:
            # global canonical position -> position within this block's
            # value array (the incident edges of curr, in order)
            local_of_global = np.cumsum(vmask) - 1
            sub_added_pos = local_of_global[added_pos[amask]] \
                if amask.any() else added_pos[:0]
            if len(changed_pos):
                cmask = vmask[changed_pos]
                sub_changed_pos = local_of_global[changed_pos[cmask]]
            else:
                sub_changed_pos = changed_pos[:0]
            hint = (sub_added_pos, sub_changed_pos)
        out.append(SnapshotDiff(removed=removed[rmask],
                                added=added[amask],
                                values=values,
                                value_hint=hint))
    return out
