"""Vectorized truncated BFS over canonical edge arrays.

One mask-frontier kernel shared by every consumer of "who is within h
undirected hops of this seed set": the embedding cache's k-hop dirty
expansion, the sharded tier's distance-to-block halo fields, and the
partitioner's ghost-fringe helper.  O(E) boolean work per hop, no
sorting, no per-vertex python.
"""

from __future__ import annotations

import numpy as np

__all__ = ["undirected_distances"]


def undirected_distances(num_vertices: int, edges: np.ndarray,
                         seeds: np.ndarray, max_hops: int) -> np.ndarray:
    """Hop distance from ``seeds`` treating ``edges`` as undirected.

    Returns an int64 array of length ``num_vertices``; distances are
    truncated at ``max_hops`` and every vertex farther than that (or
    unreachable) holds ``max_hops + 1``.
    """
    dist = np.full(num_vertices, max_hops + 1, dtype=np.int64)
    seeds = np.asarray(seeds, dtype=np.int64)
    dist[seeds] = 0
    if max_hops <= 0 or len(edges) == 0 or len(seeds) == 0:
        return dist
    frontier = np.zeros(num_vertices, dtype=bool)
    frontier[seeds] = True
    reach = frontier.copy()
    for d in range(1, max_hops + 1):
        nxt = np.zeros(num_vertices, dtype=bool)
        nxt[edges[frontier[edges[:, 0]], 1]] = True
        nxt[edges[frontier[edges[:, 1]], 0]] = True
        frontier = nxt & ~reach
        if not frontier.any():
            break
        dist[frontier] = d
        reach |= frontier
    return dist
