"""A single DTDG snapshot: the graph at one timestep (paper §2.1).

A snapshot ``G_t = (V, E_t)`` over a fixed vertex set ``V`` of size ``N``.
Edges are stored as a canonically sorted ``(nnz, 2)`` int64 COO array —
the representation that is actually *shipped* between CPU and GPU in the
paper's transfer study, and the representation the graph-difference
encoder (paper §3.2) operates on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.tensor.sparse import INDEX_BYTES, VALUE_BYTES, SparseMatrix

__all__ = ["GraphSnapshot", "canonical_edges"]


def canonical_edges(edges: np.ndarray) -> np.ndarray:
    """Sort an ``(m, 2)`` edge array lexicographically and drop duplicates."""
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if len(edges) == 0:
        return edges
    order = np.lexsort((edges[:, 1], edges[:, 0]))
    edges = edges[order]
    keep = np.ones(len(edges), dtype=bool)
    keep[1:] = (np.diff(edges[:, 0]) != 0) | (np.diff(edges[:, 1]) != 0)
    return edges[keep]


class GraphSnapshot:
    """The graph at one timestep of a discrete-time dynamic graph.

    Parameters
    ----------
    num_vertices:
        Size of the shared vertex set ``V``.
    edges:
        ``(m, 2)`` integer array of directed ``(src, dst)`` pairs.
        Canonicalized (sorted, deduplicated) on construction.
    values:
        Optional per-edge weights aligned with the *canonical* edge order.
        Defaults to all-ones.  Snapshots produced by smoothing (edge-life,
        M-product — paper §5.4) carry non-unit values.
    """

    __slots__ = ("num_vertices", "edges", "values", "_adj")

    def __init__(self, num_vertices: int, edges: np.ndarray,
                 values: np.ndarray | None = None) -> None:
        if num_vertices <= 0:
            raise DatasetError(f"num_vertices must be positive, got "
                               f"{num_vertices}")
        raw = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        canon = canonical_edges(raw)
        if values is not None:
            values = np.asarray(values, dtype=np.float64).reshape(-1)
            if len(values) == len(raw):
                # values are aligned with the caller's raw edge order:
                # re-sort (and merge duplicates) into canonical order
                canon, values = _merge_values(raw, values)
            else:
                raise DatasetError(
                    f"{len(values)} values for {len(raw)} edges")
        if len(canon) and (canon.min() < 0 or canon.max() >= num_vertices):
            raise DatasetError("edge endpoint out of vertex range")
        self.num_vertices = int(num_vertices)
        self.edges = canon
        self.values = (values if values is not None
                       else np.ones(len(canon), dtype=np.float64))
        self._adj: SparseMatrix | None = None

    # -- structure ----------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def nnz(self) -> int:
        return len(self.edges)

    def adjacency(self) -> SparseMatrix:
        """Sparse adjacency matrix ``A_t`` (cached)."""
        if self._adj is None:
            self._adj = SparseMatrix.from_edges(
                self.edges, self.values, (self.num_vertices,
                                          self.num_vertices))
        return self._adj

    def out_degrees(self) -> np.ndarray:
        deg = np.zeros(self.num_vertices, dtype=np.float64)
        if len(self.edges):
            np.add.at(deg, self.edges[:, 0], 1.0)
        return deg

    def in_degrees(self) -> np.ndarray:
        deg = np.zeros(self.num_vertices, dtype=np.float64)
        if len(self.edges):
            np.add.at(deg, self.edges[:, 1], 1.0)
        return deg

    def edge_set(self) -> set[tuple[int, int]]:
        """Python-set view of the topology (small graphs / tests only)."""
        return set(map(tuple, self.edges.tolist()))

    # -- transfer accounting (paper §3.2) ------------------------------------------
    @property
    def index_nbytes(self) -> int:
        return 2 * INDEX_BYTES * self.num_edges

    @property
    def value_nbytes(self) -> int:
        return VALUE_BYTES * self.num_edges

    @property
    def nbytes(self) -> int:
        """Naive sparse (index, value) transfer footprint."""
        return self.index_nbytes + self.value_nbytes

    # -- misc -----------------------------------------------------------------------
    def with_values(self, values: np.ndarray) -> "GraphSnapshot":
        """Same topology, new edge values (canonical order)."""
        return GraphSnapshot(self.num_vertices, self.edges, values)

    def topology_overlap(self, other: "GraphSnapshot") -> float:
        """Jaccard similarity of the two edge sets (paper's GD motivation)."""
        if self.num_edges == 0 and other.num_edges == 0:
            return 1.0
        common = count_common_edges(self.edges, other.edges)
        union = self.num_edges + other.num_edges - common
        return common / union if union else 1.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"GraphSnapshot(N={self.num_vertices}, "
                f"nnz={self.num_edges})")

    def __eq__(self, other) -> bool:
        return (isinstance(other, GraphSnapshot)
                and self.num_vertices == other.num_vertices
                and self.edges.shape == other.edges.shape
                and bool((self.edges == other.edges).all())
                and bool(np.allclose(self.values, other.values)))

    def __hash__(self):  # snapshots are mutable-ish; identity hashing
        return id(self)


def _edge_keys(edges: np.ndarray, n: int) -> np.ndarray:
    """Encode (u, v) pairs as scalar int64 keys for fast set algebra."""
    return edges[:, 0] * np.int64(n) + edges[:, 1]


def count_common_edges(a: np.ndarray, b: np.ndarray) -> int:
    """Number of edges present in both canonical edge arrays."""
    if len(a) == 0 or len(b) == 0:
        return 0
    n = int(max(a.max(), b.max())) + 1
    return int(np.intersect1d(_edge_keys(a, n), _edge_keys(b, n),
                              assume_unique=True).size)


def _merge_values(raw_edges: np.ndarray,
                  raw_values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Canonicalize raw (possibly duplicated) edges, summing their values."""
    order = np.lexsort((raw_edges[:, 1], raw_edges[:, 0]))
    edges = raw_edges[order]
    values = raw_values[order]
    if len(edges) == 0:
        return edges, values
    new_group = np.ones(len(edges), dtype=bool)
    new_group[1:] = (np.diff(edges[:, 0]) != 0) | (np.diff(edges[:, 1]) != 0)
    group_ids = np.cumsum(new_group) - 1
    summed = np.zeros(group_ids[-1] + 1, dtype=np.float64)
    np.add.at(summed, group_ids, values)
    return edges[new_group], summed
