"""Incremental maintenance of the normalized Laplacian (Eq. 1).

The paper's graph-difference technique (§3.2) ships only the edges that
changed between consecutive snapshots — yet rebuilding the GCN operator

    Ã = D^{-1/2} · (A + I) · D^{-1/2},   D[u, u] = 1 + max(deg_out, deg_in)

from scratch at every timestep costs a cascade of sparse-algebra
allocations regardless of how small the delta was.  Instant Graph
Neural Networks (Zheng et al.) and ReInc (Guan et al.) both observe
that *operator maintenance* — updating only the rows and columns a
delta actually touches — is the dominant lever for dynamic-GNN
throughput.  :class:`LaplacianMaintainer` is that lever for this
codebase: it keeps a resident ``Ã`` and applies a
:class:`~repro.graph.diff.SnapshotDiff` by

1. recomputing degree deltas only for the touched endpoints (bincounts
   over the delta, not the graph),
2. structurally deleting/inserting exactly the diffed entries in the
   sorted CSR key representation (one shared-mask splice, no re-sort),
3. re-scaling only the entries whose row or column normalization
   ``D^{-1/2}`` changed, whose stored weight changed, or that were just
   inserted.

With the encoder-computed ``value_hint`` a diff carries (positions of
added and value-changed edges in the new canonical order), the whole
update runs in O(delta + touched) plus the memcpy-class splice; without
it the maintainer falls back to one aligned O(nnz) value compare.

Every recomputed entry is evaluated with the *same* floating-point
expression the full rebuild uses (``(w · dinv_u) · dinv_v``), so the
maintained operator is bit-compatible with
:func:`~repro.graph.laplacian.laplacian_from_adjacency` — not merely
close.  Any inconsistency between the diff and the resident state
(wrong base checksum, an edge removed that is not present, entry
counts that do not reproduce the new snapshot) triggers a
checksum-guarded fallback to a full rebuild instead of silently
corrupting the operator.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import DatasetError
from repro.graph.diff import SnapshotDiff
from repro.graph.snapshot import GraphSnapshot
from repro.tensor.backend import KernelBackend, resolve_backend
from repro.tensor.sparse import SparseMatrix

__all__ = ["LaplacianMaintainer", "diff_touched_vertices"]

_EMPTY_I = np.empty(0, dtype=np.int64)
_EMPTY_F = np.empty(0, dtype=np.float64)
# the diff checksum's multiplicative mixer (repro.graph.diff._checksum)
_MIXER = 0x9E3779B97F4A7C15


class _Inconsistent(Exception):
    """Internal: the diff does not apply to the resident state."""


def _ekeys(edges: np.ndarray, n: int) -> np.ndarray:
    return edges[:, 0] * np.int64(n) + edges[:, 1]


def _mix(keys: np.ndarray) -> int:
    """XOR accumulator of mixed keys — the commutative core of
    :func:`repro.graph.diff._checksum`, maintainable under set xor."""
    if len(keys) == 0:
        return 0
    mixed = keys.astype(np.uint64) * np.uint64(_MIXER)
    return int(np.bitwise_xor.reduce(mixed))


def _range_positions(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(starts[i], starts[i]+counts[i])`` ranges."""
    total = int(counts.sum())
    if total == 0:
        return _EMPTY_I
    rep_starts = np.repeat(starts, counts)
    offsets = np.arange(total, dtype=np.int64) \
        - np.repeat(np.cumsum(counts) - counts, counts)
    return rep_starts + offsets


def diff_touched_vertices(diff: SnapshotDiff,
                          curr: GraphSnapshot) -> np.ndarray | None:
    """Endpoints of every edge the transition structurally changed or
    re-weighted — the delta seed set from which the training tier's
    cross-timestep reuse (and the serving tier's dirty frontier) expand.

    Vertices incident to added or removed edges come from the diff's
    index lists; vertices incident to value-changed common edges are
    named by the encoder-side ``value_hint``.  Returns ``None`` when the
    diff carries no hint (e.g. a store-decoded delta): the value-changed
    endpoints cannot then be derived in O(delta), and callers must treat
    the touched set as unknown.
    """
    if diff.value_hint is None:
        return None
    parts = []
    removed = np.asarray(diff.removed, dtype=np.int64).reshape(-1, 2)
    added = np.asarray(diff.added, dtype=np.int64).reshape(-1, 2)
    if len(removed):
        parts.append(removed.ravel())
    if len(added):
        parts.append(added.ravel())
    changed_pos = np.asarray(diff.value_hint[1], dtype=np.int64)
    if len(changed_pos):
        if len(changed_pos) and changed_pos.max() >= curr.num_edges:
            return None  # hint does not describe this snapshot
        parts.append(curr.edges[changed_pos].ravel())
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(parts))


class LaplacianMaintainer:
    """Holds a resident ``Ã`` and applies GD deltas to it in place.

    Parameters
    ----------
    snapshot:
        The initial resident graph; ``Ã_0`` is built in full once.
    backend:
        Kernel backend (name or instance) the maintainer's
        degree/splice/rescale primitives — and every matrix it installs
        or exports — run on; ``None`` applies the selection precedence
        (``REPRO_KERNEL_BACKEND`` env, then ``reference``).

    Notes
    -----
    :attr:`laplacian` is a **live view**: its arrays are updated (and
    for structural deltas, replaced) by the next :meth:`update` call.
    Callers that need a frozen operator per timestep (e.g. training
    preprocessing, which accumulates one per snapshot) must use
    :meth:`export`.
    """

    def __init__(self, snapshot: GraphSnapshot, *,
                 backend: str | KernelBackend | None = None) -> None:
        self.backend = resolve_backend(backend)
        self.updates = 0
        self.incremental_updates = 0
        self.full_rebuilds = 0
        self.fallbacks = 0
        self._lap: SparseMatrix | None = None
        self._rebuild(snapshot)

    # -- views ----------------------------------------------------------------------
    @property
    def resident(self) -> GraphSnapshot:
        return self._snapshot

    @property
    def laplacian(self) -> SparseMatrix:
        """The maintained ``Ã`` (live view — see class notes)."""
        return self._lap

    @property
    def dinv(self) -> np.ndarray:
        """The maintained ``D^{-1/2}`` diagonal (live view)."""
        return self._dinv

    @property
    def base_checksum(self) -> int:
        """Integrity token of the resident edge set, maintained in
        O(delta); equals ``diff._checksum(resident.edges, n)``."""
        if self._edge_count == 0:
            return 0
        return (self._mix_acc + self._edge_count) & 0x7FFFFFFFFFFFFFFF

    def export(self) -> SparseMatrix:
        """An independent copy of the current ``Ã`` (frozen arrays)."""
        return SparseMatrix(self._csr(self._data.copy(),
                                      self._cols.copy(),
                                      self._indptr.copy()),
                            backend=self.backend)

    # -- construction helpers --------------------------------------------------------
    def _csr(self, data, indices, indptr) -> sp.csr_matrix:
        """CSR assembly without scipy's validation/canonicalization
        scans — the key representation guarantees sorted,
        duplicate-free int64 indices."""
        mat = sp.csr_matrix.__new__(sp.csr_matrix)
        mat.data = data
        mat.indices = indices
        mat.indptr = indptr
        mat._shape = (self._n, self._n)
        mat.has_sorted_indices = True
        mat.has_canonical_format = True
        return mat

    def _install(self) -> None:
        """(Re)point the live view at the current arrays."""
        if self._lap is None:
            self._lap = SparseMatrix(self._csr(self._data, self._cols,
                                               self._indptr),
                                     backend=self.backend)
        else:
            csr = self._lap.csr
            csr.data = self._data
            csr.indices = self._cols
            csr.indptr = self._indptr
            csr.has_sorted_indices = True
            csr.has_canonical_format = True
            self._lap._csr_t = None  # any cached transpose is stale

    # -- full rebuild ----------------------------------------------------------------
    def _rebuild(self, snapshot: GraphSnapshot) -> SparseMatrix:
        """Build ``Ã`` from scratch (initial install and fallback)."""
        n = snapshot.num_vertices
        edges = snapshot.edges
        kb = self.backend
        self._n = n
        self._row_nnz = kb.degree_counts(edges[:, 0], n) \
            if len(edges) else np.zeros(n, dtype=np.int64)
        self._col_nnz = kb.degree_counts(edges[:, 1], n) \
            if len(edges) else np.zeros(n, dtype=np.int64)
        self._neighbors = np.maximum(self._row_nnz, self._col_nnz)
        self._dinv = 1.0 / np.sqrt(1.0 + self._neighbors)

        # resident-edge bookkeeping, all maintained in O(delta) later
        edge_keys = _ekeys(edges, n) if len(edges) else _EMPTY_I
        self._edge_count = len(edges)
        self._mix_acc = _mix(edge_keys)
        self._num_loops = int((edges[:, 0] == edges[:, 1]).sum()) \
            if len(edges) else 0

        # merge the edge list with the identity diagonal into the sorted
        # key representation of A + I
        diag_keys = np.arange(n, dtype=np.int64) * np.int64(n + 1)
        if len(edges):
            all_keys = np.concatenate([edge_keys, diag_keys])
            all_w = np.concatenate([snapshot.values,
                                    np.ones(n, dtype=np.float64)])
            order = np.argsort(all_keys, kind="stable")
            sk = all_keys[order]
            sw = all_w[order]
            first = np.ones(len(sk), dtype=bool)
            first[1:] = sk[1:] != sk[:-1]
            self._keys = sk[first]
            # duplicate keys are self-loops merging with the identity
            self._w = np.add.reduceat(sw, np.flatnonzero(first))
        else:
            self._keys = diag_keys
            self._w = np.ones(n, dtype=np.float64)
        rows = self._keys // n
        self._cols = self._keys - rows * n
        self._row_counts = kb.degree_counts(rows, n)
        self._rebuild_indptr()
        self._data = (self._w * self._dinv[rows]) * self._dinv[self._cols]
        self._snapshot = snapshot
        self.full_rebuilds += 1
        self._install()
        return self._lap

    def _rebuild_indptr(self) -> None:
        self._indptr = np.zeros(self._n + 1, dtype=np.int64)
        np.cumsum(self._row_counts, out=self._indptr[1:])

    # -- incremental update ----------------------------------------------------------
    def update(self, curr: GraphSnapshot,
               diff: SnapshotDiff | None = None) -> SparseMatrix:
        """Advance the resident ``Ã`` to snapshot ``curr``.

        With a ``diff`` that verifiably applies to the resident base
        the update is incremental — O(delta) degree and structure work
        plus a rescale of the touched entries; otherwise —
        ``diff=None``, a base-checksum mismatch, or any structural
        inconsistency — the operator is rebuilt in full.
        """
        if curr.num_vertices != self._n:
            raise DatasetError("maintainer requires a fixed vertex set")
        self.updates += 1
        if curr is self._snapshot:
            return self._lap  # advance over an unchanged resident
        if diff is None:
            return self._rebuild(curr)
        if diff.base_checksum != -1 and \
                diff.base_checksum != self.base_checksum:
            self.fallbacks += 1
            return self._rebuild(curr)
        removed = np.asarray(diff.removed, dtype=np.int64).reshape(-1, 2)
        added = np.asarray(diff.added, dtype=np.int64).reshape(-1, 2)
        if self._edge_count - len(removed) + len(added) \
                != curr.num_edges or len(curr.edges) != len(diff.values):
            self.fallbacks += 1
            return self._rebuild(curr)
        try:
            self._apply(curr, diff, removed, added)
        except _Inconsistent:
            self.fallbacks += 1
            return self._rebuild(curr)
        self.incremental_updates += 1
        self._snapshot = curr
        self._install()
        return self._lap

    def _changed_values(self, curr: GraphSnapshot, diff: SnapshotDiff,
                        rm_keys: np.ndarray, ad_keys: np.ndarray,
                        ad_order: np.ndarray):
        """(added values, changed-common keys, changed-common values).

        Uses the diff's encoder-computed ``value_hint`` when present
        (O(delta)); otherwise falls back to one aligned O(nnz) compare
        of the pruned previous and current value arrays.
        """
        n = self._n
        if diff.value_hint is not None:
            added_pos, changed_pos = diff.value_hint
            added_pos = np.asarray(added_pos, dtype=np.int64)
            changed_pos = np.asarray(changed_pos, dtype=np.int64)
            if len(added_pos) != len(ad_keys):
                raise _Inconsistent
            added_pos = added_pos[ad_order]
            # spot-verify the hint against the new snapshot: the hinted
            # positions must actually hold the added edges
            if len(added_pos):
                if added_pos.max() >= curr.num_edges or not np.array_equal(
                        _ekeys(curr.edges[added_pos], n), ad_keys):
                    raise _Inconsistent
            if len(changed_pos) and changed_pos.max() >= curr.num_edges:
                raise _Inconsistent
            ad_vals = curr.values[added_pos]
            chg_keys = _ekeys(curr.edges[changed_pos], n) \
                if len(changed_pos) else _EMPTY_I
            chg_vals = curr.values[changed_pos]
            return ad_vals, chg_keys, chg_vals
        # no hint: align the common values of both canonical orders
        prev = self._snapshot
        prev_keys = _ekeys(prev.edges, n) if prev.num_edges else _EMPTY_I
        curr_keys = _ekeys(curr.edges, n) if curr.num_edges else _EMPTY_I
        rm_pos = np.searchsorted(prev_keys, rm_keys)
        if len(rm_keys) and (len(prev_keys) == 0 or not
                             (prev_keys[np.minimum(
                                 rm_pos, len(prev_keys) - 1)]
                              == rm_keys).all()):
            raise _Inconsistent
        ad_pos = np.searchsorted(curr_keys, ad_keys)
        if len(ad_keys) and (len(curr_keys) == 0 or not
                             (curr_keys[np.minimum(
                                 ad_pos, len(curr_keys) - 1)]
                              == ad_keys).all()):
            raise _Inconsistent
        common_prev = prev.values
        if len(rm_pos):
            keep = np.ones(prev.num_edges, dtype=bool)
            keep[rm_pos] = False
            common_prev = prev.values[keep]
        if len(ad_pos):
            keep_curr = np.ones(curr.num_edges, dtype=bool)
            keep_curr[ad_pos] = False
            common_curr = curr.values[keep_curr]
        else:
            keep_curr = None
            common_curr = curr.values
        if len(common_prev) != len(common_curr):
            raise _Inconsistent
        changed = common_prev != common_curr
        if not changed.any():
            return curr.values[ad_pos], _EMPTY_I, _EMPTY_F
        chg_pos = np.flatnonzero(keep_curr)[changed] \
            if keep_curr is not None else np.flatnonzero(changed)
        return (curr.values[ad_pos], curr_keys[chg_pos],
                curr.values[chg_pos])

    def _apply(self, curr: GraphSnapshot, diff: SnapshotDiff,
               removed: np.ndarray, added: np.ndarray) -> None:
        n = self._n
        rm_keys = np.sort(_ekeys(removed, n)) if len(removed) \
            else _EMPTY_I
        if len(added):
            ad_raw = _ekeys(added, n)
            ad_order = np.argsort(ad_raw, kind="stable")
            ad_keys = ad_raw[ad_order]
            if len(ad_keys) > 1 and not (np.diff(ad_keys) > 0).all():
                raise _Inconsistent
        else:
            ad_order = _EMPTY_I
            ad_keys = _EMPTY_I

        ad_vals, chg_keys, chg_vals = self._changed_values(
            curr, diff, rm_keys, ad_keys, ad_order)

        # -- 1. degree deltas: touched endpoints only ---------------------------
        kb = self.backend
        if len(removed):
            self._row_nnz -= kb.degree_counts(removed[:, 0], n)
            self._col_nnz -= kb.degree_counts(removed[:, 1], n)
        if len(added):
            self._row_nnz += kb.degree_counts(added[:, 0], n)
            self._col_nnz += kb.degree_counts(added[:, 1], n)
        neighbors = np.maximum(self._row_nnz, self._col_nnz)
        deg_changed = neighbors != self._neighbors
        self._neighbors = neighbors
        any_deg = bool(deg_changed.any())
        if any_deg:
            self._dinv[deg_changed] = \
                1.0 / np.sqrt(1.0 + neighbors[deg_changed])

        # -- 2. split diagonal from off-diagonal work ---------------------------
        # A self-loop shares its Ã entry with the identity diagonal, so
        # diagonal adds/removes are weight updates, not structural ones.
        def _dmask(keys: np.ndarray) -> np.ndarray:
            return keys % np.int64(n + 1) == 0

        rm_d = _dmask(rm_keys) if len(rm_keys) else None
        ad_d = _dmask(ad_keys) if len(ad_keys) else None
        chg_d = _dmask(chg_keys) if len(chg_keys) else None
        rm_off_keys = rm_keys[~rm_d] if rm_d is not None else _EMPTY_I
        ad_off_keys = ad_keys[~ad_d] if ad_d is not None else _EMPTY_I
        rm_loops = int(rm_d.sum()) if rm_d is not None else 0
        ad_loops = int(ad_d.sum()) if ad_d is not None else 0

        # -- 3. structural splice (shared masks across the arrays) --------------
        keys, w, data, cols = self._keys, self._w, self._data, self._cols
        structural = bool(len(rm_off_keys) or len(ad_off_keys))
        new_pos = _EMPTY_I
        if structural:
            if len(rm_off_keys):
                pos = np.searchsorted(keys, rm_off_keys)
                if not (keys[np.minimum(pos, len(keys) - 1)]
                        == rm_off_keys).all():
                    raise _Inconsistent
                self._row_counts -= kb.degree_counts(rm_off_keys // n, n)
                keys, w, data, cols = kb.splice_delete(
                    (keys, w, data, cols), pos)
            if len(ad_off_keys):
                ins = np.searchsorted(keys, ad_off_keys)
                present = ins < len(keys)
                if present.any() and \
                        (keys[np.minimum(ins, len(keys) - 1)][present]
                         == ad_off_keys[present]).any():
                    raise _Inconsistent
                ad_rows = ad_off_keys // n
                self._row_counts += kb.degree_counts(ad_rows, n)
                ad_off_vals = ad_vals[~ad_d] if ad_d is not None \
                    else _EMPTY_F
                (keys, w, data, cols), new_pos = kb.splice_insert(
                    (keys, w, data, cols), ins,
                    (ad_off_keys, ad_off_vals,
                     np.zeros(len(ad_off_keys)),
                     ad_off_keys - ad_rows * n))
            self._keys, self._w, self._data, self._cols = \
                keys, w, data, cols
            self._rebuild_indptr()

        # the structural invariant: nnz(A+I) = nnz(A) + N − #self-loops
        loops = self._num_loops - rm_loops + ad_loops
        if len(keys) != curr.num_edges + n - loops:
            raise _Inconsistent

        # -- 4. targeted weight writes ------------------------------------------
        recompute = [new_pos] if len(new_pos) else []
        upd_keys = []
        upd_vals = []
        if rm_loops:
            # the self-loop is gone; the identity contribution remains
            upd_keys.append(rm_keys[rm_d])
            upd_vals.append(np.ones(rm_loops))
        if ad_loops:
            upd_keys.append(ad_keys[ad_d])
            upd_vals.append(ad_vals[ad_d] + 1.0)
        if chg_d is not None:
            if chg_d.any():
                upd_keys.append(chg_keys[chg_d])
                upd_vals.append(chg_vals[chg_d] + 1.0)
            if (~chg_d).any():
                upd_keys.append(chg_keys[~chg_d])
                upd_vals.append(chg_vals[~chg_d])
        if upd_keys:
            uk = np.concatenate(upd_keys)
            pos = np.searchsorted(keys, uk)
            if not (keys[np.minimum(pos, len(keys) - 1)] == uk).all():
                raise _Inconsistent
            w[pos] = np.concatenate(upd_vals)
            recompute.append(pos)

        # -- 5. rescale only the affected entries -------------------------------
        pieces = recompute
        if any_deg:
            # all entries in a changed-degree vertex's rows (indptr
            # ranges, O(output)) and columns (one index-array gather)
            verts = np.flatnonzero(deg_changed)
            pieces = pieces + [
                _range_positions(self._indptr[verts],
                                 self._row_counts[verts]),
                np.flatnonzero(deg_changed[cols])]
        if pieces:
            pos = pieces[0] if len(pieces) == 1 else np.concatenate(pieces)
            if len(pos):
                kb.rescale(data, w, cols, self._indptr, pos, self._dinv)

        # -- 6. commit the resident edge bookkeeping ----------------------------
        self._edge_count = curr.num_edges
        self._mix_acc ^= _mix(rm_keys) ^ _mix(ad_keys)
        self._num_loops = loops
