"""Dynamic-graph substrate: snapshots, DTDGs, Laplacians, the
graph-difference encoding, generators and calibrated datasets."""

from repro.graph.snapshot import GraphSnapshot, canonical_edges
from repro.graph.dtdg import DTDG, DTDGStats
from repro.graph.laplacian import laplacian_from_adjacency, normalized_laplacian
from repro.graph.inc_laplacian import LaplacianMaintainer
from repro.graph.diff import (DiffDecoder, SnapshotDiff, apply_diff,
                              diff_snapshots, encode_sequence,
                              sequence_transfer_stats,
                              split_diff_by_blocks)
from repro.graph.traversal import undirected_distances
from repro.graph.generators import evolving_dtdg, random_dtdg, sample_edges
from repro.graph.datasets import DATASETS, DatasetSpec, load_dataset
from repro.graph.amlsim import AMLSimConfig, AMLSimResult, generate_amlsim
from repro.graph.io import load_dtdg, save_dtdg

__all__ = [
    "GraphSnapshot", "canonical_edges",
    "DTDG", "DTDGStats",
    "normalized_laplacian", "laplacian_from_adjacency",
    "LaplacianMaintainer",
    "SnapshotDiff", "diff_snapshots", "apply_diff", "encode_sequence",
    "DiffDecoder", "sequence_transfer_stats", "split_diff_by_blocks",
    "undirected_distances",
    "random_dtdg", "evolving_dtdg", "sample_edges",
    "DATASETS", "DatasetSpec", "load_dataset",
    "AMLSimConfig", "AMLSimResult", "generate_amlsim",
    "save_dtdg", "load_dtdg",
]
