"""Experiment driver shared by the table/figure benchmarks.

Runs one (model, dataset, P, …) configuration through the distributed
trainer on a simulated cluster and returns the epoch's
:class:`~repro.train.metrics.EpochResult` — or ``None`` when the
configuration runs out of simulated GPU memory (the paper's blank "did
not run" entries).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.cluster import GIB, Cluster
from repro.errors import DeviceOOM
from repro.graph.dtdg import DTDG
from repro.models import build_model
from repro.train import (DistConfig, DistributedTrainer, LinkPredictionTask,
                         EpochResult)

__all__ = ["run_point", "speedup_series", "PointSpec", "cached_point"]


@dataclass(frozen=True)
class PointSpec:
    """One experiment point in a sweep.

    ``spec_overrides`` carries the per-workload hardware calibration
    (see :func:`repro.bench.workloads.calibrated_overrides`).  When
    ``tune_blocks`` is set, the harness doubles the checkpoint block
    count on OOM until the configuration fits — the paper's §3.1 tuning
    procedure ("we tune the parameter … while ensuring that the GPU
    memory usage does not exceed the available memory").
    """

    model: str
    num_ranks: int
    use_gd: bool = True
    num_blocks: int = 4
    partitioning: str = "snapshot"
    vertex_method: str = "hypergraph"
    group_size: int = 1
    spec_overrides: tuple = ()
    tune_blocks: bool = True
    theta: float = 0.1
    epochs: int = 1
    seed: int = 0


def _try_run(dtdg: DTDG, spec: PointSpec,
             num_blocks: int) -> EpochResult | None:
    model = build_model(spec.model, in_features=dtdg.feature_dim,
                        seed=spec.seed)
    task = LinkPredictionTask(dtdg, embed_dim=model.embed_dim,
                              theta=spec.theta, seed=spec.seed)
    cluster = Cluster.of_size(spec.num_ranks, **dict(spec.spec_overrides))
    config = DistConfig(
        num_blocks=num_blocks,
        use_graph_difference=spec.use_gd,
        partitioning=spec.partitioning,
        vertex_method=spec.vertex_method,
        group_size=spec.group_size,
        seed=spec.seed,
    )
    try:
        trainer = DistributedTrainer(model, dtdg, task, cluster, config)
        results = trainer.fit(spec.epochs)
    except DeviceOOM:
        return None
    # paper measures per-epoch time averaged over epochs
    last = results[-1]
    if spec.epochs > 1:
        avg = results[0].breakdown
        for r in results[1:]:
            avg = avg + r.breakdown
        last.breakdown = avg.scaled(1.0 / spec.epochs)
    return last


def run_point(dtdg: DTDG, spec: PointSpec) -> EpochResult | None:
    """Execute one configuration; ``None`` means simulated OOM (DNR).

    The starting block count is capped at ``T/P`` so every rank owns at
    least one timestep per block (larger P ⇒ fewer, larger blocks — the
    same direction the paper tunes ``nb``); OOM retries then double the
    block count, trading time for memory as §3.1 describes.
    """
    train_t = max(dtdg.num_timesteps - 1, 1)
    nb = max(1, min(spec.num_blocks, train_t // max(spec.num_ranks, 1)))
    while True:
        result = _try_run(dtdg, spec, nb)
        if result is not None or not spec.tune_blocks or nb >= train_t:
            return result
        nb = min(nb * 2, train_t)


@lru_cache(maxsize=None)
def cached_point(dataset: str, model: str, num_ranks: int,
                 use_gd: bool = True, num_blocks: int = 4,
                 tune_blocks: bool = True,
                 memory_headroom: float = 2.0,
                 seed: int = 0) -> EpochResult | None:
    """Memoized calibrated snapshot-partitioning point.

    Fig. 4 (Base vs GD) and Fig. 5 (strong scaling with GD) share the
    same GD sweep; the cache makes the second figure free.
    """
    from repro.bench.workloads import bench_dtdg, calibrated_overrides
    dtdg = bench_dtdg(dataset, model, seed)
    overrides = tuple(sorted(calibrated_overrides(
        dataset, model, seed, memory_headroom=memory_headroom).items()))
    return run_point(dtdg, PointSpec(
        model=model, num_ranks=num_ranks, use_gd=use_gd,
        num_blocks=num_blocks, tune_blocks=tune_blocks,
        spec_overrides=overrides, seed=seed))


def speedup_series(times_ms: dict[int, float | None]) -> dict[int, float]:
    """Paper Fig. 5 convention: speedup relative to P=1; when P=1 did not
    run, the smallest P that ran becomes the reference with speedup = P."""
    ran = {p: t for p, t in times_ms.items() if t is not None}
    if not ran:
        return {}
    ref_p = min(ran)
    ref_t = ran[ref_p]
    return {p: ref_p * ref_t / t for p, t in sorted(ran.items())}
