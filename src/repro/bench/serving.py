"""Serving workload: replay an AML-Sim event stream against the server.

The replay turns a generated AML-Sim timeline back into the event
stream a live system would have observed (:func:`events_between`),
splits each timestep transition into micro-batches of edge events, and
drives two identically configured :class:`~repro.serve.server.ModelServer`
instances through it — one serving incrementally from the embedding
cache, one recomputing every row on each refresh.  Between event batches
it fires link-prediction and fraud-score queries; timestep boundaries
advance the temporal carry on both servers.

Reported: queries/sec, p50/p99 latency, cache hit rate, and the
incremental-vs-full throughput speedup — written through the standard
reporting pipeline into ``results/``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.bench.reporting import render_table, write_bench_json, write_report
from repro.graph.amlsim import AMLSimConfig, generate_amlsim
from repro.graph.dtdg import DTDG
from repro.models import build_model
from repro.models.base import DynamicGNN
from repro.nn.linear import Linear
from repro.obs import Telemetry
from repro.serve.ingest import EdgeEvent, events_between
from repro.serve.metrics import ServerStats
from repro.serve.server import ModelServer

__all__ = ["ServingWorkloadConfig", "ServingBenchResult",
           "build_event_schedule", "build_query_plan", "replay_stream",
           "run_serving_benchmark"]


@dataclass(frozen=True)
class ServingWorkloadConfig:
    """Knobs of the serving replay.

    The AML-Sim parameters deliberately use a flatter activity skew and
    high partner persistence than the training benches: a serving-tier
    delta is small relative to the resident graph, which is exactly the
    regime incremental inference targets (InstantGNN's premise).
    """

    model: str = "cdgcn"
    num_accounts: int = 3000
    num_timesteps: int = 16
    background_per_step: int = 3000
    partner_persistence: float = 0.95
    activity_skew: float = 0.4
    warmup_timesteps: int = 6
    event_batches_per_step: int = 12
    queries_per_batch: int = 24
    max_batch_size: int = 64
    flush_latency_ms: float = 50.0
    hidden: int = 16
    embed_dim: int = 16
    seed: int = 0

    def amlsim(self) -> AMLSimConfig:
        return AMLSimConfig(
            num_accounts=self.num_accounts,
            num_timesteps=self.num_timesteps,
            background_per_step=self.background_per_step,
            partner_persistence=self.partner_persistence,
            activity_skew=self.activity_skew,
            seed=self.seed)


@dataclass(frozen=True)
class ServingBenchResult:
    """Outcome of one incremental-vs-full replay."""

    incremental: ServerStats
    full: ServerStats
    incremental_wall_s: float
    full_wall_s: float
    num_queries: int
    num_events: int
    max_abs_divergence: float  # embeddings: incremental vs full recompute
    # per-stage wall seconds from the traced third replay ({span name:
    # seconds}; None when the traced replay was skipped)
    stage_seconds: dict | None = None

    @property
    def throughput_speedup(self) -> float:
        """Incremental queries/sec over full-recompute queries/sec.

        Both replays answer the same query stream, so this equals the
        wall-time ratio of the two replays."""
        return self.full_wall_s / self.incremental_wall_s


def build_event_schedule(dtdg: DTDG, start: int,
                         batches_per_step: int) -> list[list[list[EdgeEvent]]]:
    """Micro-batched event stream replaying ``dtdg`` from ``start``.

    Returns one entry per streamed timestep; each entry is a list of
    event batches whose concatenation transforms snapshot ``t-1`` into
    snapshot ``t``.
    """
    schedule = []
    for t in range(start, dtdg.num_timesteps):
        events = events_between(dtdg[t - 1], dtdg[t])
        chunk = max(1, -(-len(events) // batches_per_step))
        schedule.append([events[i:i + chunk]
                         for i in range(0, len(events), chunk)] or [[]])
    return schedule


def build_query_plan(dtdg: DTDG, start: int, schedule,
                     queries_per_batch: int, seed: int) -> list[list[list]]:
    """Deterministic (kind, payload) queries per event batch."""
    rng = np.random.default_rng(seed + 1)
    n = dtdg.num_vertices
    plan = []
    for step, batches in zip(range(start, dtdg.num_timesteps), schedule):
        snap = dtdg[step]
        per_step = []
        for _ in batches:
            queries = []
            for q in range(queries_per_batch):
                if q % 2 == 0 and snap.num_edges:
                    # half positives from the live graph, half random
                    if rng.random() < 0.5:
                        u, v = snap.edges[rng.integers(snap.num_edges)]
                    else:
                        u, v = rng.integers(n), rng.integers(n)
                    queries.append(("link", (int(u), int(v))))
                else:
                    queries.append(("fraud", (int(rng.integers(n)),)))
            per_step.append(queries)
        plan.append(per_step)
    return plan


def replay_stream(server: ModelServer, schedule, plan) -> float:
    """Drive one server through the stream; returns wall seconds."""
    t0 = time.perf_counter()
    for batches, step_queries in zip(schedule, plan):
        server.advance_time()
        for events, queries in zip(batches, step_queries):
            if events:
                server.ingest_events(events)
            for kind, payload in queries:
                if kind == "link":
                    server.submit_link(*payload)
                else:
                    server.submit_fraud(*payload)
            server.flush()
    server.drain()
    return time.perf_counter() - t0


def _fraud_head(model: DynamicGNN, seed: int) -> Linear:
    return Linear(model.embed_dim, 2, np.random.default_rng(seed + 7))


def run_serving_benchmark(config: ServingWorkloadConfig | None = None,
                          report_name: str | None = "serving_throughput"
                          ) -> ServingBenchResult:
    """Replay the stream against incremental and full-recompute servers.

    Both servers receive byte-identical event and query streams; the
    result captures throughput, latency percentiles, cache economics,
    and the final-embedding divergence (which must be ~0: incremental
    serving is exact).
    """
    config = config or ServingWorkloadConfig()
    sim = generate_amlsim(config.amlsim())
    dtdg = sim.dtdg
    start = config.warmup_timesteps
    if not 1 <= start < dtdg.num_timesteps:
        raise ValueError("warmup_timesteps must leave timesteps to stream")

    schedule = build_event_schedule(dtdg, start, config.event_batches_per_step)
    plan = build_query_plan(dtdg, start, schedule, config.queries_per_batch,
                            config.seed)
    num_events = sum(len(ev) for batches in schedule for ev in batches)

    def boot(incremental: bool, tracing: bool = False) -> ModelServer:
        model = build_model(config.model, in_features=2,
                            hidden=config.hidden,
                            embed_dim=config.embed_dim, seed=config.seed)
        server = ModelServer(
            model, dtdg[0], fraud_head=_fraud_head(model, config.seed),
            max_batch_size=config.max_batch_size,
            flush_latency_ms=config.flush_latency_ms,
            incremental=incremental,
            telemetry=Telemetry(tracing=True) if tracing else None)
        for t in range(1, start):
            server.advance_time(dtdg[t])
        return server

    srv_inc = boot(incremental=True)
    srv_full = boot(incremental=False)
    wall_inc = replay_stream(srv_inc, schedule, plan)
    wall_full = replay_stream(srv_full, schedule, plan)
    divergence = float(np.abs(srv_inc.engine.embeddings
                              - srv_full.engine.embeddings).max())

    # a third, span-traced replay answers "where do the incremental
    # milliseconds go?" — run separately so the A/B walls above stay
    # untraced (the tracing-off overhead guard's contract)
    srv_traced = boot(incremental=True, tracing=True)
    replay_stream(srv_traced, schedule, plan)
    stage_seconds = srv_traced.telemetry.stage_seconds()

    result = ServingBenchResult(
        incremental=srv_inc.stats(), full=srv_full.stats(),
        incremental_wall_s=wall_inc, full_wall_s=wall_full,
        num_queries=srv_inc.counters.queries_completed,
        num_events=num_events, max_abs_divergence=divergence,
        stage_seconds=stage_seconds)

    if report_name:
        rows = []
        for label, stats, wall in (
                ("incremental (k-hop cache)", result.incremental, wall_inc),
                ("full recompute", result.full, wall_full)):
            rows.append((label, stats.counters.queries_completed,
                         round(stats.counters.queries_completed / wall, 1),
                         stats.counters.events_ingested,
                         round(stats.latency_p50_ms, 3),
                         round(stats.latency_p99_ms, 3),
                         stats.counters.rows_recomputed,
                         "-" if math.isnan(stats.counters.cache_hit_rate)
                         else round(stats.counters.cache_hit_rate, 3)))
        table = render_table(
            ["serving mode", "queries", "qps", "events", "p50 ms", "p99 ms",
             "rows recomputed", "cache hit rate"],
            rows,
            title=(f"Serving replay: AML-Sim {config.model} "
                   f"N={config.num_accounts} "
                   f"({dtdg.num_timesteps - start} streamed timesteps; "
                   f"speedup {result.throughput_speedup:.2f}x, "
                   f"max divergence {divergence:.2e})"))
        reg = srv_traced.telemetry.registry
        stage_rows = [(name, round(seconds * 1e3, 3),
                       int(reg.value("span_calls_total", span=name)))
                      for name, seconds in sorted(
                          stage_seconds.items(),
                          key=lambda kv: -kv[1])]
        stage_table = render_table(
            ["stage (span)", "total ms", "calls"], stage_rows,
            title="Incremental replay stage breakdown (traced rerun)")
        write_report(report_name, table + "\n" + stage_table)
        write_bench_json("serving", {
            "workload": {
                "model": config.model,
                "num_accounts": config.num_accounts,
                "streamed_timesteps": dtdg.num_timesteps - start,
                "num_events": num_events,
                "num_queries": result.num_queries,
            },
            "throughput_speedup": round(result.throughput_speedup, 3),
            "max_abs_divergence": divergence,
            "stages_ms": {name: round(seconds * 1e3, 3)
                          for name, seconds in sorted(
                              stage_seconds.items())},
            "incremental": {
                "qps": round(result.num_queries / wall_inc, 1),
                "wall_s": round(wall_inc, 4),
                "p50_ms": round(result.incremental.latency_p50_ms, 4),
                "p95_ms": round(result.incremental.latency_p95_ms, 4),
                "p99_ms": round(result.incremental.latency_p99_ms, 4),
                "rows_recomputed":
                    result.incremental.counters.rows_recomputed,
                "cache_hit_rate":
                    round(result.incremental.counters.cache_hit_rate, 4),
            },
            "full_recompute": {
                "qps": round(result.num_queries / wall_full, 1),
                "wall_s": round(wall_full, 4),
                "p50_ms": round(result.full.latency_p50_ms, 4),
                "p95_ms": round(result.full.latency_p95_ms, 4),
                "p99_ms": round(result.full.latency_p99_ms, 4),
                "rows_recomputed": result.full.counters.rows_recomputed,
            },
        })
    return result
