"""Resilience workload: availability and recovery under a fault storm.

One byte-identical AML-Sim stream is replayed through four exec-tier
configurations, all on the deterministic simulated backend so the
numbers measure the *protocol*, not the host:

* **baseline** — fault-free, unreplicated: the oracle and the healthy
  wall-clock reference.
* **unprotected** — the seeded storm (drops, delays, duplicates,
  corruption, one scheduled primary crash) against an unreplicated
  tier: retries absorb the wire noise, but the crash takes the shard
  down for good and every query touching it is shed.
* **degraded** — the same storm against an unreplicated tier with
  ``max_staleness`` set: the dead shard keeps answering from its last
  committed boundary's cached rows (stamped stale) until the bound is
  exceeded, then sheds.
* **replicated** — the same storm with 2-way replicas: writes fan to
  both, reads fail over, and the replay completes bit-exact against
  the baseline with full availability.

The storm is seeded and drop/timeout outcomes are injected without
real waiting, so every availability count is deterministic; the
guarded ``availability_speedup`` (replicated over unprotected) is a
protocol property, not a timing artifact.  A separate micro-probe
measures failover latency: the wall time of the first query answered
after the primary of its shard is hard-killed, next to the healthy
query time.  Results land in ``results/resilience.txt`` and
``BENCH_resilience.json``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from repro.bench.reporting import render_table, write_bench_json, \
    write_report
from repro.bench.serving import build_event_schedule, build_query_plan
from repro.exec import ExecRouter, FaultPlan, FaultSpec, RetryPolicy
from repro.graph.amlsim import AMLSimConfig, generate_amlsim
from repro.models import build_model
from repro.nn.linear import Linear

__all__ = ["ResilienceWorkloadConfig", "ResilienceModeResult",
           "ResilienceBenchResult", "run_resilience_benchmark"]


@dataclass(frozen=True)
class ResilienceWorkloadConfig:
    """Knobs of the chaos replay (simulated backend throughout)."""

    model: str = "cdgcn"
    num_accounts: int = 800
    num_timesteps: int = 10
    background_per_step: int = 600
    partner_persistence: float = 0.9
    activity_skew: float = 0.0
    num_branches: int = 4
    branch_locality: float = 0.9
    warmup_timesteps: int = 2
    event_batches_per_step: int = 2
    queries_per_batch: int = 16
    max_batch_size: int = 128
    flush_latency_ms: float = 50.0
    hidden: int = 16
    embed_dim: int = 16
    num_shards: int = 2
    replicas: int = 2
    max_staleness: int = 4
    # the storm: background rates plus one scheduled primary crash
    drop_rate: float = 0.03
    delay_rate: float = 0.03
    delay_s: float = 2e-4
    duplicate_rate: float = 0.05
    corrupt_rate: float = 0.05
    crash_call_index: int = 6       # shard 0, replica 0's Nth apply_delta
    seed: int = 0

    @classmethod
    def smoke(cls) -> "ResilienceWorkloadConfig":
        """CI-sized storm: same shape and crash point, smaller graph."""
        return cls(num_accounts=400, background_per_step=300,
                   num_timesteps=8)

    def amlsim(self) -> AMLSimConfig:
        return AMLSimConfig(
            num_accounts=self.num_accounts,
            num_timesteps=self.num_timesteps,
            background_per_step=self.background_per_step,
            partner_persistence=self.partner_persistence,
            activity_skew=self.activity_skew,
            num_branches=self.num_branches,
            branch_locality=self.branch_locality,
            seed=self.seed)

    def storm(self) -> FaultPlan:
        """A fresh plan per replay so injection counts are per-mode."""
        return FaultPlan(
            seed=self.seed,
            drop_rate=self.drop_rate, delay_rate=self.delay_rate,
            delay_s=self.delay_s,
            duplicate_rate=self.duplicate_rate,
            corrupt_rate=self.corrupt_rate,
            schedule=(FaultSpec("crash", verb="apply_delta", shard=0,
                                replica=0,
                                call_index=self.crash_call_index),))


@dataclass(frozen=True)
class ResilienceModeResult:
    """One configuration's outcome under (or without) the storm."""

    mode: str
    submitted: int
    completed: int
    shed: int
    degraded: int                  # answered stale from cached rows
    rpc_retries: int
    failovers: int
    replica_deaths: int
    faults_injected: int
    ops_failed: int                # ingest/advance/flush calls that raised
    wall_s: float

    @property
    def availability(self) -> float:
        return self.completed / self.submitted if self.submitted else 0.0


@dataclass(frozen=True)
class ResilienceBenchResult:
    """Outcome of the four-mode chaos sweep."""

    modes: tuple
    replicated_divergence: float   # vs the fault-free baseline, bit-exact
    healthy_query_ms: float
    failover_query_ms: float

    def mode(self, name: str) -> ResilienceModeResult:
        for m in self.modes:
            if m.mode == name:
                return m
        raise KeyError(f"no mode {name!r}")

    @property
    def availability_speedup(self) -> float:
        """Guarded: availability bought by replication + failover under
        the identical storm (deterministic seeded counts)."""
        return (self.mode("replicated").availability
                / max(self.mode("unprotected").availability, 1e-9))


def _chaos_replay(router: ExecRouter, schedule, plan) -> tuple:
    """Drive the stream, tolerating tier failures: a raising ingest,
    advance or flush is counted and the stream continues — exactly what
    a supervisor loop would do.  Returns (wall_s, ops_failed)."""
    failed = 0
    t0 = time.perf_counter()
    for batches, step_queries in zip(schedule, plan):
        try:
            router.advance_time()
        except Exception:
            failed += 1
        for events, queries in zip(batches, step_queries):
            if events:
                try:
                    router.ingest_events(events)
                except Exception:
                    failed += 1
            for kind, payload in queries:
                if kind == "link":
                    router.submit_link(*payload)
                else:
                    router.submit_fraud(*payload)
            try:
                router.flush()
            except Exception:
                failed += 1
    try:
        router.drain()
    except Exception:
        failed += 1
    return time.perf_counter() - t0, failed


def run_resilience_benchmark(config: ResilienceWorkloadConfig | None = None,
                             report_name: str | None = "resilience"
                             ) -> ResilienceBenchResult:
    """Replay the stream through every resilience configuration."""
    if config is None:
        config = ResilienceWorkloadConfig.smoke() \
            if os.environ.get("REPRO_SMOKE") else ResilienceWorkloadConfig()
    sim = generate_amlsim(config.amlsim())
    dtdg = sim.dtdg
    start = config.warmup_timesteps
    if not 1 <= start < dtdg.num_timesteps:
        raise ValueError("warmup_timesteps must leave timesteps to stream")
    schedule = build_event_schedule(dtdg, start,
                                    config.event_batches_per_step)
    plan = build_query_plan(dtdg, start, schedule,
                            config.queries_per_batch, config.seed)

    def boot(**kwargs) -> ExecRouter:
        model = build_model(config.model, in_features=2,
                            hidden=config.hidden,
                            embed_dim=config.embed_dim, seed=config.seed)
        fraud = Linear(config.embed_dim, 2,
                       np.random.default_rng(config.seed + 7))
        router = ExecRouter(model, dtdg[0], backend="simulated",
                            num_shards=config.num_shards, fraud_head=fraud,
                            max_batch_size=config.max_batch_size,
                            flush_latency_ms=config.flush_latency_ms,
                            retry=RetryPolicy(max_attempts=6,
                                              deadline_s=10.0),
                            **kwargs)
        for t in range(1, start):
            router.advance_time(dtdg[t])
        return router

    def run(mode: str, fault_plan, **kwargs) -> tuple:
        router = boot(fault_plan=fault_plan, **kwargs)
        wall, failed = _chaos_replay(router, schedule, plan)
        c = router.counters
        embeddings = None
        if mode in ("baseline", "replicated"):
            embeddings = router.gathered_embeddings()
        router.close()
        return ResilienceModeResult(
            mode=mode, submitted=c.queries_submitted,
            completed=c.queries_completed, shed=c.queries_shed,
            degraded=c.degraded_queries, rpc_retries=c.rpc_retries,
            failovers=c.failovers, replica_deaths=c.replica_deaths,
            faults_injected=(fault_plan.total_injected
                             if fault_plan else 0),
            ops_failed=failed, wall_s=wall), embeddings

    baseline, oracle = run("baseline", None)
    unprotected, _ = run("unprotected", config.storm())
    degraded, _ = run("degraded", config.storm(),
                      max_staleness=config.max_staleness)
    replicated, emb = run("replicated", config.storm(),
                          replicas=config.replicas)
    divergence = float(np.abs(emb - oracle).max())

    # failover latency micro-probe: healthy query vs the first query
    # answered after its shard's primary is hard-killed
    probe = boot(replicas=config.replicas)
    shard0_vertex = int(np.flatnonzero(probe.plan.owner == 0)[0])
    t0 = time.perf_counter()
    probe.submit_fraud(shard0_vertex)
    probe.drain()
    healthy_ms = (time.perf_counter() - t0) * 1e3
    probe.channels[0].replicas[0].debug_exit()
    t0 = time.perf_counter()
    probe.submit_fraud(shard0_vertex)
    probe.drain()
    failover_ms = (time.perf_counter() - t0) * 1e3
    probe.close()

    result = ResilienceBenchResult(
        modes=(baseline, unprotected, degraded, replicated),
        replicated_divergence=divergence,
        healthy_query_ms=healthy_ms, failover_query_ms=failover_ms)

    if report_name:
        rows = [(m.mode, round(m.availability, 4), m.submitted,
                 m.completed, m.shed, m.degraded, m.rpc_retries,
                 m.failovers, m.faults_injected, m.ops_failed,
                 round(m.wall_s, 3))
                for m in result.modes]
        table = render_table(
            ["mode", "availability", "submitted", "answered", "shed",
             "stale", "retries", "failovers", "faults", "failed ops",
             "wall s"],
            rows,
            title=(f"Resilience under a seeded fault storm: AML-Sim "
                   f"{config.model} N={config.num_accounts} "
                   f"({dtdg.num_timesteps - start} streamed timesteps; "
                   f"availability x{result.availability_speedup:.2f} "
                   f"via {config.replicas}-way replicas, replicated "
                   f"divergence {result.replicated_divergence:.1e}, "
                   f"failover {result.failover_query_ms:.2f} ms vs "
                   f"healthy {result.healthy_query_ms:.2f} ms)"))
        write_report(report_name, table)
        write_bench_json("resilience", {
            "workload": {
                "model": config.model,
                "num_accounts": config.num_accounts,
                "streamed_timesteps": dtdg.num_timesteps - start,
                "num_shards": config.num_shards,
                "replicas": config.replicas,
                "max_staleness": config.max_staleness,
                "storm": {
                    "drop_rate": config.drop_rate,
                    "delay_rate": config.delay_rate,
                    "duplicate_rate": config.duplicate_rate,
                    "corrupt_rate": config.corrupt_rate,
                    "crash_call_index": config.crash_call_index,
                    "seed": config.seed,
                },
            },
            # guarded: deterministic protocol property, not timing
            "availability_speedup": round(result.availability_speedup, 3),
            "replicated_divergence": result.replicated_divergence,
            # unguarded wall-clock observations
            "healthy_query_ms": round(result.healthy_query_ms, 3),
            "failover_query_ms": round(result.failover_query_ms, 3),
            "modes": {
                m.mode: {
                    "availability": round(m.availability, 4),
                    "submitted": m.submitted,
                    "completed": m.completed,
                    "shed": m.shed,
                    "degraded_answers": m.degraded,
                    "rpc_retries": m.rpc_retries,
                    "failovers": m.failovers,
                    "replica_deaths": m.replica_deaths,
                    "faults_injected": m.faults_injected,
                    "ops_failed": m.ops_failed,
                    "wall_s": round(m.wall_s, 4),
                } for m in result.modes
            },
        })
    return result
