"""Storage-tier workload: delta-log footprint and time-travel latency.

Encodes a generated AML-Sim timeline into the temporal graph store and
measures the two claims the storage tier makes:

* **footprint** — the delta-log WAL is several times smaller than
  storing every snapshot in full (the §3.2 graph-difference insight
  applied to durability: consecutive snapshots overlap, so the log
  keeps removed/added indices plus only the *changed* values);
* **time travel** — materializing the last timestep from the nearest
  compacted base is several times faster than replaying the whole log
  from t=0 (compaction bounds replay depth by the base interval).

Exactness is checked inline: every ``materialize(t)`` must equal the
in-memory DTDG snapshot.  Results land in ``results/store.txt`` and
``BENCH_store.json`` through the standard reporting pipeline.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from dataclasses import dataclass

import numpy as np

from repro.bench.reporting import render_table, write_bench_json, write_report
from repro.graph.amlsim import AMLSimConfig, generate_amlsim
from repro.store import GraphStore
from repro.store.codec import snapshot_record_nbytes

__all__ = ["StoreWorkloadConfig", "StoreBenchResult",
           "run_store_benchmark"]


@dataclass(frozen=True)
class StoreWorkloadConfig:
    """Knobs of the storage workload.

    The AML-Sim parameters mirror the serving replay's regime (high
    partner persistence → heavy snapshot overlap), which is the regime
    a transaction store lives in.
    """

    num_accounts: int = 2500
    num_timesteps: int = 32
    background_per_step: int = 2600
    partner_persistence: float = 0.95
    activity_skew: float = 0.4
    base_interval: int = 4
    time_travel_repeats: int = 5
    seed: int = 0

    def amlsim(self) -> AMLSimConfig:
        return AMLSimConfig(
            num_accounts=self.num_accounts,
            num_timesteps=self.num_timesteps,
            background_per_step=self.background_per_step,
            partner_persistence=self.partner_persistence,
            activity_skew=self.activity_skew,
            seed=self.seed)


@dataclass(frozen=True)
class StoreBenchResult:
    """Outcome of one storage-tier measurement."""

    num_timesteps: int
    total_nnz: int
    delta_log_bytes: int          # WAL footprint (authoritative data)
    base_bytes: int               # compacted bases (acceleration only)
    naive_bytes: int              # per-snapshot full records
    replay_exact: bool            # materialize(t) == dtdg[t] for all t
    cold_travel_s: float          # materialize(T-1), no bases
    based_travel_s: float         # materialize(T-1), nearest base
    cold_records_replayed: int
    based_records_replayed: int

    @property
    def storage_ratio(self) -> float:
        """naive / delta-log byte ratio (≥ 1 when snapshots overlap)."""
        return self.naive_bytes / self.delta_log_bytes \
            if self.delta_log_bytes else float("inf")

    @property
    def time_travel_speedup(self) -> float:
        """full-replay / nearest-base materialization time."""
        return self.cold_travel_s / self.based_travel_s \
            if self.based_travel_s else float("inf")


def _median_travel(store: GraphStore, t: int, repeats: int
                   ) -> tuple[float, int]:
    """Median wall seconds (and per-call replayed records) for a cold
    ``replay_to(t)`` — the open/recovery decode path, no warm caches."""
    samples = []
    before = store.records_replayed
    for _ in range(repeats):
        t0 = time.perf_counter()
        store.replay_to(t)
        samples.append(time.perf_counter() - t0)
    replayed = (store.records_replayed - before) // repeats
    return float(np.median(samples)), replayed


def run_store_benchmark(config: StoreWorkloadConfig | None = None,
                        report_name: str | None = "store"
                        ) -> StoreBenchResult:
    """Encode an AML-Sim timeline and measure footprint + time travel."""
    config = config or StoreWorkloadConfig()
    dtdg = generate_amlsim(config.amlsim()).dtdg
    t_last = dtdg.num_timesteps - 1

    workdir = tempfile.mkdtemp(prefix="repro-store-bench-")
    try:
        based = GraphStore.from_dtdg(
            os.path.join(workdir, "based"), dtdg,
            base_interval=config.base_interval, features=False)
        cold = GraphStore.from_dtdg(
            os.path.join(workdir, "cold"), dtdg,
            base_interval=None, features=False)

        replay_exact = all(based.materialize(t, cached=False) == dtdg[t]
                           for t in range(dtdg.num_timesteps))

        naive_bytes = sum(snapshot_record_nbytes(s)
                          for s in dtdg.snapshots)
        cold_s, cold_replayed = _median_travel(
            cold, t_last, config.time_travel_repeats)
        based_s, based_replayed = _median_travel(
            based, t_last, config.time_travel_repeats)

        result = StoreBenchResult(
            num_timesteps=dtdg.num_timesteps,
            total_nnz=dtdg.total_nnz,
            delta_log_bytes=based.wal_nbytes,
            base_bytes=based.base_nbytes,
            naive_bytes=naive_bytes,
            replay_exact=replay_exact,
            cold_travel_s=cold_s,
            based_travel_s=based_s,
            cold_records_replayed=cold_replayed,
            based_records_replayed=based_replayed)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    if report_name:
        rows = [
            ("naive per-snapshot", result.naive_bytes, "-",
             round(result.cold_travel_s * 1e3, 3),
             result.cold_records_replayed),
            (f"delta log + bases (every {config.base_interval})",
             result.delta_log_bytes, result.base_bytes,
             round(result.based_travel_s * 1e3, 3),
             result.based_records_replayed),
        ]
        table = render_table(
            ["storage layout", "data bytes", "base bytes",
             "travel to T-1 (ms)", "records replayed"],
            rows,
            title=(f"Temporal store: AML-Sim N={config.num_accounts} "
                   f"T={config.num_timesteps} "
                   f"(log {result.storage_ratio:.1f}x smaller than "
                   f"naive, time travel {result.time_travel_speedup:.1f}x "
                   f"faster with bases, replay exact: "
                   f"{result.replay_exact})"))
        write_report(report_name, table)
        write_bench_json("store", {
            "workload": {
                "num_accounts": config.num_accounts,
                "num_timesteps": config.num_timesteps,
                "total_nnz": result.total_nnz,
                "base_interval": config.base_interval,
            },
            "delta_log_bytes": result.delta_log_bytes,
            "base_bytes": result.base_bytes,
            "naive_bytes": result.naive_bytes,
            "storage_ratio": round(result.storage_ratio, 3),
            "replay_exact": result.replay_exact,
            "time_travel": {
                "cold_ms": round(result.cold_travel_s * 1e3, 4),
                "based_ms": round(result.based_travel_s * 1e3, 4),
                "speedup": round(result.time_travel_speedup, 3),
                "cold_records_replayed": result.cold_records_replayed,
                "based_records_replayed": result.based_records_replayed,
            },
        })
    return result
