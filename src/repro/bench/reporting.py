"""Fixed-width table rendering and result-file output for the benches."""

from __future__ import annotations

import json
import os
from typing import Iterable, Sequence

__all__ = ["render_table", "write_report", "write_bench_json",
           "results_dir", "fmt"]


def results_dir() -> str:
    """Directory for generated experiment reports (created on demand)."""
    base = os.environ.get("REPRO_RESULTS_DIR",
                          os.path.join(os.getcwd(), "results"))
    os.makedirs(base, exist_ok=True)
    return base


def fmt(value) -> str:
    """Human-friendly cell formatting."""
    if value is None:
        return "DNR"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence], title: str = "") -> str:
    """Render an aligned ASCII table (paper-style rows)."""
    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    for row in str_rows:
        out.append(line(row))
    return "\n".join(out)


def write_report(name: str, text: str) -> str:
    """Write a generated table to ``results/<name>.txt`` and return the
    path; also echoes to stdout so ``pytest -s`` shows it inline."""
    path = os.path.join(results_dir(), f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print(f"\n{text}\n[report written to {path}]")
    return path


def write_bench_json(name: str, payload: dict) -> str:
    """Write a machine-readable bench trajectory file.

    ``BENCH_<name>.json`` lands next to the repo's top-level docs (or in
    ``REPRO_BENCH_DIR``) so external tooling can track headline numbers
    across commits without parsing the human tables in ``results/``.
    """
    base = os.environ.get("REPRO_BENCH_DIR", os.getcwd())
    os.makedirs(base, exist_ok=True)
    path = os.path.join(base, f"BENCH_{name}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[bench json written to {path}]")
    return path
