"""Training-tier benchmark: cross-timestep aggregation reuse.

Four sections, all on AML-Sim workloads:

* **Per-epoch forward A/B** — the :class:`SingleDeviceTrainer` driven
  with ``reuse_aggregation`` on vs the always-full baseline on a dense
  transaction graph (the aggregation-heavy regime where SpMM dominates
  the forward).  Warm epochs are timed: the reuse run memoizes the
  parameter-free first layer across epochs and every checkpoint re-run
  sweep, and patches/falls back per the delta frontier.  TM-GCN and
  EvolveGCN — the models the paper's §6.2 overlap argument names as the
  delta-friendly ones — must clear **≥ 2x**; CD-GCN is reported but its
  per-vertex LSTM floor dominates its forward, so its wall ratio hovers
  near 1 (its aggregation-stage FLOPs still drop like the others').
* **Delta patching micro-bench** — the serving-regime workload (large
  resident graph, tiny per-step deltas, static features): chaining the
  :class:`~repro.train.reuse.AggregationCache` through the timeline's
  GD deltas vs a full SpMM per timestep.
* **Exactness** — per-epoch losses of reuse vs always-full runs for all
  three models on the single-device trainer (the A/B above) and on all
  three :class:`DistributedTrainer` partition modes; max divergence
  must be ≤ 1e-9 (observed: exactly 0 — the reuse layer is
  value-exact by construction).
* **Delta halos** — under vertex and hybrid partitioning the reuse run's
  redistribution/all-gather volume must be *strictly below* the
  always-full run's (receivers mirror remote rows across timesteps, so
  only delta-touched boundary rows move).

Results land in ``results/training.txt`` and ``BENCH_training.json``;
CI's perf guard fails when any recorded ``speedup`` ratio regresses by
more than 20%.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.bench.reporting import render_table, write_bench_json, write_report
from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterSpec
from repro.graph.amlsim import AMLSimConfig, generate_amlsim
from repro.graph.dtdg import DTDG
from repro.models import build_model
from repro.tensor import Tensor
from repro.tensor.sparse import spmm
from repro.train.distributed import DistConfig, DistributedTrainer
from repro.train.preprocess import compute_laplacians_with_diffs
from repro.train.reuse import AggregationCache
from repro.train.tasks import LinkPredictionTask
from repro.train.trainer import SingleDeviceTrainer, TrainerConfig

__all__ = ["TrainingWorkloadConfig", "TrainingBenchResult",
           "run_training_benchmark"]

MODELS = ("tmgcn", "egcn", "cdgcn")


@dataclass(frozen=True)
class TrainingWorkloadConfig:
    """Knobs of the training-reuse bench.

    The A/B workload is a *dense* mature payment graph (avg degree ≈60:
    SpMM carries the forward); the patching workload is the serving
    regime (sparse graph, ~200-edge deltas against a 30k-vertex
    resident — InstantGNN's premise) where the per-timestep frontier
    stays small enough to patch.
    """

    # per-epoch forward A/B workload
    num_accounts: int = 30000
    num_timesteps: int = 10
    background_per_step: int = 2000000
    partner_persistence: float = 0.997
    activity_skew: float = 0.4
    seed: int = 3
    hidden: int = 16
    embed_dim: int = 16
    window: int = 2                  # TM-GCN M-product window
    num_blocks: int = 2              # §3.1 checkpointing on
    epochs: int = 3                  # warm epochs timed (epoch 0 excluded)
    crossover: float = 0.15          # dense graph: cheap fallback bail
    # delta-patching micro-bench workload
    patch_background: int = 600000
    patch_persistence: float = 0.9999
    patch_feature_dim: int = 32
    patch_crossover: float = 0.5
    # distributed exactness/halo workload (small: 3 models × 3 modes)
    div_accounts: int = 300
    div_timesteps: int = 8
    div_background: int = 1200
    div_persistence: float = 0.9
    div_epochs: int = 3
    num_ranks: int = 4

    def amlsim(self) -> AMLSimConfig:
        return AMLSimConfig(
            num_accounts=self.num_accounts,
            num_timesteps=self.num_timesteps,
            background_per_step=self.background_per_step,
            partner_persistence=self.partner_persistence,
            activity_skew=self.activity_skew,
            seed=self.seed)

    def patch_amlsim(self) -> AMLSimConfig:
        return AMLSimConfig(
            num_accounts=self.num_accounts,
            num_timesteps=self.num_timesteps,
            background_per_step=self.patch_background,
            partner_persistence=self.patch_persistence,
            activity_skew=0.2,
            num_fan_out=2, num_fan_in=2, num_cycles=2,
            num_scatter_gather=1,
            seed=self.seed)

    def div_amlsim(self) -> AMLSimConfig:
        return AMLSimConfig(
            num_accounts=self.div_accounts,
            num_timesteps=self.div_timesteps,
            background_per_step=self.div_background,
            partner_persistence=self.div_persistence,
            seed=self.seed + 2)


@dataclass
class TrainingBenchResult:
    """Outcome of the four training-reuse comparisons."""

    # per-model (full_s_per_epoch, reuse_s_per_epoch, loss_divergence)
    forward: dict = field(default_factory=dict)
    # per-model aggregation-stage FLOPs (executed, always-full equivalent)
    agg_flops: dict = field(default_factory=dict)
    # delta patching micro-bench
    patch_full_s: float = 0.0
    patch_reuse_s: float = 0.0
    patch_divergence: float = 0.0
    patch_rows_fraction: float = 0.0
    # distributed exactness + halo volumes per mode
    dist_divergence: dict = field(default_factory=dict)
    halo_volumes: dict = field(default_factory=dict)

    def forward_speedup(self, model: str) -> float:
        full_s, reuse_s, _ = self.forward[model]
        return full_s / reuse_s if reuse_s else float("inf")

    def agg_flop_speedup(self, model: str) -> float:
        executed, full = self.agg_flops[model]
        return full / executed if executed else float("inf")

    @property
    def patch_speedup(self) -> float:
        return self.patch_full_s / self.patch_reuse_s \
            if self.patch_reuse_s else float("inf")

    @property
    def max_divergence(self) -> float:
        parts = [d for _, _, d in self.forward.values()]
        parts += list(self.dist_divergence.values())
        parts.append(self.patch_divergence)
        return max(parts) if parts else 0.0


def _fresh_view(dtdg: DTDG, name: str) -> DTDG:
    """A per-trainer view over shared snapshots (trainers attach their
    own degree features; snapshots themselves are immutable)."""
    return DTDG(list(dtdg.snapshots), name=name)


def _build_trainer(name: str, dtdg: DTDG, config: TrainingWorkloadConfig,
                   reuse: bool) -> SingleDeviceTrainer:
    kwargs = {"window": config.window} if name == "tmgcn" else {}
    model = build_model(name, in_features=2, hidden=config.hidden,
                        embed_dim=config.embed_dim, seed=0, **kwargs)
    view = _fresh_view(dtdg, f"{name}-{'reuse' if reuse else 'full'}")
    task = LinkPredictionTask(view, embed_dim=model.embed_dim, seed=1)
    return SingleDeviceTrainer(
        model, view, task,
        TrainerConfig(num_blocks=config.num_blocks,
                      reuse_aggregation=reuse,
                      reuse_crossover=config.crossover))


def _bench_forward(dtdg: DTDG, config: TrainingWorkloadConfig):
    """Per-epoch forward wall time, reuse vs always-full, per model."""
    forward = {}
    agg = {}
    for name in MODELS:
        runs = {}
        for reuse in (False, True):
            trainer = _build_trainer(name, dtdg, config, reuse)
            results = trainer.fit(config.epochs)
            runs[reuse] = results
            if reuse:
                agg[name] = (
                    sum(r.agg_flops for r in results),
                    sum(r.agg_flops_full_equivalent for r in results))
        warm = slice(1, None)  # epoch 0 builds the cache
        # best-of over the warm epochs (the kernels-bench idiom):
        # stable against transient stalls on shared runners
        full_s = float(min(r.forward_wall_s for r in runs[False][warm]))
        reuse_s = float(min(r.forward_wall_s for r in runs[True][warm]))
        divergence = max(abs(a.loss - b.loss)
                         for a, b in zip(runs[False], runs[True]))
        forward[name] = (full_s, reuse_s, divergence)
    return forward, agg


def _bench_patching(config: TrainingWorkloadConfig):
    """Layer-0 chain over GD deltas: patched vs full SpMM per timestep.

    Static features over an evolving graph (the InstantGNN premise):
    each timestep's product differs from the previous only at the
    delta-touched frontier, which the cache patches row-sliced.
    """
    dtdg = generate_amlsim(config.patch_amlsim()).dtdg
    laps, diffs = compute_laplacians_with_diffs(dtdg)
    n = dtdg.num_vertices
    rng = np.random.default_rng(config.seed + 7)
    x = Tensor(rng.standard_normal((n, config.patch_feature_dim)))

    def full_pass():
        return [spmm(lap, x) for lap in laps]

    def patch_pass(cache):
        return [cache.aggregate(0, t, lap, x)
                for t, lap in enumerate(laps)]

    # best-of-2 rounds (fresh cache per round — a reused cache would
    # memoize the second round into a no-op)
    full_s = reuse_s = float("inf")
    full_out = patched_out = None
    stats = None
    for _ in range(2):
        t0 = time.perf_counter()
        full_out = full_pass()
        full_s = min(full_s, time.perf_counter() - t0)

        cache = AggregationCache(laps, diffs, dtdg.snapshots, ["local"],
                                 crossover=config.patch_crossover)
        cache.aggregate(0, 0, laps[0], x)  # warm the chain head
        cache.begin_epoch()
        t0 = time.perf_counter()
        patched_out = patch_pass(cache)
        reuse_s = min(reuse_s, time.perf_counter() - t0)
        stats = cache.stats

    divergence = max(float(np.abs(f.data - p.data).max())
                     for f, p in zip(full_out, patched_out))
    fraction = stats.rows_patched / max(n * max(stats.patches, 1), 1)
    return full_s, reuse_s, divergence, fraction


def _bench_distributed(config: TrainingWorkloadConfig):
    """Exactness + delta-halo volumes across all three partition modes."""
    base = generate_amlsim(config.div_amlsim()).dtdg
    divergence = {}
    halo = {}
    for mode in ("snapshot", "vertex", "hybrid"):
        for name in MODELS:
            runs = {}
            vols = {}
            for reuse in (False, True):
                view = _fresh_view(base, f"{name}-{mode}")
                kwargs = {}
                if mode == "hybrid" and name != "egcn":
                    # gcn_rnn models need a single group (§6.5)
                    kwargs["group_size"] = config.num_ranks
                elif mode == "hybrid":
                    kwargs["group_size"] = 2
                model = build_model(name, in_features=2, seed=0)
                task = LinkPredictionTask(view, embed_dim=model.embed_dim,
                                          seed=1)
                cluster = Cluster(ClusterSpec(), config.num_ranks)
                trainer = DistributedTrainer(
                    model, view, task, cluster,
                    DistConfig(partitioning=mode, reuse_aggregation=reuse,
                               **kwargs))
                results = trainer.fit(config.div_epochs)
                runs[reuse] = results
                vols[reuse] = results[-1]
            divergence[f"{mode}/{name}"] = max(
                abs(a.loss - b.loss)
                for a, b in zip(runs[False], runs[True]))
            if mode in ("vertex", "hybrid") and name == "tmgcn":
                halo[mode] = {
                    "full_run_units": vols[False].comm_volume_units,
                    "delta_run_units": vols[True].comm_volume_units,
                    "delta_run_full_equivalent_units":
                        vols[True].comm_volume_full_units,
                }
    return divergence, halo


def run_training_benchmark(config: TrainingWorkloadConfig | None = None,
                           report_name: str | None = "training"
                           ) -> TrainingBenchResult:
    """Run all four sections and write the standard reports."""
    config = config or TrainingWorkloadConfig()
    dtdg = generate_amlsim(config.amlsim()).dtdg

    forward, agg = _bench_forward(dtdg, config)
    p_full, p_reuse, p_div, p_frac = _bench_patching(config)
    dist_div, halo = _bench_distributed(config)

    result = TrainingBenchResult(
        forward=forward, agg_flops=agg,
        patch_full_s=p_full, patch_reuse_s=p_reuse,
        patch_divergence=p_div, patch_rows_fraction=p_frac,
        dist_divergence=dist_div, halo_volumes=halo)

    if report_name:
        nnz = dtdg[1].num_edges
        rows = []
        for name in MODELS:
            full_s, reuse_s, div = forward[name]
            rows.append((f"{name} per-epoch forward",
                         round(reuse_s, 3), round(full_s, 3),
                         round(result.forward_speedup(name), 2),
                         f"{div:.1e}"))
        for name in MODELS:
            executed, full = agg[name]
            rows.append((f"{name} aggregation FLOPs (1e9)",
                         round(executed / 1e9, 3), round(full / 1e9, 3),
                         round(result.agg_flop_speedup(name), 2), "-"))
        rows.append(("layer-0 delta patching "
                     f"({p_frac:.1%} rows/step)",
                     round(p_reuse, 3), round(p_full, 3),
                     round(result.patch_speedup, 2),
                     f"{p_div:.1e}"))
        table = render_table(
            ["training path", "reuse", "always-full", "speedup",
             "max |divergence|"],
            rows,
            title=(f"Training reuse: AML-Sim N={config.num_accounts}, "
                   f"T={config.num_timesteps}, nnz≈{nnz}, "
                   f"{config.epochs} epochs (warm epochs timed)"))
        halo_lines = ["", "delta halos (vertex/hybrid, tmgcn): "
                          "reuse-run volume vs always-full volume"]
        for mode, vols in halo.items():
            halo_lines.append(
                f"  {mode}: {vols['delta_run_units']:.0f} vs "
                f"{vols['full_run_units']:.0f} units "
                f"(full-equivalent {vols['delta_run_full_equivalent_units']:.0f})")
        halo_lines.append(
            f"max loss divergence across partition modes: "
            f"{max(dist_div.values()):.1e}")
        write_report(report_name, table + "\n" + "\n".join(halo_lines))
        write_bench_json("training", {
            "workload": {
                "num_accounts": config.num_accounts,
                "num_timesteps": config.num_timesteps,
                "background_per_step": config.background_per_step,
                "operator_nnz": nnz,
                "epochs": config.epochs,
            },
            "training_forward": {
                "tmgcn": {"speedup":
                          round(result.forward_speedup("tmgcn"), 3)},
                "egcn": {"speedup":
                         round(result.forward_speedup("egcn"), 3)},
                # CD-GCN's forward is LSTM-bound: its wall ratio is
                # reported, not guarded (key deliberately not "speedup")
                "cdgcn": {"wall_ratio":
                          round(result.forward_speedup("cdgcn"), 3)},
            },
            "aggregation_flops": {
                name: {"speedup": round(result.agg_flop_speedup(name), 3)}
                for name in MODELS
            },
            "delta_patching": {
                "speedup": round(result.patch_speedup, 3),
                "rows_fraction": round(p_frac, 4),
                "max_abs_divergence": p_div,
            },
            "divergence": {
                "single_device_max": max(d for _, _, d in
                                         forward.values()),
                "distributed_max": max(dist_div.values()),
            },
            "delta_halo": halo,
        })
    return result
