"""Benchmark workload construction.

Every experiment runs the calibrated synthetic stand-ins of the paper's
datasets (Table 1) at a bench-friendly scale, smoothed per model exactly
as §5.4 prescribes (M-product for TM-GCN, edge-life for EvolveGCN, raw
for CD-GCN), with the paper's in/out-degree features attached.
"""

from __future__ import annotations

from functools import lru_cache

from repro.cluster.config import GIB, ClusterSpec
from repro.graph.datasets import DATASETS, load_dataset
from repro.graph.dtdg import DTDG
from repro.train.preprocess import degree_features, smooth_for_model

__all__ = ["GPU_COUNTS", "DATASET_NAMES", "MODEL_LABELS", "bench_dtdg",
           "raw_bench_dtdg", "BENCH_SCALE", "hardware_scale",
           "calibrated_overrides"]

# the paper's strong-scaling sweep: P = 1 … 128, node boundary at 8
GPU_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128)
DATASET_NAMES = ("epinions", "flickr", "youtube", "amlsim")
MODEL_LABELS = {"tmgcn": "TM-GCN", "cdgcn": "CD-GCN", "egcn": "EvolveGCN"}

# (vertex scale, timeline scale) per dataset — sized so a full sweep of
# the figure benches completes in minutes while keeping the paper's
# relative dataset sizes and temporal overlap.  Timelines are kept at
# ≈130 snapshots so the strong-scaling sweep up to P=128 never leaves
# ranks idle (the paper's datasets satisfy T ≥ P as well).
BENCH_SCALE = {
    "epinions": (3.0e-4, 0.26),
    "flickr": (1.0e-4, 0.97),
    "youtube": (0.8e-4, 0.64),
    "amlsim": (2.2e-4, 0.65),
}

# Wide smoothing windows, as the paper's Table 1 implies (the smoothed
# graphs are 6-80x denser than the raw ones): they drive the
# consecutive-snapshot overlap of the smoothed models toward ~97%, which
# is where the 4x-class graph-difference gains live (§6.2).
SMOOTH_WINDOW = 48
EDGE_LIFE = 48


@lru_cache(maxsize=None)
def raw_bench_dtdg(dataset: str, seed: int = 0) -> DTDG:
    """Unsmoothed calibrated dataset at bench scale (cached)."""
    scale, t_scale = BENCH_SCALE[dataset]
    return load_dataset(dataset, scale=scale, t_scale=t_scale, seed=seed)


@lru_cache(maxsize=None)
def bench_dtdg(dataset: str, model: str, seed: int = 0) -> DTDG:
    """Model-ready workload: smoothed per §5.4 + degree features (cached).

    The features are computed on the *raw* graph (degrees of actual
    interactions) and attached to the smoothed snapshots, except for
    TM-GCN whose preprocessing also M-transforms the feature tensor.
    """
    raw = raw_bench_dtdg(dataset, seed)
    raw_features = degree_features(raw)
    if raw.features is None:
        raw.set_features(raw_features)
    smoothed = smooth_for_model(raw, model, edge_life=EDGE_LIFE,
                                window=SMOOTH_WINDOW)
    if smoothed is raw:
        return raw
    if smoothed.features is None:
        smoothed.set_features(raw_features)
    return smoothed


def hardware_scale(dataset: str, model: str,
                   seed: int = 0) -> tuple[float, float]:
    """Substitution rates of the bench workload vs. the paper's.

    Returns ``(edge_factor, feature_factor)``:

    * ``edge_factor`` — bench nnz / paper (per-model smoothed) nnz; each
      synthetic edge stands for ``1/edge_factor`` real edges.  Governs
      kernel FLOP rates, CPU→GPU bandwidth and GPU memory.
    * ``feature_factor`` — bench ``N·T`` / paper ``N·T``; each feature
      row stands for ``1/feature_factor`` real rows.  Governs the
      inter-GPU link bandwidths, because redistribution volume is
      ``O(T·N)`` feature vectors (§4.2).

    Dividing each hardware *rate* by its factor puts the simulated clock
    in the paper's billion-edge regime: compute and byte terms dominate
    and per-message latencies stay second-order, so the reproduced
    curves compare like-for-like shapes.
    """
    spec = DATASETS[dataset]
    if model == "tmgcn":
        paper_nnz = spec.paper_nnz_mproduct
    elif model in ("egcn", "evolvegcn"):
        paper_nnz = spec.paper_nnz_edgelife
    else:
        paper_nnz = spec.paper_nnz
    bench = bench_dtdg(dataset, model, seed)
    edge_factor = bench.total_nnz / paper_nnz
    feature_factor = (bench.num_vertices * bench.num_timesteps) / \
        (spec.paper_vertices * spec.paper_timesteps)
    return edge_factor, feature_factor


def calibrated_overrides(dataset: str, model: str, seed: int = 0,
                         memory_headroom: float = 1.0) -> dict:
    """ClusterSpec overrides scaled to the bench workload (see
    :func:`hardware_scale`); GPU memory scales too, so the paper's OOM
    behaviour at small P reappears at bench scale."""
    edge_factor, feature_factor = hardware_scale(dataset, model, seed)
    base = ClusterSpec()
    return dict(
        dense_flops=base.dense_flops * edge_factor,
        sparse_flops=base.sparse_flops * edge_factor,
        h2d_bandwidth=base.h2d_bandwidth * edge_factor,
        intra_bandwidth=base.intra_bandwidth * feature_factor,
        inter_bandwidth=base.inter_bandwidth * feature_factor,
        gpu_memory_bytes=max(int(32 * GIB * edge_factor * memory_headroom),
                             1024),
    )
