"""Execution-tier workload: the AML-Sim replay on real worker processes.

The replay of :mod:`repro.bench.serving` is driven through an
:class:`~repro.exec.router.ExecRouter` at process counts ``N = 1, 2,
4`` — and unlike every other bench in this repo, the N-process points
are *real*: each shard worker is its own OS process, the read-mostly
blocks live in shared memory, and GD deltas/queries cross a pipe.

Each shard count measures three replays of the byte-identical stream:

* **multiprocess, pipelined** — RPCs fan out to all workers before any
  reply is collected, so worker processes genuinely overlap.  Its
  wall-clock is the honest end-to-end number and is recorded as the
  (unguarded) ``real_wall_ratio``: on a many-core host it approaches
  the critical-path ratio, on a single-core host it approaches 1.0,
  because co-scheduled processes merely timeshare.
* **multiprocess, serialized** (``pipeline=False``) — one worker runs
  at a time, so each process's busy clock (measured *inside* the
  worker with ``perf_counter``) is free of co-scheduling noise.  The
  tier's **critical path** — router busy time plus the slowest
  worker's busy time — is the core-count-independent scaling signal,
  and its N=1 / N=max ratio is the guarded ``scaling_speedup``.
* **simulated** — the in-process oracle; its gathered embeddings must
  match the multiprocess tier's bit for bit (``max_abs_divergence``).

Results land in ``results/exec_scaling.txt`` and ``BENCH_exec.json``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from repro.bench.reporting import render_table, write_bench_json, write_report
from repro.bench.serving import build_event_schedule, build_query_plan
from repro.exec import ExecRouter, ExecStats
from repro.graph.amlsim import AMLSimConfig, generate_amlsim
from repro.models import build_model
from repro.nn.linear import Linear

__all__ = ["ExecWorkloadConfig", "ExecScalePoint", "ExecBenchResult",
           "run_exec_benchmark"]


@dataclass(frozen=True)
class ExecWorkloadConfig:
    """Knobs of the real-process replay.

    Same regional-branch AML-Sim shape as the sharded bench (locality
    for the router to exploit, planted typologies that keep crossing
    shard boundaries), sized so the full sweep — nine replays, six of
    them with live worker processes — stays in CI territory."""

    model: str = "cdgcn"
    num_accounts: int = 4000
    num_timesteps: int = 6
    background_per_step: int = 2500
    partner_persistence: float = 0.95
    activity_skew: float = 0.0
    num_branches: int = 8
    branch_locality: float = 0.9
    warmup_timesteps: int = 2
    event_batches_per_step: int = 2
    queries_per_batch: int = 24
    max_batch_size: int = 128
    flush_latency_ms: float = 50.0
    hidden: int = 32
    embed_dim: int = 32
    shard_counts: tuple = (1, 2, 4)
    # timing repetitions per (shard count, mode); the minimum wall is
    # reported, filtering one-sided scheduler/GC noise out of the
    # measured process clocks
    measure_reps: int = 2
    seed: int = 0

    @classmethod
    def smoke(cls) -> "ExecWorkloadConfig":
        """CI-sized sweep: same shape, smaller graph.

        The graph cannot shrink too far: each worker's halo is a k-hop
        neighborhood, so on a tiny graph coverage overlap eats the
        scaling this bench guards."""
        return cls(num_accounts=2000, background_per_step=1500)

    def amlsim(self) -> AMLSimConfig:
        return AMLSimConfig(
            num_accounts=self.num_accounts,
            num_timesteps=self.num_timesteps,
            background_per_step=self.background_per_step,
            partner_persistence=self.partner_persistence,
            activity_skew=self.activity_skew,
            num_branches=self.num_branches,
            branch_locality=self.branch_locality,
            seed=self.seed)


@dataclass(frozen=True)
class ExecScalePoint:
    """One process count's outcome."""

    num_shards: int
    stats: ExecStats           # from the serialized multiprocess replay
    real_wall_s: float         # pipelined multiprocess, end-to-end
    critical_path_s: float     # router busy + slowest worker busy
    sim_wall_s: float          # simulated oracle, end-to-end
    divergence: float          # mp vs simulated gathered embeddings


@dataclass(frozen=True)
class ExecBenchResult:
    """Outcome of the full process-scaling sweep."""

    points: tuple
    num_queries: int
    num_events: int
    max_abs_divergence: float

    def point(self, num_shards: int) -> ExecScalePoint:
        for p in self.points:
            if p.num_shards == num_shards:
                return p
        raise KeyError(f"no scale point for N={num_shards}")

    @property
    def max_shards(self) -> int:
        return max(p.num_shards for p in self.points)

    @property
    def scaling_speedup(self) -> float:
        """Critical-path ratio, N=1 over N=max (guarded in CI)."""
        return (self.point(1).critical_path_s
                / self.point(self.max_shards).critical_path_s)

    @property
    def real_wall_ratio(self) -> float:
        """True wall-clock ratio, N=1 over N=max (unguarded: honest
        but bounded by the host's core count)."""
        return (self.point(1).real_wall_s
                / self.point(self.max_shards).real_wall_s)


def _replay(router: ExecRouter, schedule, plan) -> float:
    """Drive one tier through the stream; returns wall seconds."""
    t0 = time.perf_counter()
    for batches, step_queries in zip(schedule, plan):
        router.advance_time()
        for events, queries in zip(batches, step_queries):
            if events:
                router.ingest_events(events)
            for kind, payload in queries:
                if kind == "link":
                    router.submit_link(*payload)
                else:
                    router.submit_fraud(*payload)
            router.flush()
    router.drain()
    return time.perf_counter() - t0


def run_exec_benchmark(config: ExecWorkloadConfig | None = None,
                       report_name: str | None = "exec_scaling"
                       ) -> ExecBenchResult:
    """Replay the stream at every configured process count."""
    if config is None:
        config = ExecWorkloadConfig.smoke() \
            if os.environ.get("REPRO_SMOKE") else ExecWorkloadConfig()
    sim = generate_amlsim(config.amlsim())
    dtdg = sim.dtdg
    start = config.warmup_timesteps
    if not 1 <= start < dtdg.num_timesteps:
        raise ValueError("warmup_timesteps must leave timesteps to stream")
    schedule = build_event_schedule(dtdg, start,
                                    config.event_batches_per_step)
    plan = build_query_plan(dtdg, start, schedule, config.queries_per_batch,
                            config.seed)
    num_events = sum(len(ev) for batches in schedule for ev in batches)

    def boot(backend: str, num_shards: int, pipeline: bool) -> ExecRouter:
        model = build_model(config.model, in_features=2,
                            hidden=config.hidden,
                            embed_dim=config.embed_dim, seed=config.seed)
        fraud = Linear(config.embed_dim, 2,
                       np.random.default_rng(config.seed + 7))
        router = ExecRouter(model, dtdg[0], backend=backend,
                            num_shards=num_shards, fraud_head=fraud,
                            max_batch_size=config.max_batch_size,
                            flush_latency_ms=config.flush_latency_ms,
                            pipeline=pipeline)
        for t in range(1, start):
            router.advance_time(dtdg[t])
        return router

    points = []
    num_queries = 0
    dashboard_text = None
    reps = max(1, config.measure_reps)
    for n in config.shard_counts:
        # real overlap: pipelined fan-out, end-to-end wall clock
        real_wall = float("inf")
        mp_embeddings = None
        for _ in range(reps):
            piped = boot("multiprocess", n, pipeline=True)
            real_wall = min(real_wall, _replay(piped, schedule, plan))
            mp_embeddings = piped.gathered_embeddings()
            if n == max(config.shard_counts):
                # live cluster view off the real processes: harvested
                # worker registries + SLO verdicts, shipped as a report
                slo = piped.attach_slo()
                slo.quantile("p99-latency-ms", "serve_latency_ms",
                             q=99.0,
                             threshold=config.flush_latency_ms * 4)
                slo.ratio("shed-rate", "serve_queries_shed_total",
                          "serve_queries_submitted_total",
                          threshold=0.01)
                slo.ratio("heartbeat-miss",
                          "serve_heartbeat_failures_total",
                          "serve_heartbeats_total", threshold=0.01)
                dashboard_text = piped.dashboard(
                    title=(f"exec tier: {config.model} "
                           f"N={config.num_accounts} "
                           f"({n} worker processes)"))
            piped.close()

        # clean busy clocks: one worker at a time, stats deltas give
        # the warmup-free critical path
        critical = float("inf")
        for _ in range(reps):
            serial = boot("multiprocess", n, pipeline=False)
            base = serial.stats()
            _replay(serial, schedule, plan)
            stats = serial.stats()
            serial.close()
            busy = [b - b0 for b, b0 in zip(stats.per_shard_busy_s,
                                            base.per_shard_busy_s)]
            critical = min(critical, (stats.router_busy_s
                                      - base.router_busy_s) + max(busy))

        oracle = boot("simulated", n, pipeline=True)
        sim_wall = _replay(oracle, schedule, plan)
        divergence = float(np.abs(oracle.gathered_embeddings()
                                  - mp_embeddings).max())
        oracle.close()

        num_queries = stats.counters.queries_completed
        points.append(ExecScalePoint(
            num_shards=n, stats=stats, real_wall_s=real_wall,
            critical_path_s=critical, sim_wall_s=sim_wall,
            divergence=divergence))

    result = ExecBenchResult(
        points=tuple(points), num_queries=num_queries,
        num_events=num_events,
        max_abs_divergence=max(p.divergence for p in points))

    if report_name:
        rows = []
        for p in result.points:
            s = p.stats
            rows.append((
                p.num_shards,
                round(result.num_queries / p.critical_path_s, 1),
                round(result.point(1).critical_path_s
                      / p.critical_path_s, 2),
                round(p.real_wall_s, 3),
                round(p.critical_path_s, 3),
                s.rpc_roundtrips,
                round(s.rpc_bytes_sent / 2**20, 2),
                round(s.shm_bytes_mapped / 2**20, 2),
                s.traffic.rows_shipped,
                f"{p.divergence:.1e}"))
        table = render_table(
            ["procs", "qps", "scaling", "real wall s", "critical s",
             "rpcs", "MiB piped", "MiB shm", "halo rows", "divergence"],
            rows,
            title=(f"Real-process execution tier: AML-Sim {config.model} "
                   f"N={config.num_accounts} "
                   f"({dtdg.num_timesteps - start} streamed timesteps; "
                   f"critical-path scaling "
                   f"{result.scaling_speedup:.2f}x, real wall ratio "
                   f"{result.real_wall_ratio:.2f}x, max divergence "
                   f"{result.max_abs_divergence:.2e})"))
        write_report(report_name, table)
        if dashboard_text is not None:
            write_report("exec_dashboard", dashboard_text)
        write_bench_json("exec", {
            "workload": {
                "model": config.model,
                "num_accounts": config.num_accounts,
                "streamed_timesteps": dtdg.num_timesteps - start,
                "num_events": num_events,
                "num_queries": result.num_queries,
                "shard_counts": list(config.shard_counts),
            },
            "backend": "multiprocess",
            # guarded: core-count-independent critical-path ratio
            "scaling_speedup": round(result.scaling_speedup, 3),
            # unguarded: true wall clock, bounded by host cores
            "real_wall_ratio": round(result.real_wall_ratio, 3),
            "max_abs_divergence": result.max_abs_divergence,
            "points": {
                str(p.num_shards): {
                    "real_wall_s": round(p.real_wall_s, 4),
                    "critical_path_s": round(p.critical_path_s, 4),
                    "sim_wall_s": round(p.sim_wall_s, 4),
                    "aggregate_qps": round(
                        result.num_queries / p.critical_path_s, 1),
                    "router_busy_s": round(p.stats.router_busy_s, 4),
                    "worker_busy_max_s": round(
                        max(p.stats.per_shard_busy_s), 4),
                    "rpc_roundtrips": p.stats.rpc_roundtrips,
                    "rpc_bytes_sent": p.stats.rpc_bytes_sent,
                    "rpc_bytes_received": p.stats.rpc_bytes_received,
                    "shm_bytes_mapped": p.stats.shm_bytes_mapped,
                    "halo_rows_shipped": p.stats.traffic.rows_shipped,
                    "halo_bytes_shipped": p.stats.traffic.bytes_shipped,
                    "divergence": p.divergence,
                } for p in result.points
            },
        })
    return result
