"""Sharded-serving workload: the same AML-Sim replay, scaled out.

The replay of :mod:`repro.bench.serving` is driven through a
:class:`~repro.serve.sharded.router.ShardedServer` at shard counts
``N = 1, 2, 4, 8``.  Every tier answers a byte-identical event + query
stream; what changes is how the per-vertex model state is partitioned.

**Throughput accounting.**  All shards execute serially inside one
process (the repo's simulated-cluster idiom): each worker carries its
own busy clock, and the tier's wall time is the simulated-parallel
critical path — router busy time (frontier expansion, delta routing,
cross-shard gathers) plus the slowest worker's busy time.  Snapshot
materialization inside the router's ingestor is the shared simulation
substrate (a real deployment applies per-shard sub-deltas, a cost the
workers' ``apply_delta`` timing already covers) and is therefore left
out of the critical path but still runs once per commit for every tier
identically.

The workload uses AML-Sim's regional branches (``branch_locality``)
aligned with contiguous shard blocks — the locality a partition-aware
router exists to exploit — while the planted laundering typologies keep
crossing shard boundaries, so halo traffic never vanishes.  Reported
per shard count: aggregate queries/sec, scaling vs N=1, per-shard load
skew, halo rows/bytes shipped, delta fan-out bytes, and cross-shard row
fetches; plus the N=max-vs-single-worker embedding divergence (must be
~0).  Results land in ``results/sharded_serving.txt`` and
``BENCH_sharded_serving.json``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.reporting import render_table, write_bench_json, write_report
from repro.bench.serving import build_event_schedule, build_query_plan
from repro.graph.amlsim import AMLSimConfig, generate_amlsim
from repro.models import build_model
from repro.nn.linear import Linear
from repro.serve.server import ModelServer
from repro.serve.sharded import ShardedServer, ShardedStats

__all__ = ["ShardedWorkloadConfig", "ShardedScalePoint",
           "ShardedBenchResult", "run_sharded_benchmark"]


@dataclass(frozen=True)
class ShardedWorkloadConfig:
    """Knobs of the sharded replay.

    Accounts are spread over ``num_branches`` regional branches with
    strong in-branch payment locality; ``activity_skew=0`` keeps the
    *offered* load uniform so the scaling numbers measure the tier, not
    the workload (skewed-load behavior is the rebalancer's test, not
    this table's).
    """

    model: str = "cdgcn"
    num_accounts: int = 9000
    num_timesteps: int = 10
    background_per_step: int = 9000
    partner_persistence: float = 0.95
    activity_skew: float = 0.0
    num_branches: int = 8
    branch_locality: float = 0.9
    warmup_timesteps: int = 4
    event_batches_per_step: int = 4
    queries_per_batch: int = 48
    max_batch_size: int = 128
    flush_latency_ms: float = 50.0
    hidden: int = 32
    embed_dim: int = 32
    replicas: int = 1
    shard_counts: tuple = (1, 2, 4, 8)
    # measurement repetitions per shard count (interleaved across the
    # sweep; the minimum wall per tier is reported, which filters out
    # one-sided system noise like a GC pause or a busy sibling process)
    measure_reps: int = 3
    seed: int = 0

    def amlsim(self) -> AMLSimConfig:
        return AMLSimConfig(
            num_accounts=self.num_accounts,
            num_timesteps=self.num_timesteps,
            background_per_step=self.background_per_step,
            partner_persistence=self.partner_persistence,
            activity_skew=self.activity_skew,
            num_branches=self.num_branches,
            branch_locality=self.branch_locality,
            seed=self.seed)


@dataclass(frozen=True)
class ShardedScalePoint:
    """One shard count's outcome."""

    num_shards: int
    stats: ShardedStats
    wall_s: float              # simulated-parallel critical path
    coverage_rows: int         # sum of block + halo rows across shards


@dataclass(frozen=True)
class ShardedBenchResult:
    """Outcome of the full scaling sweep."""

    points: tuple
    num_queries: int
    num_events: int
    max_abs_divergence: float  # N=max sharded vs single-worker recompute

    def point(self, num_shards: int) -> ShardedScalePoint:
        for p in self.points:
            if p.num_shards == num_shards:
                return p
        raise KeyError(f"no scale point for N={num_shards}")

    def scaling(self, num_shards: int) -> float:
        """Aggregate-throughput ratio vs the N=1 tier."""
        return self.point(1).wall_s / self.point(num_shards).wall_s


def _replay(server, schedule, plan) -> None:
    """Drive one tier through the stream (same loop as the single-worker
    replay; wall time is read from the tier's simulated clocks)."""
    for batches, step_queries in zip(schedule, plan):
        server.advance_time()
        for events, queries in zip(batches, step_queries):
            if events:
                server.ingest_events(events)
            for kind, payload in queries:
                if kind == "link":
                    server.submit_link(*payload)
                else:
                    server.submit_fraud(*payload)
            server.flush()
    server.drain()


def run_sharded_benchmark(config: ShardedWorkloadConfig | None = None,
                          report_name: str | None = "sharded_serving"
                          ) -> ShardedBenchResult:
    """Replay the stream at every configured shard count."""
    config = config or ShardedWorkloadConfig()
    sim = generate_amlsim(config.amlsim())
    dtdg = sim.dtdg
    start = config.warmup_timesteps
    if not 1 <= start < dtdg.num_timesteps:
        raise ValueError("warmup_timesteps must leave timesteps to stream")
    schedule = build_event_schedule(dtdg, start,
                                    config.event_batches_per_step)
    plan = build_query_plan(dtdg, start, schedule, config.queries_per_batch,
                            config.seed)
    num_events = sum(len(ev) for batches in schedule for ev in batches)

    def boot(num_shards: int) -> ShardedServer:
        model = build_model(config.model, in_features=2,
                            hidden=config.hidden,
                            embed_dim=config.embed_dim, seed=config.seed)
        fraud = Linear(config.embed_dim, 2,
                       np.random.default_rng(config.seed + 7))
        server = ShardedServer(model, dtdg[0], num_shards=num_shards,
                               replicas=config.replicas, fraud_head=fraud,
                               max_batch_size=config.max_batch_size,
                               flush_latency_ms=config.flush_latency_ms)
        for t in range(1, start):
            server.advance_time(dtdg[t])
        return server

    def measure(n: int) -> tuple[float, ShardedServer]:
        server = boot(n)
        base_stats = server.stats()
        base_busy = list(base_stats.per_shard_busy_s)
        base_router = base_stats.router_busy_s
        _replay(server, schedule, plan)
        stats = server.stats()
        busy = [b - b0 for b, b0 in zip(stats.per_shard_busy_s, base_busy)]
        wall = (stats.router_busy_s - base_router) + max(busy)
        return wall, server

    # warm every execution path (CSR advance at full coverage, gather
    # refresh, halo exchange) before any timed run, so the sweep is
    # insensitive to whatever ran earlier in the process
    for n in (min(config.shard_counts), max(config.shard_counts)):
        warm = boot(n)
        _replay(warm, schedule[:1], plan[:1])

    walls: dict[int, float] = {n: float("inf") for n in config.shard_counts}
    servers: dict[int, ShardedServer] = {}
    for _ in range(max(1, config.measure_reps)):
        for n in config.shard_counts:
            wall, server = measure(n)
            walls[n] = min(walls[n], wall)
            servers[n] = server

    points = []
    final_embeddings = {}
    for n in config.shard_counts:
        server = servers[n]
        coverage = sum(len(server.worker(s).engine.coverage)
                       for s in range(n))
        points.append(ShardedScalePoint(num_shards=n, stats=server.stats(),
                                        wall_s=walls[n],
                                        coverage_rows=coverage))
        final_embeddings[n] = server.gathered_embeddings()

    # exactness reference: a single-worker full-recompute server
    model = build_model(config.model, in_features=2, hidden=config.hidden,
                        embed_dim=config.embed_dim, seed=config.seed)
    fraud = Linear(config.embed_dim, 2,
                   np.random.default_rng(config.seed + 7))
    reference = ModelServer(model, dtdg[0], fraud_head=fraud,
                            max_batch_size=config.max_batch_size,
                            flush_latency_ms=config.flush_latency_ms,
                            incremental=False)
    for t in range(1, start):
        reference.advance_time(dtdg[t])
    _replay(reference, schedule, plan)
    reference.cache.invalidate_all()
    reference.engine.refresh()
    n_max = max(config.shard_counts)
    divergence = float(np.abs(final_embeddings[n_max]
                              - reference.engine.embeddings).max())

    num_queries = points[0].stats.counters.queries_completed
    result = ShardedBenchResult(points=tuple(points),
                                num_queries=num_queries,
                                num_events=num_events,
                                max_abs_divergence=divergence)

    if report_name:
        rows = []
        for p in result.points:
            c = p.stats.counters
            t = p.stats.traffic
            rows.append((
                p.num_shards,
                num_queries,
                round(num_queries / p.wall_s, 1),
                round(result.scaling(p.num_shards), 2),
                round(p.stats.load_skew, 3),
                p.coverage_rows,
                t.rows_shipped,
                round(t.bytes_shipped / 1024.0, 1),
                round(c.delta_bytes_fanout / 1024.0, 1),
                c.halo_dirty_rows,
                c.remote_row_fetches,
            ))
        table = render_table(
            ["shards", "queries", "agg qps", "scaling", "load skew",
             "coverage rows", "halo rows", "halo KB", "delta KB",
             "ghost dirty rows", "remote fetches"],
            rows,
            title=(f"Sharded serving replay: AML-Sim {config.model} "
                   f"N={config.num_accounts} "
                   f"({dtdg.num_timesteps - start} streamed timesteps, "
                   f"{num_events} events, {config.replicas} replica(s); "
                   f"max divergence {divergence:.2e})"))
        write_report(report_name, table)
        write_bench_json("sharded_serving", {
            "workload": {
                "model": config.model,
                "num_accounts": config.num_accounts,
                "num_branches": config.num_branches,
                "branch_locality": config.branch_locality,
                "streamed_timesteps": dtdg.num_timesteps - start,
                "num_events": num_events,
                "num_queries": num_queries,
                "replicas": config.replicas,
            },
            "max_abs_divergence": divergence,
            "points": [{
                "num_shards": p.num_shards,
                "aggregate_qps": round(num_queries / p.wall_s, 1),
                "scaling_vs_1": round(result.scaling(p.num_shards), 3),
                "wall_s": round(p.wall_s, 4),
                "load_skew": round(p.stats.load_skew, 4),
                "coverage_rows": p.coverage_rows,
                "halo_rows_shipped": p.stats.traffic.rows_shipped,
                "halo_bytes_shipped": p.stats.traffic.bytes_shipped,
                "delta_bytes_fanout":
                    p.stats.counters.delta_bytes_fanout,
                "ghost_dirty_rows": p.stats.counters.halo_dirty_rows,
                "remote_row_fetches":
                    p.stats.counters.remote_row_fetches,
                "rows_recomputed": p.stats.counters.rows_recomputed,
            } for p in result.points],
        })
    return result
