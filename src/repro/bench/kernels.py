"""Kernel-layer benchmark: incremental operators and row-sliced SpMM.

Three headline comparisons, all on the AML-Sim serving workload:

* **Incremental operator maintenance** — advancing the resident ``Ã``
  through the timeline's GD deltas with
  :class:`~repro.graph.inc_laplacian.LaplacianMaintainer` vs rebuilding
  it from scratch (adjacency + Eq. 1 normalization) at every timestep,
  the pre-kernel serving hot path.
* **Row-sliced SpMM** — computing only a dirty frontier's output rows
  (:func:`~repro.tensor.sparse.spmm_rows`) vs the full multiply.
* **End-to-end serving refresh** — an :class:`InferenceEngine` driven
  by the same event stream twice: delta-maintained operator plus
  row-sliced refresh of the dirty rows, vs full-rebuild operator plus
  full-matrix recompute (the ``incremental=False`` baseline path).

A fourth section times every *registered kernel backend*
(:mod:`repro.tensor.backend`) against the reference implementation on
the same resident operator — one row per backend × kernel
(``spmm``, ``spmm_rows``, ``spmm_rows_bwd``, ``spmm_patch``,
``transpose``, ``maintainer_commit``) — and records the matrix under
``backend_matrix`` in ``BENCH_kernels.json``.  Matrix entries use the
unguarded ``us`` / ``vs_reference`` key names on purpose: which
backends are available varies by machine (numba is CI-matrix-only), and
the perf guard must not fail on a backend the runner doesn't have.

Each comparison also reports the maximum absolute divergence against
the full-recompute reference — the kernels are exactness-preserving,
so these must be ~0 (≤ 1e-9 is the acceptance bar).  Results land in
``results/kernels.txt`` and ``BENCH_kernels.json``; CI's perf guard
fails when the recorded speedups regress by more than 20%.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.bench.reporting import render_table, write_bench_json, write_report
from repro.graph.amlsim import AMLSimConfig, generate_amlsim
from repro.graph.inc_laplacian import LaplacianMaintainer
from repro.graph.laplacian import laplacian_from_adjacency
from repro.models import build_model
from repro.serve.cache import expand_dirty
from repro.serve.engine import InferenceEngine
from repro.serve.ingest import StreamIngestor, events_between
from repro.tensor.backend import available_backends, get_backend
from repro.tensor.sparse import SparseMatrix, spmm, spmm_rows

__all__ = ["KernelWorkloadConfig", "KernelsBenchResult",
           "run_kernels_benchmark"]


@dataclass(frozen=True)
class KernelWorkloadConfig:
    """Knobs of the kernel bench (AML-Sim serving regime: small deltas
    against a large resident graph — InstantGNN's premise)."""

    num_accounts: int = 30000
    num_timesteps: int = 10
    background_per_step: int = 30000
    partner_persistence: float = 0.97
    activity_skew: float = 0.4
    seed: int = 0
    # micro-kernel knobs
    feature_dim: int = 32
    spmm_repeats: int = 30
    # end-to-end refresh replay
    serve_model: str = "cdgcn"
    hidden: int = 16
    embed_dim: int = 16
    event_batches_per_step: int = 12
    # timing rounds (best-of); smoke mode runs one round
    rounds: int = 3

    def amlsim(self) -> AMLSimConfig:
        return AMLSimConfig(
            num_accounts=self.num_accounts,
            num_timesteps=self.num_timesteps,
            background_per_step=self.background_per_step,
            partner_persistence=self.partner_persistence,
            activity_skew=self.activity_skew,
            seed=self.seed)


@dataclass(frozen=True)
class KernelsBenchResult:
    """Outcome of the three kernel comparisons."""

    # incremental operator maintenance vs full rebuild
    inc_update_s: float
    full_rebuild_s: float
    inc_max_divergence: float
    avg_delta_edges: float
    operator_nnz: int
    # row-sliced vs full SpMM
    spmm_rows_s: float
    spmm_full_s: float
    spmm_divergence: float
    num_sliced_rows: int
    # end-to-end serving refresh
    refresh_inc_s: float
    refresh_full_s: float
    refresh_divergence: float
    num_refreshes: int
    # per-backend × per-kernel matrix: {backend: {kernel: {"us", ...,
    # "vs_reference"}, "max_divergence": float}}
    backend_matrix: dict

    @property
    def inc_speedup(self) -> float:
        return self.full_rebuild_s / self.inc_update_s

    @property
    def spmm_speedup(self) -> float:
        return self.spmm_full_s / self.spmm_rows_s

    @property
    def refresh_speedup(self) -> float:
        return self.refresh_full_s / self.refresh_inc_s


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(max(1, rounds)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _commit_stream(dtdg, batches_per_step):
    """The serving tier's commit sequence: each timestep transition
    replayed as micro-batched edge events, one GD delta per commit."""
    ingestor = StreamIngestor(dtdg[0])
    commits = []
    for t in range(1, dtdg.num_timesteps):
        events = events_between(ingestor.resident, dtdg[t])
        chunk = max(1, -(-len(events) // batches_per_step))
        for lo in range(0, len(events), chunk):
            ingestor.push_batch(events[lo:lo + chunk])
            result = ingestor.commit()
            commits.append((result.snapshot, result.diff))
    return commits


def _bench_inc_laplacian(dtdg, commits, config):
    """Maintainer streaming vs a full operator rebuild per commit —
    what the pre-kernel serving path paid to keep ``Ã`` current."""
    n = dtdg.num_vertices

    def full_pass():
        for snap, _ in commits:
            # the pre-kernel hot path: fresh adjacency + Eq. 1 rebuild
            adj = SparseMatrix.from_edges(snap.edges, snap.values, (n, n))
            laplacian_from_adjacency(adj)

    def inc_pass():
        m = LaplacianMaintainer(dtdg[0])
        for snap, diff in commits:
            m.update(snap, diff)

    full_s = _best_of(full_pass, config.rounds)
    inc_s = _best_of(inc_pass, config.rounds)

    # exactness sweep (untimed): every maintained operator vs a rebuild
    m = LaplacianMaintainer(dtdg[0])
    worst = 0.0
    for snap, diff in commits:
        m.update(snap, diff)
        ref = laplacian_from_adjacency(snap.adjacency())
        delta = m.export().csr - ref.csr
        if delta.nnz:
            worst = max(worst, float(np.abs(delta.data).max()))
    if m.incremental_updates != len(commits):
        raise RuntimeError("maintainer fell back to full rebuilds "
                           "mid-stream; the bench would be meaningless")
    avg_delta = float(np.mean([len(d.removed) + len(d.added)
                               for _, d in commits]))
    return inc_s, full_s, worst, avg_delta, int(m.laplacian.nnz), m


def _frontier_rows(commits) -> np.ndarray:
    """A representative dirty frontier: the last commit's touched
    endpoints expanded by a 2-layer model's invalidation radius."""
    last, delta = commits[-1]
    touched = np.unique(np.concatenate(
        [delta.removed, delta.added]).ravel()) \
        if len(delta.removed) + len(delta.added) \
        else np.empty(0, dtype=np.int64)
    return expand_dirty(last, touched, hops=2)


def _bench_spmm_rows(dtdg, commits, maintainer, rows, config):
    """Row-sliced SpMM over a dirty frontier vs the full multiply."""
    lap = maintainer.laplacian
    rng = np.random.default_rng(config.seed + 13)
    x = rng.standard_normal((dtdg.num_vertices, config.feature_dim))

    def full_pass():
        for _ in range(config.spmm_repeats):
            spmm(lap, x)

    def sliced_pass():
        for _ in range(config.spmm_repeats):
            spmm_rows(lap, x, rows)

    full_s = _best_of(full_pass, config.rounds)
    sliced_s = _best_of(sliced_pass, config.rounds)
    div = float(np.abs(spmm(lap, x).data[rows]
                       - spmm_rows(lap, x, rows).data).max())
    return sliced_s, full_s, div, len(rows)


def _bench_backend_matrix(dtdg, commits, maintainer, rows, config):
    """Every available kernel backend × every hot kernel, timed against
    reference on the same resident operator and dirty frontier.

    ``spmm_patch`` is the serving patch path with the base memcpy
    excluded (the backends only differ in the fused row recompute +
    scatter; the copy is backend-invariant); ``spmm_rows`` is the
    fused gather-GEMM alone.
    """
    csr = maintainer.laplacian.csr
    n = dtdg.num_vertices
    rng = np.random.default_rng(config.seed + 29)
    x = np.ascontiguousarray(
        rng.standard_normal((n, config.feature_dim)))
    g = np.ascontiguousarray(
        rng.standard_normal((len(rows), config.feature_dim)))
    base = np.ascontiguousarray(rng.standard_normal(x.shape))
    repeats = config.spmm_repeats

    def timers(kb):
        patch_out = base.copy()

        def patch():
            patch_out[rows], _ = kb.spmm_rows(csr, rows, x)
            return patch_out
        return {
            "spmm": lambda: kb.spmm(csr, x),
            "spmm_rows": lambda: kb.spmm_rows(csr, rows, x)[0],
            "spmm_rows_bwd": lambda: kb.spmm_rows_t(csr, rows, g, None),
            "spmm_patch": patch,
            "transpose": lambda: kb.transpose(csr),
        }

    def commit_replay(kb):
        m = LaplacianMaintainer(dtdg[0], backend=kb)
        for snap, diff in commits:
            m.update(snap, diff)

    ref = get_backend("reference")
    ref_outs = {k: np.asarray(fn()) for k, fn in timers(ref).items()
                if k != "transpose"}
    matrix = {}
    for name in available_backends():
        kb = get_backend(name)
        entry = {}
        worst = 0.0
        for kernel, fn in timers(kb).items():
            out = fn()
            if kernel == "transpose":
                delta = out - ref.transpose(csr)
                if delta.nnz:
                    worst = max(worst, float(np.abs(delta.data).max()))
            else:
                worst = max(worst, float(np.abs(
                    np.asarray(out) - ref_outs[kernel]).max()))
            secs = _best_of(lambda: [fn() for _ in range(repeats)],
                            config.rounds)
            entry[kernel] = {"us": round(secs * 1e6 / repeats, 3)}
        secs = _best_of(lambda: commit_replay(kb), config.rounds)
        entry["maintainer_commit"] = {
            "us": round(secs * 1e6 / len(commits), 3)}
        entry["max_divergence"] = worst
        matrix[name] = entry
    for name, entry in matrix.items():
        for kernel, cell in entry.items():
            if isinstance(cell, dict):
                cell["vs_reference"] = round(
                    matrix["reference"][kernel]["us"] / cell["us"], 3)
    return matrix


def _bench_serving_refresh(dtdg, config):
    """End-to-end refresh path: delta-maintained + row-sliced vs
    full-rebuild + full-matrix recompute."""
    def drive(incremental: bool):
        model = build_model(config.serve_model, in_features=2,
                            hidden=config.hidden,
                            embed_dim=config.embed_dim, seed=config.seed)
        engine = InferenceEngine(model, dtdg[0])
        engine.advance()
        ingestor = StreamIngestor(dtdg[0])
        wall = 0.0
        refreshes = 0
        for t in range(1, dtdg.num_timesteps):
            events = events_between(ingestor.resident, dtdg[t])
            chunk = max(1, -(-len(events) // config.event_batches_per_step))
            for lo in range(0, len(events), chunk):
                ingestor.push_batch(events[lo:lo + chunk])
                result = ingestor.commit()
                t0 = time.perf_counter()
                if incremental:
                    engine.set_snapshot(result.snapshot,
                                        seeds=result.dirty,
                                        diff=result.diff)
                else:
                    engine.set_snapshot(result.snapshot, seeds=None)
                engine.refresh()
                wall += time.perf_counter() - t0
                refreshes += 1
            engine.advance()
        return wall, refreshes, engine.embeddings.copy()

    inc_s, refreshes, z_inc = drive(True)
    full_s, _, z_full = drive(False)
    div = float(np.abs(z_inc - z_full).max())
    return inc_s, full_s, div, refreshes


def run_kernels_benchmark(config: KernelWorkloadConfig | None = None,
                          report_name: str | None = "kernels"
                          ) -> KernelsBenchResult:
    """Run all three kernel comparisons and write the standard reports."""
    config = config or KernelWorkloadConfig()
    dtdg = generate_amlsim(config.amlsim()).dtdg
    commits = _commit_stream(dtdg, config.event_batches_per_step)

    inc_s, full_s, inc_div, avg_delta, nnz, maintainer = \
        _bench_inc_laplacian(dtdg, commits, config)
    frontier = _frontier_rows(commits)
    sliced_s, sfull_s, spmm_div, num_rows = \
        _bench_spmm_rows(dtdg, commits, maintainer, frontier, config)
    matrix = _bench_backend_matrix(dtdg, commits, maintainer, frontier,
                                   config)
    r_inc_s, r_full_s, r_div, refreshes = \
        _bench_serving_refresh(dtdg, config)

    result = KernelsBenchResult(
        inc_update_s=inc_s, full_rebuild_s=full_s,
        inc_max_divergence=inc_div, avg_delta_edges=avg_delta,
        operator_nnz=nnz,
        spmm_rows_s=sliced_s, spmm_full_s=sfull_s,
        spmm_divergence=spmm_div, num_sliced_rows=num_rows,
        refresh_inc_s=r_inc_s, refresh_full_s=r_full_s,
        refresh_divergence=r_div, num_refreshes=refreshes,
        backend_matrix=matrix)

    if report_name:
        steps = len(commits)
        rows = [
            (f"incremental Ã maintenance ({steps} commits)",
             round(inc_s * 1e3 / steps, 4),
             round(full_s * 1e3 / steps, 4),
             round(result.inc_speedup, 2),
             f"{inc_div:.1e}"),
            ("row-sliced SpMM "
             f"({num_rows}/{dtdg.num_vertices} rows)",
             round(sliced_s * 1e3 / config.spmm_repeats, 4),
             round(sfull_s * 1e3 / config.spmm_repeats, 4),
             round(result.spmm_speedup, 2),
             f"{spmm_div:.1e}"),
            (f"serving refresh ({config.serve_model}, "
             f"{refreshes} refreshes)",
             round(r_inc_s * 1e3 / refreshes, 4),
             round(r_full_s * 1e3 / refreshes, 4),
             round(result.refresh_speedup, 2),
             f"{r_div:.1e}"),
        ]
        table = render_table(
            ["kernel path", "incremental ms", "full ms", "speedup",
             "max |divergence|"],
            rows,
            title=(f"Kernel layer: AML-Sim N={config.num_accounts}, "
                   f"nnz(Ã)≈{nnz}, avg delta {avg_delta:.0f} edges/step"))
        kernel_cols = ["spmm", "spmm_rows", "spmm_rows_bwd",
                       "spmm_patch", "transpose", "maintainer_commit"]
        matrix_rows = [
            [name] + [f"{matrix[name][k]['us']:.0f} "
                      f"({matrix[name][k]['vs_reference']:.2f}x)"
                      for k in kernel_cols]
            + [f"{matrix[name]['max_divergence']:.1e}"]
            for name in matrix]
        matrix_table = render_table(
            ["backend"] + [f"{k} µs" for k in kernel_cols] + ["max |div|"],
            matrix_rows,
            title=(f"Kernel backends ({num_rows}-row frontier, "
                   f"F={config.feature_dim}); (ratio) = reference time "
                   "/ backend time"))
        write_report(report_name, table + "\n\n" + matrix_table)
        write_bench_json("kernels", {
            "workload": {
                "num_accounts": config.num_accounts,
                "num_timesteps": config.num_timesteps,
                "background_per_step": config.background_per_step,
                "operator_nnz": nnz,
                "avg_delta_edges": round(avg_delta, 1),
            },
            "inc_laplacian": {
                "speedup": round(result.inc_speedup, 3),
                "incremental_ms_per_commit": round(inc_s * 1e3 / steps, 4),
                "full_rebuild_ms_per_commit": round(full_s * 1e3 / steps,
                                                    4),
                "num_commits": steps,
                "max_abs_divergence": inc_div,
            },
            "spmm_rows": {
                "speedup": round(result.spmm_speedup, 3),
                "rows": num_rows,
                "num_vertices": dtdg.num_vertices,
                "max_abs_divergence": spmm_div,
            },
            "serving_refresh": {
                "speedup": round(result.refresh_speedup, 3),
                "model": config.serve_model,
                "num_refreshes": refreshes,
                "max_abs_divergence": r_div,
            },
            # per-backend entries deliberately avoid the guarded
            # "speedup" key names: backend availability varies by
            # machine and the perf guard must not fail on a backend the
            # runner doesn't have (numba is installed in the CI matrix
            # job only)
            "backend_matrix": matrix,
        })
    return result
