"""Benchmark harness regenerating every table and figure of the paper."""

from repro.bench.harness import (PointSpec, cached_point, run_point,
                                 speedup_series)
from repro.bench.reporting import (fmt, render_table, results_dir,
                                   write_bench_json, write_report)
from repro.bench.workloads import (BENCH_SCALE, DATASET_NAMES, GPU_COUNTS,
                                   MODEL_LABELS, bench_dtdg,
                                   calibrated_overrides, hardware_scale,
                                   raw_bench_dtdg)
from repro.bench.serving import (ServingBenchResult, ServingWorkloadConfig,
                                 build_event_schedule, build_query_plan,
                                 replay_stream, run_serving_benchmark)
from repro.bench.sharded import (ShardedBenchResult, ShardedScalePoint,
                                 ShardedWorkloadConfig,
                                 run_sharded_benchmark)
from repro.bench.exec import (ExecBenchResult, ExecScalePoint,
                              ExecWorkloadConfig, run_exec_benchmark)
from repro.bench.resilience import (ResilienceBenchResult,
                                    ResilienceModeResult,
                                    ResilienceWorkloadConfig,
                                    run_resilience_benchmark)
from repro.bench.store import (StoreBenchResult, StoreWorkloadConfig,
                               run_store_benchmark)
from repro.bench.kernels import (KernelsBenchResult, KernelWorkloadConfig,
                                 run_kernels_benchmark)
from repro.bench.training import (TrainingBenchResult,
                                  TrainingWorkloadConfig,
                                  run_training_benchmark)

__all__ = [
    "PointSpec", "run_point", "speedup_series", "cached_point",
    "render_table", "write_report", "write_bench_json", "results_dir",
    "fmt",
    "GPU_COUNTS", "DATASET_NAMES", "MODEL_LABELS", "BENCH_SCALE",
    "bench_dtdg", "raw_bench_dtdg", "hardware_scale",
    "calibrated_overrides",
    "ServingWorkloadConfig", "ServingBenchResult", "build_event_schedule",
    "build_query_plan", "replay_stream", "run_serving_benchmark",
    "ShardedWorkloadConfig", "ShardedScalePoint", "ShardedBenchResult",
    "run_sharded_benchmark",
    "ExecWorkloadConfig", "ExecScalePoint", "ExecBenchResult",
    "run_exec_benchmark",
    "ResilienceWorkloadConfig", "ResilienceModeResult",
    "ResilienceBenchResult", "run_resilience_benchmark",
    "StoreWorkloadConfig", "StoreBenchResult", "run_store_benchmark",
    "KernelWorkloadConfig", "KernelsBenchResult", "run_kernels_benchmark",
    "TrainingWorkloadConfig", "TrainingBenchResult",
    "run_training_benchmark",
]
