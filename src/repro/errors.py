"""Exception hierarchy for the repro library.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ShapeError(ReproError):
    """An operation received tensors with incompatible shapes."""


class GradientError(ReproError):
    """Backward pass invoked in an invalid state (e.g. no grad graph)."""


class KernelError(ReproError):
    """Kernel-backend failure: an unknown backend name, or operands
    pinned to different backends meeting in one kernel call.

    Backends own per-matrix cached state (the transpose cache, compiled
    kernel handles), so a kernel must run on the backend its sparse
    operand was constructed with — convert explicitly with
    :meth:`~repro.tensor.sparse.SparseMatrix.with_backend` instead of
    overriding per call."""


class DeviceOOM(ReproError):
    """A simulated device ran out of memory.

    Mirrors CUDA's out-of-memory error: raised when an allocation would push
    a :class:`repro.cluster.device.Device` beyond its configured capacity.
    """

    def __init__(self, message: str, requested: int = 0, capacity: int = 0,
                 in_use: int = 0) -> None:
        super().__init__(message)
        self.requested = requested
        self.capacity = capacity
        self.in_use = in_use


class CommunicationError(ReproError):
    """Collective communication invoked with mismatched participants."""


class PartitionError(ReproError):
    """A partitioner was given an infeasible problem (e.g. P > T)."""


class ConfigError(ReproError):
    """Invalid configuration value."""


class DatasetError(ReproError):
    """Dataset construction or validation failure."""


class StoreError(ReproError):
    """Temporal graph store failure: corrupt WAL record, checksum
    mismatch, or a log that does not apply to the resident state."""


class StoreCorruption(StoreError):
    """A WAL record *inside* the valid log body failed its CRC or
    framing check.  Unlike a torn tail (a crash mid-append, which scan
    tolerates by truncating), interior corruption means durable history
    was damaged after it was acknowledged — replay must stop loudly, not
    silently serve a truncated timeline."""


class ExecError(ReproError):
    """Execution-tier failure (transport, worker process, or router)."""


class WorkerDeadError(ExecError):
    """The worker behind a transport is gone: its process exited, its
    pipe broke, or a heartbeat found it unresponsive."""


class WorkerTimeoutError(ExecError):
    """An RPC did not complete within the transport's call timeout."""
