"""Snapshot compaction: periodic CSR bases that bound replay depth.

Without bases, time-travel to timestep ``t`` replays every delta from
the head of the log — O(t) work.  The compactor materializes the sealed
snapshot every ``base_interval`` timesteps into a columnar CSR file
under ``bases/``; :meth:`~repro.store.store.GraphStore.materialize`
then decodes the nearest base at or below ``t`` and replays only the
log tail between the base and ``t``, bounding work by the interval.

Bases are pure acceleration structures: deleting every base file loses
no data (the delta log is authoritative), and each base records the WAL
record index it corresponds to, so replay knows exactly where to resume.
Files are written atomically (temp + rename) and checksum-verified on
load; a base that fails either check is ignored, falling back to a
longer replay.
"""

from __future__ import annotations

import os
import re

from repro.errors import StoreError
from repro.graph.snapshot import GraphSnapshot
from repro.store import codec

__all__ = ["Compactor", "base_dir", "base_path", "write_base",
           "load_base", "list_bases"]

_BASE_RE = re.compile(r"^base_(\d{8})\.npz$")


def base_dir(store_path: str) -> str:
    return os.path.join(store_path, "bases")


def base_path(store_path: str, step: int) -> str:
    return os.path.join(base_dir(store_path), f"base_{step:08d}.npz")


def write_base(store_path: str, step: int, snapshot: GraphSnapshot,
               record_index: int) -> str:
    """Atomically write the base for ``step`` (state at WAL record
    ``record_index``); returns the final path."""
    os.makedirs(base_dir(store_path), exist_ok=True)
    path = base_path(store_path, step)
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(codec.encode_base(snapshot, step, record_index))
    os.replace(tmp, path)
    return path


def load_base(path: str) -> tuple[dict, GraphSnapshot]:
    """Decode and checksum-verify one base file."""
    if not os.path.exists(path):
        raise StoreError(f"no such base file: {path}")
    with open(path, "rb") as fh:
        return codec.decode_base(fh.read())


def list_bases(store_path: str) -> list[tuple[int, str]]:
    """Sorted ``(step, path)`` pairs of the bases present on disk."""
    directory = base_dir(store_path)
    if not os.path.isdir(directory):
        return []
    out = []
    for name in os.listdir(directory):
        match = _BASE_RE.match(name)
        if match:
            out.append((int(match.group(1)),
                        os.path.join(directory, name)))
    return sorted(out)


class Compactor:
    """Base-materialization policy bound to one store.

    ``interval=None`` disables automatic compaction (pure delta log —
    the full-replay baseline the store benchmark measures against).
    """

    def __init__(self, store, interval: int | None) -> None:
        if interval is not None and interval < 1:
            raise StoreError(f"base_interval must be >= 1, got {interval}")
        self.store = store
        self.interval = interval
        self.bases_written = 0
        self.base_bytes = 0

    def maybe_compact(self, step: int) -> bool:
        """Write a base for ``step`` if the interval says so."""
        if self.interval is None or step % self.interval != 0:
            return False
        self.compact(step)
        return True

    def compact(self, step: int) -> str:
        """Materialize the sealed snapshot at ``step`` into a base."""
        snapshot = self.store.materialize(step)
        path = write_base(self.store.path, step, snapshot,
                          self.store.seal_record_index(step))
        self.store._register_base(step, path)
        self.bases_written += 1
        self.base_bytes += os.path.getsize(path)
        return path
