"""Serving-engine state capture and restore (crash recovery).

A server's resident *graph* is recoverable from the delta log alone,
but its *temporal model state* (LSTM carries, evolved weights, M-product
history) is a function of the whole op history.  Rather than replay
from t=0, the serving tier periodically captures the engine state into
``<store>/engine/state_*.npz``; recovery then is

    model checkpoint  +  newest engine capture  +  WAL tail replay

which reproduces the pre-crash resident state exactly: the capture is a
bit-copy of the per-vertex arrays, and the tail ops re-run through the
same ``ingest_events`` / ``advance_time`` numerics the live server used.

Captures taken mid-step may contain rows the embedding cache had marked
dirty; the dirty set is captured alongside and re-marked on restore, so
a recovered server refreshes exactly what the crashed one would have.

For the sharded tier the capture reuses the rebalancer's wire format:
each shard exports its owned rows (:meth:`ShardEngine.export_state_rows`)
and a recovered tier reassembles every worker with
:meth:`ShardEngine.adopt_state`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StoreError

__all__ = ["capture_engine_state", "restore_engine_state",
           "capture_sharded_state", "unpack_sharded_state",
           "pack_shard_export", "unpack_shard_export"]


def _copy(a: np.ndarray) -> np.ndarray:
    return np.array(a, copy=True)


# ---------------------------------------------------------------------------
# single-worker engine (ModelServer)
# ---------------------------------------------------------------------------

def capture_engine_state(engine) -> tuple[dict, dict[str, np.ndarray]]:
    """Flatten an :class:`~repro.serve.engine.InferenceEngine`'s mutable
    state into ``(meta, arrays)`` ready for :func:`codec.pack_record`."""
    cache = engine.cache
    meta: dict = {"type": "engine", "engine_kind": engine.kind,
                  "steps": int(engine.steps),
                  "primed": bool(engine._primed),
                  "num_layers": len(engine.layers),
                  "use_clock": int(cache._use_clock)}
    arrays: dict[str, np.ndarray] = {
        "dirty": _copy(cache._dirty),
        "expanded": _copy(cache._expanded),
        # bounded-cache LRU state, so a recovered server evicts and
        # reloads exactly like the crashed one would have
        "evicted": _copy(cache._evicted),
        "last_used": _copy(cache._last_used),
    }
    for i, z in enumerate(cache.layer_outputs):
        arrays[f"layer_outputs/{i}"] = _copy(z)
    if engine.kind == "cdgcn":
        for name, carries in (("pre_carry", cache.pre_carry),
                              ("post_carry", cache.post_carry)):
            for i, (h, c) in enumerate(carries):
                arrays[f"{name}/{i}/h"] = _copy(h)
                arrays[f"{name}/{i}/c"] = _copy(c)
    elif engine.kind == "egcn":
        for i, (h, c) in enumerate(engine._weight_state):
            arrays[f"weight_state/{i}/h"] = _copy(h)
            arrays[f"weight_state/{i}/c"] = _copy(c)
        for i, w in enumerate(engine._current_weights):
            arrays[f"current_weights/{i}"] = _copy(w)
    elif engine.kind == "tmgcn":
        meta["history_lens"] = [len(frames) for frames in engine._history]
        meta["current_y_present"] = [y is not None
                                     for y in engine._current_y]
        for i, frames in enumerate(engine._history):
            for j, frame in enumerate(frames):
                arrays[f"history/{i}/{j}"] = _copy(frame)
        for i, y in enumerate(engine._current_y):
            if y is not None:
                arrays[f"current_y/{i}"] = _copy(y)
    return meta, arrays


def restore_engine_state(engine, meta: dict,
                         arrays: dict[str, np.ndarray]) -> None:
    """Overwrite a freshly constructed engine with a captured state."""
    if meta.get("type") != "engine":
        raise StoreError("capture is not a single-engine state record")
    if meta["engine_kind"] != engine.kind:
        raise StoreError(
            f"capture holds {meta['engine_kind']!r} state, engine is "
            f"{engine.kind!r} — wrong model checkpoint?")
    if meta["num_layers"] != len(engine.layers):
        raise StoreError("capture layer count does not match the model")
    cache = engine.cache
    for i in range(len(cache.layer_outputs)):
        cache.layer_outputs[i] = _copy(arrays[f"layer_outputs/{i}"])
    if engine.kind == "cdgcn":
        for name in ("pre_carry", "post_carry"):
            carries = getattr(cache, name)
            for i in range(len(carries)):
                carries[i] = (_copy(arrays[f"{name}/{i}/h"]),
                              _copy(arrays[f"{name}/{i}/c"]))
    elif engine.kind == "egcn":
        engine._weight_state = [
            (_copy(arrays[f"weight_state/{i}/h"]),
             _copy(arrays[f"weight_state/{i}/c"]))
            for i in range(len(engine._weight_state))]
        engine._current_weights = [
            _copy(arrays[f"current_weights/{i}"])
            for i in range(len(engine._current_weights))]
    elif engine.kind == "tmgcn":
        engine._history = [
            [_copy(arrays[f"history/{i}/{j}"]) for j in range(length)]
            for i, length in enumerate(meta["history_lens"])]
        engine._current_y = [
            _copy(arrays[f"current_y/{i}"]) if present else None
            for i, present in enumerate(meta["current_y_present"])]
    engine.steps = int(meta["steps"])
    engine._primed = bool(meta["primed"])
    cache._dirty = np.asarray(arrays["dirty"], dtype=np.int64).copy()
    cache._expanded = np.asarray(arrays["expanded"],
                                 dtype=np.int64).copy()
    cache._evicted = np.asarray(arrays["evicted"], dtype=np.int64).copy()
    cache._last_used = np.asarray(arrays["last_used"],
                                  dtype=np.int64).copy()
    cache._use_clock = int(meta["use_clock"])


# ---------------------------------------------------------------------------
# sharded tier (ShardedServer)
# ---------------------------------------------------------------------------

def _pack_export(prefix: str, state: dict, kind: str, meta_shard: dict,
                 arrays: dict[str, np.ndarray]) -> None:
    for i, z in enumerate(state["layer_outputs"]):
        arrays[f"{prefix}/layer_outputs/{i}"] = _copy(z)
    if kind == "cdgcn":
        for name in ("pre_carry", "post_carry"):
            for i, (h, c) in enumerate(state[name]):
                arrays[f"{prefix}/{name}/{i}/h"] = _copy(h)
                arrays[f"{prefix}/{name}/{i}/c"] = _copy(c)
    elif kind == "egcn":
        for i, (h, c) in enumerate(state["weight_state"]):
            arrays[f"{prefix}/weight_state/{i}/h"] = _copy(h)
            arrays[f"{prefix}/weight_state/{i}/c"] = _copy(c)
        for i, w in enumerate(state["current_weights"]):
            arrays[f"{prefix}/current_weights/{i}"] = _copy(w)
    elif kind == "tmgcn":
        meta_shard["history_lens"] = [len(f) for f in state["history"]]
        meta_shard["current_y_present"] = [y is not None
                                          for y in state["current_y"]]
        for i, frames in enumerate(state["history"]):
            for j, frame in enumerate(frames):
                arrays[f"{prefix}/history/{i}/{j}"] = _copy(frame)
        for i, y in enumerate(state["current_y"]):
            if y is not None:
                arrays[f"{prefix}/current_y/{i}"] = _copy(y)


def _unpack_export(prefix: str, kind: str, num_layers: int,
                   meta_shard: dict,
                   arrays: dict[str, np.ndarray]) -> dict:
    state: dict = {"layer_outputs": [arrays[f"{prefix}/layer_outputs/{i}"]
                                     for i in range(num_layers)]}
    if kind == "cdgcn":
        for name in ("pre_carry", "post_carry"):
            state[name] = [(arrays[f"{prefix}/{name}/{i}/h"],
                            arrays[f"{prefix}/{name}/{i}/c"])
                           for i in range(num_layers)]
    elif kind == "egcn":
        state["weight_state"] = [(arrays[f"{prefix}/weight_state/{i}/h"],
                                  arrays[f"{prefix}/weight_state/{i}/c"])
                                 for i in range(num_layers)]
        state["current_weights"] = [arrays[f"{prefix}/current_weights/{i}"]
                                    for i in range(num_layers)]
    elif kind == "tmgcn":
        state["history"] = [
            [arrays[f"{prefix}/history/{i}/{j}"] for j in range(length)]
            for i, length in enumerate(meta_shard["history_lens"])]
        state["current_y"] = [
            arrays[f"{prefix}/current_y/{i}"] if present else None
            for i, present in enumerate(meta_shard["current_y_present"])]
    return state


# public aliases: the exec tier assembles sharded captures from RPC
# exports worker by worker, so it needs the per-shard (en|de)coders —
# same wire format as the in-process sharded capture above
pack_shard_export = _pack_export
unpack_shard_export = _unpack_export


def capture_sharded_state(server) -> tuple[dict, dict[str, np.ndarray]]:
    """Capture a :class:`~repro.serve.sharded.router.ShardedServer` as
    (plan, per-shard owned-row exports, pending dirty rows)."""
    kind = server.worker(0).engine.kind
    meta: dict = {"type": "sharded", "engine_kind": kind,
                  "steps": int(server.worker(0).engine.steps),
                  "num_shards": server.num_shards,
                  "replicas": server.replicas,
                  "num_layers": server.model.num_layers,
                  "shards": []}
    arrays: dict[str, np.ndarray] = {
        "owner": _copy(server.plan.owner).astype(np.int64)}
    dirty = np.empty(0, dtype=np.int64)
    for s in range(server.num_shards):
        worker = server.worker(s)
        block = server.plan.block(s)
        state = worker.engine.export_state_rows(block)
        meta_shard: dict = {}
        _pack_export(f"shard/{s}", state, kind, meta_shard, arrays)
        meta["shards"].append(meta_shard)
        dirty = np.union1d(dirty, worker.engine.cache.dirty)
    arrays["dirty"] = dirty
    return meta, arrays


def unpack_sharded_state(meta: dict, arrays: dict[str, np.ndarray]
                         ) -> tuple[np.ndarray, list, np.ndarray]:
    """Decode a sharded capture into ``(owner, exports, dirty)`` where
    ``exports`` is the ``[(block_rows, state), ...]`` list every
    rebuilt worker adopts."""
    if meta.get("type") != "sharded":
        raise StoreError("capture is not a sharded-tier state record")
    owner = np.asarray(arrays["owner"], dtype=np.int64)
    kind = meta["engine_kind"]
    exports = []
    for s in range(meta["num_shards"]):
        block = np.flatnonzero(owner == s)
        state = _unpack_export(f"shard/{s}", kind, meta["num_layers"],
                               meta["shards"][s], arrays)
        exports.append((block, state))
    dirty = np.asarray(arrays["dirty"], dtype=np.int64)
    return owner, exports, dirty
