"""Temporal graph store: delta-log WAL, snapshot compaction, time-travel
views, and crash-recoverable serving state.

The paper's core data-movement insight — consecutive DTDG snapshots are
cheap to represent as graph differences (§3.2, Fig. 4) — applied to
*durability*: the on-disk format of a dynamic graph is its delta log.
An append-only WAL holds one checksummed record per timestep transition
(:class:`~repro.graph.diff.SnapshotDiff`) or live
:class:`~repro.serve.ingest.EdgeEvent` batch; a compactor periodically
materializes CSR-packed base snapshots so time-travel replays a bounded
log tail; and the serving tier logs every ingested batch *before*
acknowledging it, making the resident graph and the engine's temporal
state exactly recoverable after a crash.
"""

from repro.store.wal import (DeltaLog, WalRecord, KIND_DIFF, KIND_EVENTS,
                             KIND_FEATURES, KIND_META, KIND_SEAL)
from repro.store.codec import (edge_checksum, fold_events, pack_record,
                               unpack_record)
from repro.store.compact import Compactor, list_bases, load_base, write_base
from repro.store.store import GraphStore, StoreView
from repro.store.recovery import (capture_engine_state,
                                  capture_sharded_state,
                                  restore_engine_state,
                                  unpack_sharded_state)

__all__ = [
    "DeltaLog", "WalRecord",
    "KIND_META", "KIND_DIFF", "KIND_EVENTS", "KIND_SEAL", "KIND_FEATURES",
    "edge_checksum", "fold_events", "pack_record", "unpack_record",
    "Compactor", "list_bases", "load_base", "write_base",
    "GraphStore", "StoreView",
    "capture_engine_state", "restore_engine_state",
    "capture_sharded_state", "unpack_sharded_state",
]
