"""The temporal graph store front door.

A :class:`GraphStore` is a directory::

    <path>/
      wal.log            append-only delta log (repro.store.wal framing)
      bases/base_*.npz   compacted CSR snapshots (acceleration only)
      engine/state_*.npz serving-engine state captures (crash recovery)

The WAL is authoritative.  Its record stream defines a timeline: every
``DIFF`` record both mutates the graph and **seals** the next timestep;
``EVENTS`` records mutate the live state *within* the current timestep
(a serving tier's intra-step ingestion); a ``SEAL`` record closes a
timestep without changing topology (a timestep boundary crossed by
``advance_time()``).  Sealed timestep ``t`` is therefore the graph state
immediately after the ``t``-th sealing record — which is exactly the
in-memory ``DTDG`` snapshot when the store was built by
:meth:`append_snapshot` per timestep.

``materialize(t)`` decodes the nearest compacted base at or below ``t``
and replays only the log tail, so time-travel cost is bounded by the
compaction interval instead of ``t``.  ``window(t0, t1)`` returns a
:class:`StoreView` — a lazy ``DTDG`` whose snapshots decode on access
(with sequential-access hint chaining), which the trainers consume
out-of-core.
"""

from __future__ import annotations

import os
import re
from collections import OrderedDict
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import StoreError
from repro.graph.diff import SnapshotDiff, apply_diff, diff_snapshots
from repro.graph.dtdg import DTDG, validate_feature_frames
from repro.graph.snapshot import GraphSnapshot
from repro.obs import Telemetry
from repro.obs.registry import Histogram
from repro.store import codec
from repro.store.compact import Compactor, list_bases, load_base
from repro.store.wal import (KIND_DIFF, KIND_EVENTS, KIND_FEATURES,
                             KIND_META, KIND_SEAL, DeltaLog)

__all__ = ["GraphStore", "StoreView"]

WAL_NAME = "wal.log"
ENGINE_DIR = "engine"
_STATE_RE = re.compile(r"^state_(\d{8})\.npz$")

_SEALING = (KIND_DIFF, KIND_SEAL)


def _empty_snapshot(n: int) -> GraphSnapshot:
    return GraphSnapshot(n, np.empty((0, 2), dtype=np.int64))


class GraphStore:
    """Durable, time-travelable home of one dynamic graph.

    Construct through :meth:`create`, :meth:`open` or
    :meth:`from_dtdg`; the raw constructor is shared plumbing.
    """

    def __init__(self, path: str, *, _meta: dict | None = None,
                 sync: bool = False,
                 telemetry: Telemetry | None = None) -> None:
        self.path = path
        # a serving tier that attaches this store rebinds ``telemetry``
        # to its own, so store spans nest under serving spans and store
        # counters export from one registry; standalone stores keep this
        # private tracing-off default
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.replay_depth = Histogram(reservoir_size=1024, seed=0)
        creating = _meta is not None
        wal_path = os.path.join(path, WAL_NAME)
        if creating:
            if os.path.exists(wal_path) and os.path.getsize(wal_path):
                raise StoreError(f"store already exists at {path}")
            os.makedirs(path, exist_ok=True)
        elif not os.path.exists(wal_path):
            raise StoreError(f"no graph store at {path}")
        self.wal = DeltaLog(wal_path, sync=sync)
        self.records_replayed = 0
        self._mat_cache: OrderedDict[int, GraphSnapshot] = OrderedDict()
        self._mat_cache_size = 4
        if creating:
            self.wal.append(KIND_META, codec.pack_record(_meta, {}))
            meta = _meta
        else:
            if self.wal.num_records == 0 or \
                    self.wal.kind_of(0) != KIND_META:
                raise StoreError(f"store at {path} has no header record")
            meta, _ = codec.unpack_record(self.wal.read(0).payload)
        self.num_vertices = int(meta["num_vertices"])
        self.name = str(meta.get("name", "store"))
        self.compactor = Compactor(self, meta.get("base_interval"))
        self._index_log()
        # base index cached in memory: bases only appear through this
        # store's own Compactor (which registers them), so replay paths
        # avoid a directory scan per materialization
        self._base_index = list_bases(self.path)
        self._tip = self._state_at_record(self.wal.num_records - 1)

    # -- construction -------------------------------------------------------------------
    @classmethod
    def create(cls, path: str, num_vertices: int, *, name: str = "store",
               base_interval: int | None = 8, sync: bool = False,
               telemetry: Telemetry | None = None) -> "GraphStore":
        """Initialize an empty store (zero sealed timesteps)."""
        if num_vertices <= 0:
            raise StoreError(f"num_vertices must be positive, got "
                             f"{num_vertices}")
        meta = {"kind": "meta", "num_vertices": int(num_vertices),
                "name": name, "base_interval": base_interval,
                "version": 1}
        return cls(path, _meta=meta, sync=sync, telemetry=telemetry)

    @classmethod
    def open(cls, path: str, *, sync: bool = False,
             telemetry: Telemetry | None = None) -> "GraphStore":
        """Open an existing store, tolerating a torn WAL tail."""
        return cls(path, sync=sync, telemetry=telemetry)

    @classmethod
    def from_dtdg(cls, path: str, dtdg: DTDG, *,
                  base_interval: int | None = 8,
                  features: bool = True) -> "GraphStore":
        """Encode a whole in-memory DTDG: first snapshot as a full
        insert, the rest as GD deltas, features alongside."""
        store = cls.create(path, dtdg.num_vertices, name=dtdg.name,
                           base_interval=base_interval)
        for t, snap in enumerate(dtdg.snapshots):
            store.append_snapshot(snap)
            if features and dtdg.features is not None:
                store.append_features(dtdg.features[t])
        return store

    # -- log index ----------------------------------------------------------------------
    def _index_log(self) -> None:
        self._seals: list[int] = []
        self._features_rec: dict[int, int] = {}
        self._events_since_seal = 0
        for idx, kind in enumerate(self.wal.kinds()):
            if kind in _SEALING:
                self._seals.append(idx)
                self._events_since_seal = 0
            elif kind == KIND_EVENTS:
                self._events_since_seal += 1
            elif kind == KIND_FEATURES:
                # features always attach to the most recently sealed step
                self._features_rec[len(self._seals) - 1] = idx

    # -- geometry -----------------------------------------------------------------------
    @property
    def num_timesteps(self) -> int:
        """Number of sealed timesteps."""
        return len(self._seals)

    @property
    def tip(self) -> GraphSnapshot:
        """Live graph state after every record (sealed + live events)."""
        return self._tip

    @property
    def wal_nbytes(self) -> int:
        return self.wal.nbytes

    @property
    def base_nbytes(self) -> int:
        return sum(os.path.getsize(p) for _, p in self._base_index)

    def _register_base(self, step: int, path: str) -> None:
        """Fold a freshly written base into the cached index."""
        self._base_index = sorted(
            [(s, p) for s, p in self._base_index if s != step]
            + [(step, path)])

    def seal_record_index(self, step: int) -> int:
        if not 0 <= step < len(self._seals):
            raise StoreError(f"store holds {len(self._seals)} sealed "
                             f"timesteps, asked for step {step}")
        return self._seals[step]

    # -- appends ------------------------------------------------------------------------
    def append_snapshot(self, snapshot: GraphSnapshot) -> SnapshotDiff:
        """Seal the next timestep as ``snapshot`` (stored as a GD delta
        against the live tip)."""
        if snapshot.num_vertices != self.num_vertices:
            raise StoreError("snapshot vertex set does not match store")
        diff = diff_snapshots(self._tip, snapshot)
        self.append_diff(diff)
        return diff

    def append_diff(self, diff: SnapshotDiff) -> GraphSnapshot:
        """Seal the next timestep by applying ``diff`` to the live tip."""
        with self.telemetry.trace("store.append", kind="diff"):
            step = len(self._seals)
            payload = codec.encode_diff(self._tip, diff, step)
            curr = apply_diff(self._tip, diff)
            idx = self.wal.append(KIND_DIFF, payload)
            self._seals.append(idx)
            self._events_since_seal = 0
            self._tip = curr
            self.compactor.maybe_compact(step)
        return curr

    def append_events(self, events: Iterable) -> int:
        """Log one live edge-event batch (intra-step mutation); returns
        the WAL record index.  The fold is validated before the bytes
        are committed, so a bad batch never lands in the log."""
        events = list(events)
        with self.telemetry.trace("store.append", kind="events",
                                  events=len(events)):
            new_tip = codec.fold_events(self._tip, events)
            idx = self.wal.append(KIND_EVENTS, codec.encode_events(events))
            self._tip = new_tip
            self._events_since_seal += 1
        return idx

    def seal_step(self) -> int:
        """Close the current timestep without a topology rebase (the
        serving tier's plain ``advance_time()``); returns the step."""
        with self.telemetry.trace("store.append", kind="seal"):
            step = len(self._seals)
            payload = codec.pack_record(
                {"kind": "seal", "step": step,
                 "result_checksum": codec.edge_checksum(self._tip)}, {})
            idx = self.wal.append(KIND_SEAL, payload)
            self._seals.append(idx)
            self._events_since_seal = 0
            self.compactor.maybe_compact(step)
        return step

    def append_features(self, frame: np.ndarray) -> int:
        """Attach a feature frame to the most recently sealed timestep."""
        if not self._seals:
            raise StoreError("no sealed timestep to attach features to")
        frame = np.asarray(frame, dtype=np.float64)
        if frame.ndim != 2 or frame.shape[0] != self.num_vertices:
            raise StoreError(
                f"feature frame shape {frame.shape} does not cover the "
                f"{self.num_vertices}-vertex set")
        step = len(self._seals) - 1
        idx = self.wal.append(KIND_FEATURES,
                              codec.encode_features(frame, step))
        self._features_rec[step] = idx
        return idx

    # -- replay engine -------------------------------------------------------------------
    def _state_at_record(self, idx: int, *,
                         start: tuple[int, GraphSnapshot] | None = None
                         ) -> GraphSnapshot:
        """Graph state immediately after record ``idx``.

        The starting point is the best state at or before ``idx``: the
        caller's ``start`` hint (a ``(record_index, snapshot)`` pair
        sequential readers chain) when nothing newer exists, else the
        newest usable compacted base — seal record indices are known
        from the in-memory index, so a base file is only decoded when
        it would actually beat the hint.
        """
        if idx < 0 or self.wal.num_records == 0:
            return _empty_snapshot(self.num_vertices)
        base_idx, state = 0, None
        if start is not None and 0 <= start[0] <= idx:
            base_idx, state = start
        for step, path in reversed(self._base_index):
            if step >= len(self._seals):
                continue
            rec = self._seals[step]
            if rec > idx:
                continue
            if rec <= base_idx and state is not None:
                break  # the hint is at least as fresh as this base
            try:
                meta, snap = load_base(path)
            except StoreError:
                continue  # corrupt/partial base: fall back to older ones
            if meta["record_index"] != rec or \
                    snap.num_vertices != self.num_vertices:
                continue
            base_idx, state = rec, snap
            break
        if state is None:
            state = _empty_snapshot(self.num_vertices)
        depth = 0
        for record in self.wal.scan_from(base_idx + 1, idx + 1):
            if record.kind == KIND_DIFF:
                _, state, _ = codec.decode_diff(record.payload, state)
                self.records_replayed += 1
                depth += 1
            elif record.kind == KIND_EVENTS:
                state = codec.fold_events(
                    state, codec.decode_events(record.payload))
                self.records_replayed += 1
                depth += 1
            elif record.kind == KIND_SEAL:
                meta, _ = codec.unpack_record(record.payload)
                if meta["result_checksum"] != codec.edge_checksum(state):
                    raise StoreError(
                        f"replay diverged: state at seal #{meta['step']} "
                        f"fails the sealed checksum")
        # the distribution of tail-replay lengths is the store's
        # time-travel cost profile (bounded by the compaction interval)
        self.replay_depth.observe(depth)
        return state

    # -- time travel ---------------------------------------------------------------------
    def materialize(self, t: int, *, cached: bool = True,
                    hint: tuple[int, GraphSnapshot] | None = None
                    ) -> GraphSnapshot:
        """The graph at sealed timestep ``t``.

        ``hint=(t0, snapshot)`` short-circuits the base lookup when the
        caller already holds an earlier materialized step (sequential
        readers chain hints and pay one delta per step).
        """
        idx = self.seal_record_index(t)
        if cached and t in self._mat_cache:
            self._mat_cache.move_to_end(t)
            return self._mat_cache[t]
        if t == len(self._seals) - 1 and self._events_since_seal == 0:
            snap = self._tip
        else:
            start = None
            if hint is not None and 0 <= hint[0] <= t:
                start = (self._seals[hint[0]], hint[1])
            with self.telemetry.trace("store.materialize", step=t,
                                      hinted=start is not None):
                snap = self._state_at_record(idx, start=start)
        if cached:
            self._mat_cache[t] = snap
            while len(self._mat_cache) > self._mat_cache_size:
                self._mat_cache.popitem(last=False)
        return snap

    def replay_to(self, t: int) -> GraphSnapshot:
        """Decode sealed timestep ``t`` straight from disk (nearest base
        + log tail replay), bypassing the live-tip and LRU
        short-circuits — exactly the work a cold open or crash recovery
        pays, and what the store benchmark measures."""
        return self._state_at_record(self.seal_record_index(t))

    def window(self, start: int = 0, stop: int | None = None, *,
               name: str | None = None) -> "StoreView":
        """Lazy DTDG view over sealed timesteps ``[start, stop)``."""
        stop = len(self._seals) if stop is None else stop
        return StoreView(self, start, stop, name=name)

    def features_for(self, step: int) -> np.ndarray | None:
        """Feature frame attached to sealed ``step`` (``None`` if absent)."""
        idx = self._features_rec.get(step)
        if idx is None:
            return None
        rec_step, frame = codec.decode_features(self.wal.read(idx).payload)
        if rec_step != step:
            raise StoreError(
                f"feature record for step {step} claims step {rec_step}")
        return frame

    def load_features(self, start: int,
                      stop: int) -> list[np.ndarray] | None:
        """Frames for ``[start, stop)``; ``None`` unless every step has
        one (a DTDG's features are all-or-nothing)."""
        if any(t not in self._features_rec for t in range(start, stop)):
            return None
        return [self.features_for(t) for t in range(start, stop)]

    def iter_snapshots(self, start: int = 0, stop: int | None = None
                       ) -> Iterator[GraphSnapshot]:
        """Stream sealed snapshots in order, one delta apart."""
        stop = len(self._seals) if stop is None else stop
        prev: tuple[int, GraphSnapshot] | None = None
        for t in range(start, stop):
            snap = self.materialize(t, cached=False, hint=prev)
            prev = (t, snap)
            yield snap

    # -- observability -------------------------------------------------------------------
    def collect_metrics(self, reg) -> None:
        """Sync the store's authoritative counters into ``reg``.

        A serving tier calls this with its own registry at export time;
        a standalone store can call it against any registry (e.g.
        ``store.collect_metrics(store.telemetry.registry)``).
        """
        reg.counter("store_wal_records_total",
                    "Valid records in the WAL").set_to(self.wal.num_records)
        reg.gauge("store_wal_bytes",
                  "Valid WAL bytes (torn tail excluded)").set(
            self.wal.nbytes)
        reg.counter("store_wal_appends_total",
                    "Appends issued by this process").set_to(
            self.wal.appends)
        reg.counter("store_wal_append_bytes_total",
                    "Framed bytes appended by this process").set_to(
            self.wal.append_bytes)
        reg.counter("store_wal_fsyncs_total",
                    "fsyncs forced by appends (sync=True only)").set_to(
            self.wal.fsyncs)
        reg.counter("store_timesteps_total",
                    "Sealed timesteps").set_to(self.num_timesteps)
        reg.counter("store_compaction_bases_total",
                    "Compacted bases written").set_to(
            self.compactor.bases_written)
        reg.gauge("store_base_bytes",
                  "Bytes across all compacted bases").set(self.base_nbytes)
        reg.counter("store_records_replayed_total",
                    "WAL records replayed by materializations").set_to(
            self.records_replayed)
        reg.attach("store_replay_depth", self.replay_depth,
                   "WAL records replayed per materialization "
                   "(bounded by the compaction interval)")

    # -- integrity -----------------------------------------------------------------------
    def verify(self) -> int:
        """Replay the entire log from the head, checking every record
        CRC, delta checksum and seal checksum; returns the number of
        records verified.  Raises :class:`StoreError` on the first
        inconsistency."""
        state = _empty_snapshot(self.num_vertices)
        count = 0
        for record in self.wal.scan():
            if record.kind == KIND_DIFF:
                _, state, _ = codec.decode_diff(record.payload, state)
            elif record.kind == KIND_EVENTS:
                state = codec.fold_events(
                    state, codec.decode_events(record.payload))
            elif record.kind == KIND_SEAL:
                meta, _ = codec.unpack_record(record.payload)
                if meta["result_checksum"] != codec.edge_checksum(state):
                    raise StoreError(
                        f"seal #{meta['step']} checksum mismatch")
            count += 1
        if codec.edge_checksum(state) != codec.edge_checksum(self._tip):
            raise StoreError("verified log state disagrees with the "
                             "resident tip")
        return count

    # -- serving-engine state captures ----------------------------------------------------
    def _engine_dir(self) -> str:
        return os.path.join(self.path, ENGINE_DIR)

    def save_engine_state(self, meta: dict,
                          arrays: dict[str, np.ndarray], *,
                          keep: int = 2) -> str:
        """Persist a serving-engine state capture tied to the current
        end of the log; prunes captures beyond the newest ``keep``."""
        record_index = self.wal.num_records - 1
        meta = dict(meta)
        meta["record_index"] = record_index
        os.makedirs(self._engine_dir(), exist_ok=True)
        path = os.path.join(self._engine_dir(),
                            f"state_{record_index:08d}.npz")
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(codec.pack_record(meta, arrays))
        os.replace(tmp, path)
        for _, old in self._engine_states()[:-keep]:
            if old != path:
                os.remove(old)
        return path

    def _engine_states(self) -> list[tuple[int, str]]:
        directory = self._engine_dir()
        if not os.path.isdir(directory):
            return []
        out = []
        for fname in os.listdir(directory):
            match = _STATE_RE.match(fname)
            if match:
                out.append((int(match.group(1)),
                            os.path.join(directory, fname)))
        return sorted(out)

    def latest_engine_state(self) -> tuple[dict, dict] | None:
        """Newest decodable engine-state capture as ``(meta, arrays)``
        (``meta['record_index']`` says where WAL tail replay resumes)."""
        for record_index, path in reversed(self._engine_states()):
            try:
                with open(path, "rb") as fh:
                    meta, arrays = codec.unpack_record(fh.read())
            except (StoreError, OSError):
                continue  # torn capture: fall back to the previous one
            if meta.get("record_index") == record_index:
                return meta, arrays
        return None

    def replay_tail(self, after_record: int, *,
                    start: GraphSnapshot | None = None
                    ) -> Iterator[tuple[str, object]]:
        """Yield serving operations recorded after ``after_record``:
        ``("events", [EdgeEvent...])`` for intra-step batches,
        ``("advance", None)`` for topology-free timestep seals, and
        ``("rebase", (snapshot, diff))`` for snapshot-sealed boundaries
        — the decoded GD delta rides along so a recovering server's
        :class:`~repro.graph.inc_laplacian.LaplacianMaintainer` can
        apply the rebase incrementally instead of rebuilding its
        operator at every replayed boundary.

        A recovering server replays these through its normal
        ``ingest_events`` / ``advance_time`` paths.  ``start`` is the
        graph state at ``after_record`` when the caller already
        materialized it (recovery always has — rebuilding it here would
        replay the log prefix a second time).
        """
        state = start if start is not None \
            else self._state_at_record(after_record)
        for record in self.wal.scan_from(after_record + 1):
            if record.kind == KIND_EVENTS:
                events = codec.decode_events(record.payload)
                state = codec.fold_events(state, events)
                yield ("events", events)
            elif record.kind == KIND_DIFF:
                diff, state, _ = codec.decode_diff(record.payload, state)
                yield ("rebase", (state, diff))
            elif record.kind == KIND_SEAL:
                yield ("advance", None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"GraphStore(path={self.path!r}, N={self.num_vertices}, "
                f"T={self.num_timesteps}, records={self.wal.num_records})")


class _LazySnapshots(Sequence):
    """Sequence of store snapshots decoding on access.

    Holds a small LRU of decoded snapshots plus the last-returned step,
    so sequential scans (the trainers' access pattern) pay one delta
    per step instead of a replay from the nearest base.
    """

    def __init__(self, store: GraphStore, start: int, stop: int,
                 cache_size: int = 4) -> None:
        self._store = store
        self._start = start
        self._stop = stop
        self._cache: OrderedDict[int, GraphSnapshot] = OrderedDict()
        self._cache_size = max(1, cache_size)

    def __len__(self) -> int:
        return self._stop - self._start

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self[j] for j in range(*i.indices(len(self)))]
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(i)
        t = self._start + i
        if t in self._cache:
            self._cache.move_to_end(t)
            return self._cache[t]
        hint = None
        if t - 1 in self._cache:
            hint = (t - 1, self._cache[t - 1])
        snap = self._store.materialize(t, hint=hint)
        self._cache[t] = snap
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        return snap

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]


class StoreView(DTDG):
    """A lazy, read-only DTDG over a store window ``[start, stop)``.

    Quacks like :class:`~repro.graph.dtdg.DTDG` (the trainers and
    preprocessing take it unchanged) but decodes snapshots on demand
    instead of holding the whole window in memory.  Feature frames come
    from the store's feature records when every step in the window has
    one; :meth:`set_features` overrides them in memory (e.g. the
    trainer attaching degree features).
    """

    def __init__(self, store: GraphStore, start: int, stop: int, *,
                 name: str | None = None, cache_size: int = 4) -> None:
        # deliberately skips DTDG.__init__: snapshots stay lazy
        if not 0 <= start < stop <= store.num_timesteps:
            raise StoreError(
                f"window [{start}, {stop}) outside the store's "
                f"{store.num_timesteps} sealed timesteps")
        self._store = store
        self._start = start
        self._stop = stop
        self.name = name or f"{store.name}[{start}:{stop}]"
        self._lazy = _LazySnapshots(store, start, stop, cache_size)
        self._features: list[np.ndarray] | None = None
        self._features_loaded = False

    @property
    def store(self) -> GraphStore:
        return self._store

    @property
    def snapshots(self):  # type: ignore[override]
        return self._lazy

    @property
    def num_vertices(self) -> int:
        return self._store.num_vertices

    @property
    def num_timesteps(self) -> int:
        return self._stop - self._start

    @property
    def features(self) -> list[np.ndarray] | None:  # type: ignore[override]
        if not self._features_loaded:
            self._features = self._store.load_features(self._start,
                                                       self._stop)
            self._features_loaded = True
        return self._features

    def set_features(self, features) -> None:
        self._features = validate_feature_frames(
            features, self.num_vertices, len(self))
        self._features_loaded = True

    def slice_time(self, start: int, stop: int,
                   name: str | None = None) -> DTDG:
        if self._features_loaded and self._features is not None:
            return DTDG(list(self._lazy[start:stop]),
                        self._features[start:stop],
                        name=name or f"{self.name}[{start}:{stop}]")
        return StoreView(self._store, self._start + start,
                         self._start + stop, name=name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"StoreView({self._store.path!r}, "
                f"[{self._start}:{self._stop}), N={self.num_vertices})")
