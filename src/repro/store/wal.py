"""The append-only delta log (write-ahead log) of the temporal store.

One file, one framing: every record is

    ``magic(4) | kind(u8) | length(u64 LE) | crc32(u32 LE) | payload``

where the CRC covers the payload bytes.  Appends go to the tail only;
nothing is ever rewritten in place.  A crash mid-append leaves a torn
record at the tail, which :meth:`DeltaLog.scan` detects (bad magic,
short payload, or CRC mismatch) and treats as end-of-log; the next
append truncates the torn bytes first.

A bad frame *followed by more valid log* is a different animal: a torn
tail is the last thing in the file by construction (appends are
tail-only), so valid frames after a bad one mean acknowledged history
was damaged in place — a flipped bit, a hole punched mid-file.  The
scan probes past every bad frame and raises
:class:`~repro.errors.StoreCorruption` if any later frame still parses,
instead of silently truncating replay at the damage point.

Payload semantics live one layer up (:mod:`repro.store.codec`); this
module only knows bytes and kinds.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from typing import Iterator

from repro.errors import StoreCorruption, StoreError

__all__ = ["DeltaLog", "WalRecord",
           "KIND_META", "KIND_DIFF", "KIND_EVENTS", "KIND_SEAL",
           "KIND_FEATURES"]

MAGIC = b"RGW1"
_HEADER = struct.Struct("<4sBQI")  # magic, kind, payload length, crc32

KIND_META = 0      # store header (first record)
KIND_DIFF = 1      # SnapshotDiff sealing one timestep
KIND_EVENTS = 2    # live EdgeEvent batch within the current timestep
KIND_SEAL = 3      # timestep boundary without a topology rebase
KIND_FEATURES = 4  # feature frame for a sealed timestep

_KNOWN_KINDS = frozenset({KIND_META, KIND_DIFF, KIND_EVENTS, KIND_SEAL,
                          KIND_FEATURES})


@dataclass(frozen=True)
class WalRecord:
    """One decoded log frame."""

    index: int      # record ordinal in the log
    kind: int
    payload: bytes
    offset: int     # byte offset of the frame start


class DeltaLog:
    """Append-only record log with per-record CRC framing.

    Parameters
    ----------
    path:
        Log file (created empty if absent).
    sync:
        ``True`` fsyncs after every append — full durability at the
        cost of one syscall round-trip per record.  The default flushes
        to the OS without forcing the disk, which already survives
        process crashes (the failure mode the serving tier recovers
        from).
    """

    def __init__(self, path: str, *, sync: bool = False) -> None:
        self.path = path
        self.sync = sync
        # lifetime I/O counters (appends this process issued — unlike
        # num_records/nbytes these do not count pre-existing log content)
        self.appends = 0
        self.append_bytes = 0
        self.fsyncs = 0
        self._offsets: list[tuple[int, int, int]] = []  # (offset, kind, len)
        self._valid_bytes = 0
        if not os.path.exists(path):
            with open(path, "wb"):
                pass
        self._rescan()

    # -- geometry ---------------------------------------------------------------------
    @property
    def num_records(self) -> int:
        return len(self._offsets)

    def __len__(self) -> int:
        return len(self._offsets)

    @property
    def nbytes(self) -> int:
        """Valid log bytes (torn tail bytes excluded)."""
        return self._valid_bytes

    def kind_of(self, index: int) -> int:
        return self._offsets[index][1]

    def kinds(self) -> list[int]:
        return [kind for _, kind, _ in self._offsets]

    # -- scanning ---------------------------------------------------------------------
    def _rescan(self) -> None:
        self._offsets = []
        self._valid_bytes = 0
        for record in self._scan_file():
            self._offsets.append((record.offset, record.kind,
                                  len(record.payload)))
            self._valid_bytes = record.offset + _HEADER.size \
                + len(record.payload)

    def _scan_file(self) -> Iterator[WalRecord]:
        with open(self.path, "rb") as fh:
            fh.seek(0, 2)
            file_size = fh.tell()
            fh.seek(0)
            index = 0
            offset = 0
            while True:
                header = fh.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    return  # clean end or torn header
                magic, kind, length, crc = _HEADER.unpack(header)
                if magic != MAGIC or kind not in _KNOWN_KINDS:
                    self._check_interior(index, offset)
                    return  # torn/garbage tail
                # a garbage length (bit-flipped header that still passed
                # the magic/kind check) must not drive a huge allocation;
                # cap the read at what the file can actually hold
                remaining = file_size - offset - _HEADER.size
                payload = fh.read(min(length, max(remaining, 0)))
                if len(payload) < length or \
                        zlib.crc32(payload) != crc:
                    self._check_interior(index, offset)
                    return  # torn payload
                yield WalRecord(index, kind, payload, offset)
                index += 1
                offset += _HEADER.size + length

    def _check_interior(self, index: int, offset: int) -> None:
        """Distinguish a torn tail from interior corruption at a bad
        frame starting at ``offset``.

        Appends are tail-only, so a torn frame is the *last* thing in
        the file.  If any complete, CRC-valid frame still parses past
        the damage point — the bad frame's own claimed extent, or any
        later magic position (a mid-file truncation shifts the
        survivors) — then acknowledged history was corrupted in place
        and replay must not quietly stop at record ``index``."""
        with open(self.path, "rb") as fh:
            rest = fh.read()
        probe = offset + 1
        while True:
            hit = rest.find(MAGIC, probe)
            if hit < 0:
                return  # nothing valid follows: a genuine torn tail
            if self._frame_parses(rest, hit):
                raise StoreCorruption(
                    f"WAL record #{index} (offset {offset}) is corrupt "
                    f"but valid log continues at offset {hit}: interior "
                    f"corruption, not a torn tail")
            probe = hit + 1

    @staticmethod
    def _frame_parses(data: bytes, offset: int) -> bool:
        if offset + _HEADER.size > len(data):
            return False
        magic, kind, length, crc = _HEADER.unpack(
            data[offset:offset + _HEADER.size])
        if magic != MAGIC or kind not in _KNOWN_KINDS:
            return False
        start = offset + _HEADER.size
        if start + length > len(data):
            return False
        return zlib.crc32(data[start:start + length]) == crc

    def scan(self) -> Iterator[WalRecord]:
        """Iterate every valid record from the head of the log."""
        yield from self._scan_file()

    def scan_from(self, start_index: int,
                  stop_index: int | None = None) -> Iterator[WalRecord]:
        """Stream records ``[start_index, stop_index)`` from one file
        handle (the replay hot path: one open + sequential reads, with
        each frame CRC-checked in passing)."""
        stop_index = len(self._offsets) if stop_index is None \
            else min(stop_index, len(self._offsets))
        if start_index >= stop_index:
            return
        if not 0 <= start_index < len(self._offsets):
            raise StoreError(f"log has {len(self._offsets)} records, "
                             f"asked to scan from #{start_index}")
        with open(self.path, "rb") as fh:
            fh.seek(self._offsets[start_index][0])
            for index in range(start_index, stop_index):
                offset, kind, length = self._offsets[index]
                header = fh.read(_HEADER.size)
                magic, h_kind, h_length, crc = _HEADER.unpack(header)
                payload = fh.read(h_length)
                if magic != MAGIC or h_kind != kind or \
                        h_length != length or zlib.crc32(payload) != crc:
                    # the index says this record was valid when scanned:
                    # failing now is damage, never a torn tail
                    raise StoreCorruption(
                        f"log record #{index} is corrupt")
                yield WalRecord(index, kind, payload, offset)

    def read(self, index: int) -> WalRecord:
        """Random access to one record by ordinal."""
        if not 0 <= index < len(self._offsets):
            raise StoreError(f"log has {len(self._offsets)} records, "
                             f"asked for #{index}")
        offset, kind, length = self._offsets[index]
        with open(self.path, "rb") as fh:
            fh.seek(offset)
            header = fh.read(_HEADER.size)
            magic, h_kind, h_length, crc = _HEADER.unpack(header)
            payload = fh.read(h_length)
        if magic != MAGIC or h_kind != kind or h_length != length or \
                zlib.crc32(payload) != crc:
            raise StoreCorruption(f"log record #{index} is corrupt")
        return WalRecord(index, kind, payload, offset)

    # -- appending --------------------------------------------------------------------
    def append(self, kind: int, payload: bytes) -> int:
        """Frame and append one record; returns its ordinal.

        Torn bytes past the last valid record (from a crashed prior
        append) are truncated away first, so the log stays a clean
        prefix of valid frames.
        """
        if kind not in _KNOWN_KINDS:
            raise StoreError(f"unknown WAL record kind {kind}")
        frame = _HEADER.pack(MAGIC, kind, len(payload),
                             zlib.crc32(payload)) + payload
        with open(self.path, "r+b") as fh:
            fh.truncate(self._valid_bytes)
            fh.seek(self._valid_bytes)
            fh.write(frame)
            fh.flush()
            if self.sync:
                os.fsync(fh.fileno())
                self.fsyncs += 1
        self.appends += 1
        self.append_bytes += len(frame)
        index = len(self._offsets)
        self._offsets.append((self._valid_bytes, kind, len(payload)))
        self._valid_bytes += len(frame)
        return index
