"""Record payload encoding for the temporal graph store.

Every WAL record payload and every compacted base file is a plain
(uncompressed) ``.npz`` archive held in bytes: numpy handles dtype and
shape framing, and a ``__meta__`` entry carries a JSON header.  Three
domain encodings live here:

* **base snapshots** — CSR-packed columnar arrays ``(indptr, indices,
  values)``; the canonical (src-sorted) edge order of
  :class:`~repro.graph.snapshot.GraphSnapshot` makes the conversion a
  bincount + cumsum in each direction.
* **delta records** — a :class:`~repro.graph.diff.SnapshotDiff` stored
  *against the previous snapshot*: removed edges become positions into
  the previous canonical order, and only the values of added or changed
  edges are kept (the wire-format GD diff ships every value of
  ``A_{i+1}``; on disk the unchanged ones are recoverable from the
  previous snapshot, which is what pushes storage well below the §3.2
  transfer payload).
* **event batches** — columnar ``(src, dst, op, value)`` arrays, folded
  with exactly the semantics of
  :meth:`repro.serve.ingest.StreamIngestor.commit` so a store replay and
  a live server agree bit-for-bit.

Integer arrays are narrowed to int32 on disk whenever their values fit
(vertex ids and edge positions almost always do) and widened back to the
library's int64 convention on decode.
"""

from __future__ import annotations

import io
import json
import zlib

import numpy as np

from repro.errors import StoreError
from repro.graph.diff import SnapshotDiff, _checksum, _keys, _unkeys
from repro.graph.snapshot import GraphSnapshot

__all__ = ["pack_record", "unpack_record", "edge_checksum",
           "snapshot_to_csr", "csr_to_snapshot",
           "encode_base", "decode_base",
           "encode_diff", "decode_diff",
           "encode_events", "decode_events", "fold_events",
           "encode_features", "decode_features",
           "snapshot_record_nbytes"]


def edge_checksum(snapshot: GraphSnapshot) -> int:
    """Order-independent integrity token of a snapshot's edge set
    (the same token :mod:`repro.graph.diff` stamps onto deltas)."""
    return _checksum(snapshot.edges, snapshot.num_vertices)


# ---------------------------------------------------------------------------
# generic npz-in-bytes container
# ---------------------------------------------------------------------------

def pack_record(meta: dict, arrays: dict[str, np.ndarray]) -> bytes:
    """Serialize ``(meta, arrays)`` into one uncompressed npz blob."""
    buf = io.BytesIO()
    payload = dict(arrays)
    header = json.dumps(meta, sort_keys=True).encode()
    payload["__meta__"] = np.frombuffer(header, dtype=np.uint8)
    np.savez(buf, **payload)
    return buf.getvalue()


def unpack_record(data: bytes) -> tuple[dict, dict[str, np.ndarray]]:
    """Inverse of :func:`pack_record`."""
    try:
        with np.load(io.BytesIO(data), allow_pickle=False) as archive:
            meta = json.loads(bytes(archive["__meta__"].tobytes()).decode())
            arrays = {k: archive[k] for k in archive.files
                      if k != "__meta__"}
    except (ValueError, KeyError, OSError, zlib.error) as exc:
        raise StoreError(f"undecodable store record: {exc}") from exc
    return meta, arrays


def _narrow(a: np.ndarray) -> np.ndarray:
    """int64 → int32 when every value fits (disk-width optimization)."""
    if a.dtype == np.int64 and \
            a.max(initial=0) <= np.iinfo(np.int32).max and \
            a.min(initial=0) >= np.iinfo(np.int32).min:
        return a.astype(np.int32)
    return a


def _widen(a: np.ndarray) -> np.ndarray:
    return a.astype(np.int64) if a.dtype != np.int64 else a


# ---------------------------------------------------------------------------
# base snapshots (CSR columnar)
# ---------------------------------------------------------------------------

def snapshot_to_csr(snap: GraphSnapshot
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Canonical edge array → ``(indptr, indices, values)``."""
    n = snap.num_vertices
    counts = np.bincount(snap.edges[:, 0], minlength=n) \
        if snap.num_edges else np.zeros(n, dtype=np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, snap.edges[:, 1].copy(), snap.values.copy()


def csr_to_snapshot(num_vertices: int, indptr: np.ndarray,
                    indices: np.ndarray, values: np.ndarray
                    ) -> GraphSnapshot:
    counts = np.diff(_widen(indptr))
    src = np.repeat(np.arange(num_vertices, dtype=np.int64), counts)
    edges = np.stack([src, _widen(indices)], axis=1)
    return GraphSnapshot(num_vertices, edges, values)


def encode_base(snap: GraphSnapshot, step: int,
                record_index: int) -> bytes:
    indptr, indices, values = snapshot_to_csr(snap)
    meta = {"kind": "base", "step": int(step),
            "record_index": int(record_index),
            "num_vertices": snap.num_vertices,
            "nnz": snap.num_edges,
            "checksum": edge_checksum(snap)}
    return pack_record(meta, {"indptr": _narrow(indptr),
                              "indices": _narrow(indices),
                              "values": values})


def decode_base(data: bytes) -> tuple[dict, GraphSnapshot]:
    meta, arrays = unpack_record(data)
    snap = csr_to_snapshot(meta["num_vertices"], arrays["indptr"],
                           arrays["indices"], arrays["values"])
    if edge_checksum(snap) != meta["checksum"]:
        raise StoreError(
            f"base snapshot for step {meta['step']} fails its checksum")
    return meta, snap


def snapshot_record_nbytes(snap: GraphSnapshot) -> int:
    """On-disk bytes a *full* per-snapshot record would take — the naive
    storage baseline the delta log is benchmarked against (the legacy
    ``save_dtdg`` representation: int64 edge pairs + float64 values)."""
    payload = pack_record({"kind": "naive", "nnz": snap.num_edges},
                          {"edges": snap.edges, "values": snap.values})
    return len(payload)


# ---------------------------------------------------------------------------
# delta records
# ---------------------------------------------------------------------------

def encode_diff(prev: GraphSnapshot, diff: SnapshotDiff,
                step: int) -> bytes:
    """Store ``prev → curr`` as a value-delta-compressed GD record."""
    n = prev.num_vertices
    prev_keys = _keys(prev.edges, n)
    removed = np.asarray(diff.removed, dtype=np.int64).reshape(-1, 2)
    removed_keys = np.sort(_keys(removed, n)) if len(removed) \
        else np.empty(0, dtype=np.int64)
    removed_pos = np.searchsorted(prev_keys, removed_keys)
    if len(removed_keys) and (
            removed_pos.max(initial=0) >= len(prev_keys)
            or (prev_keys[np.minimum(removed_pos, len(prev_keys) - 1)]
                != removed_keys).any()):
        raise StoreError("delta removes edges absent from the previous "
                         "snapshot — log does not apply")
    added = np.asarray(diff.added, dtype=np.int64).reshape(-1, 2)
    added_keys = np.sort(_keys(added, n)) if len(added) \
        else np.empty(0, dtype=np.int64)
    added = _unkeys(added_keys, n)

    common_keys = np.setdiff1d(prev_keys, removed_keys, assume_unique=True)
    curr_keys = np.sort(np.concatenate([common_keys, added_keys]))
    values = np.asarray(diff.values, dtype=np.float64).reshape(-1)
    if len(values) != len(curr_keys):
        raise StoreError(
            f"delta carries {len(values)} values for {len(curr_keys)} "
            f"reconstructed edges — log does not apply")
    cpos_curr = np.searchsorted(curr_keys, common_keys)
    cpos_prev = np.searchsorted(prev_keys, common_keys)
    changed = prev.values[cpos_prev] != values[cpos_curr]
    changed_pos = cpos_curr[changed]
    apos = np.searchsorted(curr_keys, added_keys)

    base_checksum = diff.base_checksum if diff.base_checksum != -1 \
        else _checksum(prev.edges, n)
    meta = {"kind": "diff", "step": int(step),
            "base_checksum": int(base_checksum),
            "result_checksum": _checksum(_unkeys(curr_keys, n), n),
            "nnz": int(len(curr_keys))}
    return pack_record(meta, {
        "removed_pos": _narrow(removed_pos),
        "added": _narrow(added),
        "added_val": values[apos],
        "changed_pos": _narrow(changed_pos),
        "changed_val": values[changed_pos],
    })


def decode_diff(data: bytes, prev: GraphSnapshot
                ) -> tuple[SnapshotDiff, GraphSnapshot, dict]:
    """Rebuild the full :class:`SnapshotDiff` and the snapshot it
    produces from a stored delta plus the resident predecessor."""
    meta, arrays = unpack_record(data)
    n = prev.num_vertices
    if meta["base_checksum"] != _checksum(prev.edges, n):
        raise StoreError(
            f"delta for step {meta['step']} does not apply: resident "
            f"snapshot is not the base it was encoded against")
    prev_keys = _keys(prev.edges, n)
    removed_pos = _widen(arrays["removed_pos"])
    removed_keys = prev_keys[removed_pos]
    added = _widen(arrays["added"]).reshape(-1, 2)
    added_keys = _keys(added, n) if len(added) \
        else np.empty(0, dtype=np.int64)

    common_keys = np.setdiff1d(prev_keys, removed_keys, assume_unique=True)
    curr_keys = np.sort(np.concatenate([common_keys, added_keys]))
    if len(curr_keys) != meta["nnz"]:
        raise StoreError(
            f"delta for step {meta['step']} reconstructs {len(curr_keys)} "
            f"edges, record says {meta['nnz']}")
    values = np.empty(len(curr_keys), dtype=np.float64)
    values[np.searchsorted(curr_keys, common_keys)] = \
        prev.values[np.searchsorted(prev_keys, common_keys)]
    values[np.searchsorted(curr_keys, added_keys)] = arrays["added_val"]
    values[_widen(arrays["changed_pos"])] = arrays["changed_val"]

    edges = _unkeys(curr_keys, n)
    if _checksum(edges, n) != meta["result_checksum"]:
        raise StoreError(
            f"delta for step {meta['step']} fails its result checksum")
    curr = GraphSnapshot(n, edges, values)
    diff = SnapshotDiff(removed=_unkeys(removed_keys, n), added=added,
                        values=values.copy(),
                        base_checksum=meta["base_checksum"])
    return diff, curr, meta


# ---------------------------------------------------------------------------
# live event batches
# ---------------------------------------------------------------------------

def encode_events(events) -> bytes:
    """Columnar encoding of an :class:`~repro.serve.ingest.EdgeEvent`
    batch (``op`` 0 = add, 1 = remove)."""
    events = list(events)
    src = np.array([e.src for e in events], dtype=np.int64)
    dst = np.array([e.dst for e in events], dtype=np.int64)
    op = np.array([0 if e.op == "add" else 1 for e in events],
                  dtype=np.uint8)
    value = np.array([e.value for e in events], dtype=np.float64)
    meta = {"kind": "events", "count": len(events)}
    return pack_record(meta, {"src": _narrow(src), "dst": _narrow(dst),
                              "op": op, "value": value})


def decode_events(data: bytes) -> list:
    from repro.serve.ingest import EdgeEvent
    meta, arrays = unpack_record(data)
    src = _widen(arrays["src"])
    dst = _widen(arrays["dst"])
    op = arrays["op"]
    value = arrays["value"]
    if not (len(src) == len(dst) == len(op) == len(value)
            == meta["count"]):
        raise StoreError("event record columns disagree on length")
    return [EdgeEvent(int(s), int(d), "add" if o == 0 else "remove",
                      float(v))
            for s, d, o, v in zip(src, dst, op, value)]


def fold_events(snapshot: GraphSnapshot, events) -> GraphSnapshot:
    """Fold an event batch into a snapshot during WAL replay.

    Delegates to :func:`repro.serve.ingest.fold_event_batch` — the ONE
    definition of the event-fold semantics — so a store replay and the
    live server that acknowledged the batch reconstruct bit-identical
    snapshots by construction.  (Imported lazily to keep this module
    importable without pulling the serving package in at import time.)
    """
    from repro.serve.ingest import fold_event_batch
    curr, _ = fold_event_batch(snapshot, events)
    return curr


# ---------------------------------------------------------------------------
# feature frames
# ---------------------------------------------------------------------------

def encode_features(frame: np.ndarray, step: int) -> bytes:
    frame = np.asarray(frame, dtype=np.float64)
    return pack_record({"kind": "features", "step": int(step)},
                       {"frame": frame})


def decode_features(data: bytes) -> tuple[int, np.ndarray]:
    meta, arrays = unpack_record(data)
    return meta["step"], arrays["frame"]
