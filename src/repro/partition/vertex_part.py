"""Vertex-partitioning baseline (paper §4.1, §6.4).

The vertex set is distributed by a hypergraph partitioner; each rank
stores the rows of every ``Ã_t`` and ``X_t`` that belong to its vertices.
The RNN is then communication-free, but each SpMM ``Y_t = Ã_t · X_t``
needs remote rows: the owner of vertex ``v`` must send ``X_t[v]`` to
every rank owning a row ``u`` with ``Ã_t[u, v] ≠ 0``.

Following the paper's implementation notes, the partition is *renamed*
so each rank's vertices are consecutive, and the per-pair send index
lists are precomputed once (before training) so each epoch only executes
the exchanges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitionError
from repro.graph.dtdg import DTDG
from repro.partition.base import VertexChunks
from repro.partition.hypergraph import (build_gcn_hypergraph,
                                        partition_hypergraph)
from repro.tensor.sparse import SparseMatrix

__all__ = ["VertexPartition", "SnapshotCommPlan", "hypergraph_vertex_partition",
           "random_vertex_partition"]


@dataclass(frozen=True)
class VertexPartition:
    """A vertex→rank assignment plus the consecutive renaming.

    Attributes
    ----------
    assignment:
        Original-vertex → rank.
    perm:
        Original-vertex → new (renamed) id; rank ``p`` owns the
        contiguous new-id range ``chunks.ranges[p]``.
    chunks:
        Contiguous new-id ranges per rank.
    """

    assignment: np.ndarray
    perm: np.ndarray
    chunks: VertexChunks

    @property
    def num_ranks(self) -> int:
        return self.chunks.num_ranks

    @property
    def num_vertices(self) -> int:
        return len(self.assignment)

    @classmethod
    def from_assignment(cls, assignment: np.ndarray,
                        num_ranks: int) -> "VertexPartition":
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.min() < 0 or assignment.max() >= num_ranks:
            raise PartitionError("assignment rank ids out of range")
        n = len(assignment)
        order = np.argsort(assignment, kind="stable")
        perm = np.empty(n, dtype=np.int64)
        perm[order] = np.arange(n)
        sizes = np.bincount(assignment, minlength=num_ranks)
        ranges = []
        start = 0
        for p in range(num_ranks):
            ranges.append((start, start + int(sizes[p])))
            start += int(sizes[p])
        return cls(assignment=assignment, perm=perm,
                   chunks=VertexChunks(tuple(ranges), n))

    def rename_edges(self, edges: np.ndarray) -> np.ndarray:
        """Apply the consecutive renaming to an edge array."""
        if len(edges) == 0:
            return edges
        return self.perm[edges]

    def imbalance(self) -> float:
        """max/mean rank load (1.0 = perfectly balanced)."""
        sizes = np.array([self.chunks.size(p) for p in range(self.num_ranks)],
                         dtype=np.float64)
        return float(sizes.max() / sizes.mean()) if sizes.mean() else 1.0


@dataclass(frozen=True)
class SnapshotCommPlan:
    """Precomputed SpMM exchange for one snapshot under a vertex partition.

    ``send[p][q]`` is the array of *renamed* vertex ids whose feature rows
    rank ``p`` must ship to rank ``q`` before the SpMM (p ≠ q).
    """

    send: tuple[tuple[np.ndarray, ...], ...]

    @classmethod
    def build(cls, laplacian: SparseMatrix,
              partition: VertexPartition) -> "SnapshotCommPlan":
        """Derive send lists from the renamed Laplacian's column supports."""
        p_count = partition.num_ranks
        owners = partition.chunks.owner_array()
        csc = laplacian.csr.tocsc()
        sends: list[list[list[int]]] = [[[] for _ in range(p_count)]
                                        for _ in range(p_count)]
        indptr, indices = csc.indptr, csc.indices
        for v in range(csc.shape[1]):
            rows = indices[indptr[v]:indptr[v + 1]]
            if len(rows) == 0:
                continue
            owner_v = int(owners[v])
            for q in np.unique(owners[rows]):
                q = int(q)
                if q != owner_v:
                    sends[owner_v][q].append(v)
        frozen = tuple(
            tuple(np.asarray(sends[p][q], dtype=np.int64)
                  for q in range(p_count))
            for p in range(p_count))
        return cls(send=frozen)

    @property
    def num_ranks(self) -> int:
        return len(self.send)

    def volume_vectors(self) -> int:
        """Feature vectors exchanged (the paper's per-snapshot volume)."""
        return sum(len(self.send[p][q])
                   for p in range(self.num_ranks)
                   for q in range(self.num_ranks))

    def bytes_matrix(self, feature_dim: int,
                     bytes_per_value: int = 4) -> np.ndarray:
        """P×P payload matrix for the communicator."""
        p_count = self.num_ranks
        out = np.zeros((p_count, p_count))
        for p in range(p_count):
            for q in range(p_count):
                out[p, q] = len(self.send[p][q]) * feature_dim * \
                    bytes_per_value
        return out

    def bytes_matrix_rows(self, feature_dim: int, rows: np.ndarray,
                          bytes_per_value: int = 4) -> np.ndarray:
        """P×P payload matrix restricted to the given (renamed) rows.

        The delta-halo exchange of the training reuse layer: receivers
        mirror the remote feature rows across timesteps, so a step only
        ships the send-list rows whose values actually changed
        (``rows`` — the delta-touched input rows).  ``rows`` must be
        sorted (the reuse cache emits sorted unique sets).
        """
        p_count = self.num_ranks
        rows = np.asarray(rows, dtype=np.int64)
        out = np.zeros((p_count, p_count))
        if len(rows) == 0:
            return out
        for p in range(p_count):
            for q in range(p_count):
                send = self.send[p][q]
                if len(send):
                    pos = np.searchsorted(rows, send)
                    pos = np.minimum(pos, len(rows) - 1)
                    count = int((rows[pos] == send).sum())
                    out[p, q] = count * feature_dim * bytes_per_value
        return out


def hypergraph_vertex_partition(dtdg: DTDG, num_ranks: int,
                                balance_eps: float = 0.10,
                                seed: int = 0) -> VertexPartition:
    """The paper's §4.1 pipeline: hypergraph model → multilevel partition."""
    hg = build_gcn_hypergraph(dtdg)
    assignment = partition_hypergraph(hg, num_ranks,
                                      balance_eps=balance_eps, seed=seed)
    return VertexPartition.from_assignment(assignment, num_ranks)


def random_vertex_partition(num_vertices: int, num_ranks: int,
                            seed: int = 0) -> VertexPartition:
    """Balanced random assignment — the quality floor for ablations."""
    rng = np.random.default_rng(seed)
    assignment = np.repeat(np.arange(num_ranks),
                           -(-num_vertices // num_ranks))[:num_vertices]
    rng.shuffle(assignment)
    return VertexPartition.from_assignment(assignment, num_ranks)
