"""Hybrid snapshot × vertex partitioning (paper §6.5).

When a single snapshot does not fit on one GPU — or when ``P > T`` would
leave ranks idle — ranks are organized into *groups*: snapshots are
partitioned across groups (as in §4.2), and within a group each snapshot
is split row-wise across the group's ranks, so the SpMM for one snapshot
is computed cooperatively (each rank holds a contiguous block of rows of
``Ã_t`` and gathers the full ``X_t`` from its peers).

The paper's §6.5 experiment trains TM-GCN on two large AML-Sim datasets
with each snapshot split across 2 GPUs; :func:`hybrid_partition` with
``group_size=2`` reproduces that setup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PartitionError
from repro.partition.base import TimestepAssignment, VertexChunks
from repro.partition.snapshot_part import (blockwise_snapshot_partition,
                                           snapshot_partition)

__all__ = ["HybridPlan", "hybrid_partition"]


@dataclass(frozen=True)
class HybridPlan:
    """Group layout + per-group assignments.

    Attributes
    ----------
    groups:
        Tuple of rank tuples; ``groups[g]`` lists the ranks cooperating
        on group ``g``'s snapshots.
    timestep_assignment:
        Group → owned timesteps (groups play the role §4.2 ranks play).
    row_chunks:
        Contiguous vertex (row) ranges within a group: member ``i`` of a
        group owns ``row_chunks.ranges[i]`` of every snapshot the group
        holds.
    """

    groups: tuple[tuple[int, ...], ...]
    timestep_assignment: TimestepAssignment
    row_chunks: VertexChunks

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    @property
    def group_size(self) -> int:
        return len(self.groups[0])

    def group_of_rank(self, rank: int) -> int:
        for g, members in enumerate(self.groups):
            if rank in members:
                return g
        raise PartitionError(f"rank {rank} not in any group")

    def member_index(self, rank: int) -> int:
        g = self.group_of_rank(rank)
        return self.groups[g].index(rank)


def hybrid_partition(num_timesteps: int, num_vertices: int, num_ranks: int,
                     group_size: int,
                     num_blocks: int | None = None) -> HybridPlan:
    """Build the §6.5 hybrid layout.

    Parameters
    ----------
    group_size:
        Ranks cooperating per snapshot; must divide ``num_ranks``.
    num_blocks:
        When set, snapshots are assigned to groups block-wise (checkpoint
        setting); otherwise contiguously.
    """
    if group_size <= 0:
        raise PartitionError("group_size must be positive")
    if num_ranks % group_size != 0:
        raise PartitionError(
            f"group_size {group_size} must divide num_ranks {num_ranks}")
    num_groups = num_ranks // group_size
    groups = tuple(tuple(range(g * group_size, (g + 1) * group_size))
                   for g in range(num_groups))
    if num_blocks is None:
        assignment = snapshot_partition(num_timesteps, num_groups)
    else:
        assignment = blockwise_snapshot_partition(num_timesteps, num_groups,
                                                  num_blocks)
    row_chunks = VertexChunks.uniform(num_vertices, group_size)
    return HybridPlan(groups=groups, timestep_assignment=assignment,
                      row_chunks=row_chunks)
