"""A multilevel hypergraph partitioner (PaToH substitute, paper §4.1/§6.4).

The vertex-partitioning baseline distributes graph vertices so that the
GCN's SpMM communication is minimized.  For the SpMM ``Y_t = Ã_t · X_t``,
the rank owning row ``u`` needs ``X_t[v]`` for every nonzero ``Ã_t[u,v]``;
so each vertex ``v`` induces a *net* (hyperedge) containing ``v`` and its
out-neighbors (the column support), and the communication volume is the
classic connectivity−1 metric ``Σ_v (λ(net_v) − 1)``.

This module implements the standard multilevel heuristic from scratch:

1. **Coarsening** — heavy-connectivity cell matching (cells that share
   many small nets are merged), repeated until the hypergraph is small;
2. **Initial partitioning** — greedy balanced growth on the coarsest
   hypergraph;
3. **Uncoarsening + FM refinement** — gain-driven single-cell moves
   under a balance constraint at every level.

Quality is PaToH-class in trend (volume grows with P on skewed real
graphs), which is what the paper's Table 2 comparison exercises.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PartitionError
from repro.graph.dtdg import DTDG

__all__ = ["Hypergraph", "build_gcn_hypergraph", "partition_hypergraph",
           "connectivity_cost"]


@dataclass
class Hypergraph:
    """Cells + weighted nets.

    Attributes
    ----------
    num_cells:
        Number of cells (graph vertices at the finest level).
    nets:
        List of int64 arrays; each array holds the (unique) cells of one
        net.
    net_weights / cell_weights:
        Positive weights; net weight scales its connectivity cost, cell
        weight counts toward the balance constraint.
    """

    num_cells: int
    nets: list[np.ndarray]
    net_weights: np.ndarray = field(default=None)  # type: ignore[assignment]
    cell_weights: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.net_weights is None:
            self.net_weights = np.ones(len(self.nets), dtype=np.float64)
        if self.cell_weights is None:
            self.cell_weights = np.ones(self.num_cells, dtype=np.float64)
        if len(self.net_weights) != len(self.nets):
            raise PartitionError("net_weights length mismatch")
        if len(self.cell_weights) != self.num_cells:
            raise PartitionError("cell_weights length mismatch")

    @property
    def num_nets(self) -> int:
        return len(self.nets)

    def pins(self) -> int:
        return sum(len(n) for n in self.nets)

    def cell_to_nets(self) -> list[list[int]]:
        incidence: list[list[int]] = [[] for _ in range(self.num_cells)]
        for j, net in enumerate(self.nets):
            for c in net:
                incidence[int(c)].append(j)
        return incidence


def build_gcn_hypergraph(dtdg: DTDG,
                         max_net_size: int | None = None) -> Hypergraph:
    """Nets from the union column supports of all snapshots.

    Net ``v`` contains ``{v} ∪ {u : (u, v) ∈ E_t for some t}`` and its
    weight is the number of snapshots in which column ``v`` is nonzero —
    an aggregate of the per-snapshot volumes ``Σ_t λ_t(v)`` that keeps
    the hypergraph a single, PaToH-sized problem (the same aggregation a
    practitioner feeds PaToH for a dynamic graph).
    """
    n = dtdg.num_vertices
    support: list[set[int]] = [set() for _ in range(n)]
    activity = np.zeros(n, dtype=np.float64)
    for snap in dtdg.snapshots:
        if snap.num_edges == 0:
            continue
        activity[np.unique(snap.edges[:, 1])] += 1.0
        for u, v in snap.edges:
            support[int(v)].add(int(u))
    nets: list[np.ndarray] = []
    weights: list[float] = []
    cell_weights = np.ones(n, dtype=np.float64)
    for v in range(n):
        members = support[v]
        members.add(v)
        if len(members) < 2:
            continue
        arr = np.fromiter(members, dtype=np.int64)
        if max_net_size is not None and len(arr) > max_net_size:
            arr = arr[:max_net_size]
        nets.append(np.sort(arr))
        weights.append(max(activity[v], 1.0))
        cell_weights[v] += len(members) - 1
    return Hypergraph(n, nets, np.asarray(weights), cell_weights)


def connectivity_cost(hg: Hypergraph, parts: np.ndarray) -> float:
    """Weighted connectivity−1 metric of an assignment."""
    cost = 0.0
    for w, net in zip(hg.net_weights, hg.nets):
        lam = len(np.unique(parts[net]))
        cost += w * (lam - 1)
    return cost


# --------------------------------------------------------------------------
# multilevel machinery
# --------------------------------------------------------------------------

def _coarsen(hg: Hypergraph, rng: np.random.Generator,
             match_net_cap: int = 48) -> tuple[Hypergraph, np.ndarray]:
    """One level of heavy-connectivity matching.

    Returns the coarse hypergraph and the fine→coarse cell map.
    """
    incidence = hg.cell_to_nets()
    matched = np.full(hg.num_cells, -1, dtype=np.int64)
    order = rng.permutation(hg.num_cells)
    coarse_id = 0
    for c in order:
        if matched[c] != -1:
            continue
        # score co-occurring cells by sum of 1/(|net|-1)
        scores: dict[int, float] = {}
        for j in incidence[c]:
            net = hg.nets[j]
            if len(net) > match_net_cap:
                continue
            inv = hg.net_weights[j] / max(len(net) - 1, 1)
            for other in net:
                other = int(other)
                if other != c and matched[other] == -1:
                    scores[other] = scores.get(other, 0.0) + inv
        if scores:
            best = max(scores, key=lambda k: (scores[k], -k))
            matched[c] = coarse_id
            matched[best] = coarse_id
        else:
            matched[c] = coarse_id
        coarse_id += 1
    # rebuild nets on coarse cells
    coarse_cell_weights = np.zeros(coarse_id, dtype=np.float64)
    np.add.at(coarse_cell_weights, matched, hg.cell_weights)
    net_map: dict[tuple, int] = {}
    coarse_nets: list[np.ndarray] = []
    coarse_weights: list[float] = []
    for w, net in zip(hg.net_weights, hg.nets):
        coarse = np.unique(matched[net])
        if len(coarse) < 2:
            continue  # net swallowed by a single coarse cell
        key = tuple(coarse.tolist())
        if key in net_map:
            coarse_weights[net_map[key]] += w
        else:
            net_map[key] = len(coarse_nets)
            coarse_nets.append(coarse)
            coarse_weights.append(float(w))
    coarse = Hypergraph(coarse_id, coarse_nets,
                        np.asarray(coarse_weights, dtype=np.float64),
                        coarse_cell_weights)
    return coarse, matched


def _initial_partition(hg: Hypergraph, num_parts: int, max_load: float,
                       rng: np.random.Generator) -> np.ndarray:
    """Greedy balanced growth on the coarsest hypergraph."""
    parts = np.full(hg.num_cells, -1, dtype=np.int64)
    loads = np.zeros(num_parts, dtype=np.float64)
    incidence = hg.cell_to_nets()
    order = np.argsort(-hg.cell_weights)  # heavy cells first
    for c in order:
        c = int(c)
        # affinity: weight of nets already touching each part
        affinity = np.zeros(num_parts, dtype=np.float64)
        for j in incidence[c]:
            touched = parts[hg.nets[j]]
            for p in np.unique(touched[touched >= 0]):
                affinity[p] += hg.net_weights[j]
        feasible = loads + hg.cell_weights[c] <= max_load
        if not feasible.any():
            feasible = loads == loads.min()
        affinity[~feasible] = -np.inf
        best = int(np.argmax(affinity + rng.random(num_parts) * 1e-9))
        parts[c] = best
        loads[best] += hg.cell_weights[c]
    return parts


def _refine(hg: Hypergraph, parts: np.ndarray, num_parts: int,
            max_load: float, rng: np.random.Generator,
            passes: int = 2) -> None:
    """FM-style greedy single-cell moves, in place."""
    incidence = hg.cell_to_nets()
    # part-occupancy counts per net
    counts = np.zeros((hg.num_nets, num_parts), dtype=np.int64)
    for j, net in enumerate(hg.nets):
        for p, k in zip(*np.unique(parts[net], return_counts=True)):
            counts[j, p] = k
    loads = np.zeros(num_parts, dtype=np.float64)
    np.add.at(loads, parts, hg.cell_weights)

    for _ in range(passes):
        moved = 0
        for c in rng.permutation(hg.num_cells):
            c = int(c)
            src = int(parts[c])
            if not incidence[c]:
                continue
            gains = np.zeros(num_parts, dtype=np.float64)
            for j in incidence[c]:
                w = hg.net_weights[j]
                row = counts[j]
                if row[src] == 1:
                    # leaving src removes src from this net everywhere
                    gains += w
                # arriving at a part not yet covering the net costs w
                gains -= w * (row == 0)
            gains[src] = 0.0
            feasible = loads + hg.cell_weights[c] <= max_load
            feasible[src] = True
            gains[~feasible] = -np.inf
            dst = int(np.argmax(gains))
            if dst == src or gains[dst] <= 0:
                continue
            # apply move
            for j in incidence[c]:
                counts[j, src] -= 1
                counts[j, dst] += 1
            loads[src] -= hg.cell_weights[c]
            loads[dst] += hg.cell_weights[c]
            parts[c] = dst
            moved += 1
        if moved == 0:
            break


def partition_hypergraph(hg: Hypergraph, num_parts: int,
                         balance_eps: float = 0.10, seed: int = 0,
                         max_levels: int = 12,
                         coarsen_to: int | None = None) -> np.ndarray:
    """Multilevel connectivity−1 partitioning; returns cell→part array."""
    if num_parts <= 0:
        raise PartitionError("num_parts must be positive")
    if num_parts == 1:
        return np.zeros(hg.num_cells, dtype=np.int64)
    if num_parts > hg.num_cells:
        raise PartitionError(
            f"cannot split {hg.num_cells} cells into {num_parts} parts")
    rng = np.random.default_rng(seed)
    target = coarsen_to or max(num_parts * 16, 64)

    levels: list[tuple[Hypergraph, np.ndarray]] = []
    current = hg
    for _ in range(max_levels):
        if current.num_cells <= target or current.num_nets == 0:
            break
        coarse, mapping = _coarsen(current, rng)
        if coarse.num_cells >= current.num_cells:
            break  # no progress
        levels.append((current, mapping))
        current = coarse

    total_weight = float(current.cell_weights.sum())
    max_load = (1.0 + balance_eps) * total_weight / num_parts
    # guard: every part must be able to host the heaviest cell
    max_load = max(max_load, float(current.cell_weights.max()))
    parts = _initial_partition(current, num_parts, max_load, rng)
    _refine(current, parts, num_parts, max_load, rng)

    for fine, mapping in reversed(levels):
        parts = parts[mapping]  # project to the finer level
        fine_total = float(fine.cell_weights.sum())
        fine_max_load = max((1.0 + balance_eps) * fine_total / num_parts,
                            float(fine.cell_weights.max()))
        _refine(fine, parts, num_parts, fine_max_load, rng)
    return parts
