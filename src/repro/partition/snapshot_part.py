"""Snapshot partitioning (paper §4.2) — the paper's distribution scheme.

Plain variant: rank ``p`` owns ``k = T/P`` *contiguous* snapshots
``A_s … A_e`` with ``s = 1 + (p−1)k``.  Checkpoint variant: the timeline
is first cut into ``nb`` blocks of ``bsize = T/nb`` timesteps, and the
contiguous split is applied *within each block*, so a rank's snapshots
are contiguous inside a block but non-contiguous globally (Fig. 3b).
"""

from __future__ import annotations

from repro.errors import PartitionError
from repro.partition.base import TimestepAssignment, contiguous_chunks

__all__ = ["snapshot_partition", "blockwise_snapshot_partition",
           "block_ranges"]


def snapshot_partition(num_timesteps: int,
                       num_ranks: int) -> TimestepAssignment:
    """Contiguous snapshot assignment (non-checkpoint setting, Fig. 3a)."""
    chunks = contiguous_chunks(num_timesteps, num_ranks)
    owned = tuple(tuple(range(lo, hi)) for lo, hi in chunks)
    assignment = TimestepAssignment(owned, num_timesteps)
    assignment.validate()
    return assignment


def block_ranges(num_timesteps: int, num_blocks: int) -> list[tuple[int, int]]:
    """Checkpoint block boundaries ``[s(b), e(b))`` over the timeline."""
    if num_blocks <= 0:
        raise PartitionError(f"num_blocks must be positive, got {num_blocks}")
    if num_blocks > num_timesteps:
        raise PartitionError(
            f"more blocks ({num_blocks}) than timesteps ({num_timesteps})")
    return contiguous_chunks(num_timesteps, num_blocks)


def blockwise_snapshot_partition(num_timesteps: int, num_ranks: int,
                                 num_blocks: int) -> TimestepAssignment:
    """Snapshot partitioning within each checkpoint block (Fig. 3b).

    Every rank receives ``bsize/P`` contiguous timesteps of every block;
    the processors then sweep the blocks synchronously (paper §4.2).
    """
    owned: list[list[int]] = [[] for _ in range(num_ranks)]
    for lo, hi in block_ranges(num_timesteps, num_blocks):
        for rank, (s, e) in enumerate(contiguous_chunks(hi - lo, num_ranks)):
            owned[rank].extend(range(lo + s, lo + e))
    assignment = TimestepAssignment(tuple(tuple(o) for o in owned),
                                    num_timesteps)
    assignment.validate()
    return assignment
