"""Data-distribution strategies: snapshot (the paper's scheme), vertex
(hypergraph baseline), and hybrid (§6.5) partitioning."""

from repro.partition.base import (TimestepAssignment, VertexChunks,
                                  contiguous_chunks)
from repro.partition.snapshot_part import (block_ranges,
                                           blockwise_snapshot_partition,
                                           snapshot_partition)
from repro.partition.hypergraph import (Hypergraph, build_gcn_hypergraph,
                                        connectivity_cost,
                                        partition_hypergraph)
from repro.partition.vertex_part import (SnapshotCommPlan, VertexPartition,
                                         hypergraph_vertex_partition,
                                         random_vertex_partition)
from repro.partition.hybrid import HybridPlan, hybrid_partition

__all__ = [
    "TimestepAssignment", "VertexChunks", "contiguous_chunks",
    "snapshot_partition", "blockwise_snapshot_partition", "block_ranges",
    "Hypergraph", "build_gcn_hypergraph", "partition_hypergraph",
    "connectivity_cost",
    "VertexPartition", "SnapshotCommPlan", "hypergraph_vertex_partition",
    "random_vertex_partition",
    "HybridPlan", "hybrid_partition",
]
