"""Shared partitioning result types.

Two orthogonal assignments appear throughout the paper:

* a **timestep assignment** — which rank owns which snapshots
  (snapshot partitioning, §4.2, including its block-wise checkpoint
  variant);
* a **vertex assignment** — which rank owns which vertices (the
  redistribution target of §4.2 and the primary distribution of the
  vertex-partitioning baseline, §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitionError
from repro.graph.traversal import undirected_distances

__all__ = ["TimestepAssignment", "VertexChunks", "contiguous_chunks"]


def contiguous_chunks(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ``parts`` contiguous near-equal ranges.

    The first ``total % parts`` ranges get one extra element.  Ranges may
    be empty when ``parts > total`` (idle ranks — the §6.5 limitation).
    """
    if parts <= 0:
        raise PartitionError(f"parts must be positive, got {parts}")
    if total < 0:
        raise PartitionError(f"total must be non-negative, got {total}")
    base, extra = divmod(total, parts)
    out = []
    start = 0
    for p in range(parts):
        size = base + (1 if p < extra else 0)
        out.append((start, start + size))
        start += size
    return out


@dataclass(frozen=True)
class TimestepAssignment:
    """rank → sorted list of global timestep indices it owns."""

    owned: tuple[tuple[int, ...], ...]
    num_timesteps: int

    @property
    def num_ranks(self) -> int:
        return len(self.owned)

    def owner_of(self, t: int) -> int:
        if not 0 <= t < self.num_timesteps:
            raise PartitionError(f"timestep {t} out of range")
        for rank, steps in enumerate(self.owned):
            if t in steps:
                return rank
        raise PartitionError(f"timestep {t} unassigned")

    def owner_map(self) -> np.ndarray:
        """Array mapping each timestep to its owning rank."""
        owners = np.full(self.num_timesteps, -1, dtype=np.int64)
        for rank, steps in enumerate(self.owned):
            for t in steps:
                owners[t] = rank
        if (owners < 0).any():
            raise PartitionError("assignment does not cover all timesteps")
        return owners

    def validate(self) -> None:
        seen: set[int] = set()
        for steps in self.owned:
            for t in steps:
                if t in seen:
                    raise PartitionError(f"timestep {t} assigned twice")
                if not 0 <= t < self.num_timesteps:
                    raise PartitionError(f"timestep {t} out of range")
                seen.add(t)
        if len(seen) != self.num_timesteps:
            raise PartitionError(
                f"{self.num_timesteps - len(seen)} timesteps unassigned")


@dataclass(frozen=True)
class VertexChunks:
    """Contiguous vertex ranges per rank (the §4.2 redistribution target).

    The paper partitions ``V`` into P contiguous chunks of N/P each;
    uneven N spills one extra vertex into the leading chunks.
    """

    ranges: tuple[tuple[int, int], ...]
    num_vertices: int

    @classmethod
    def uniform(cls, num_vertices: int, num_ranks: int) -> "VertexChunks":
        return cls(tuple(contiguous_chunks(num_vertices, num_ranks)),
                   num_vertices)

    @property
    def num_ranks(self) -> int:
        return len(self.ranges)

    def size(self, rank: int) -> int:
        lo, hi = self.ranges[rank]
        return hi - lo

    def slice_of(self, rank: int) -> slice:
        lo, hi = self.ranges[rank]
        return slice(lo, hi)

    def owner_array(self) -> np.ndarray:
        owners = np.empty(self.num_vertices, dtype=np.int64)
        for rank, (lo, hi) in enumerate(self.ranges):
            owners[lo:hi] = rank
        return owners

    def fringe(self, edges: np.ndarray, rank: int,
               hops: int = 1) -> np.ndarray:
        """Vertices *outside* ``rank``'s range within ``hops`` undirected
        hops of it — the ghost-vertex halo a shard must mirror to compute
        its own rows exactly (serving) or the remote rows a rank reads in
        a row-split SpMM (training).

        ``edges`` is an ``(m, 2)`` array over this chunking's vertex
        space.  Returns a sorted array of outside vertex ids.
        """
        if hops < 0:
            raise PartitionError(f"hops must be >= 0, got {hops}")
        lo, hi = self.ranges[rank]
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        dist = undirected_distances(self.num_vertices, edges,
                                    np.arange(lo, hi), hops)
        return np.flatnonzero((dist >= 1) & (dist <= hops))
