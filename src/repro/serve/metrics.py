"""Serving-side observability: latency percentiles and server counters.

The counters mirror what a production inference tier exports: request
throughput, per-request latency percentiles, the ingest rate, and the
cache economics of the incremental engine (rows recomputed vs rows
served from the embedding cache).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LatencyTracker", "ServerCounters", "ServerStats"]


class LatencyTracker:
    """Collects per-request latencies and reports percentiles.

    Latencies are kept as a plain list (the workloads here are 1e3–1e5
    requests); a production tier would swap in a fixed-size reservoir or
    a t-digest without changing the interface.
    """

    def __init__(self) -> None:
        self._samples: list[float] = []

    def record(self, latency_ms: float) -> None:
        self._samples.append(float(latency_ms))

    @property
    def count(self) -> int:
        return len(self._samples)

    def percentile(self, q: float) -> float:
        """Latency percentile in milliseconds (``q`` in [0, 100])."""
        if not self._samples:
            return float("nan")
        return float(np.percentile(np.asarray(self._samples), q))

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def mean(self) -> float:
        if not self._samples:
            return float("nan")
        return float(np.mean(self._samples))


@dataclass
class ServerCounters:
    """Monotonic counters a :class:`~repro.serve.server.ModelServer`
    increments as it works."""

    queries_submitted: int = 0
    queries_completed: int = 0
    batches_flushed: int = 0
    events_ingested: int = 0
    commits: int = 0
    refreshes: int = 0
    advances: int = 0
    rows_recomputed: int = 0        # by refreshes (cache economics)
    rows_advanced: int = 0          # by timestep-boundary advances
    rows_served_from_cache: int = 0
    evictions: int = 0              # LRU eviction passes (bounded cache)
    rows_evicted: int = 0           # rows dropped from the resident set

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of vertex-rows served from the embedding cache
        across all refreshes (advances recompute everything and are
        excluded — they are timeline steps, not cache lookups)."""
        total = self.rows_recomputed + self.rows_served_from_cache
        return self.rows_served_from_cache / total if total else float("nan")


@dataclass(frozen=True)
class ServerStats:
    """Point-in-time snapshot of a server's observable state."""

    counters: ServerCounters
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    elapsed_s: float

    @property
    def queries_per_second(self) -> float:
        if self.elapsed_s <= 0:
            return float("nan")
        return self.counters.queries_completed / self.elapsed_s

    def row(self) -> tuple:
        """Report row for the bench reporting pipeline."""
        return (self.counters.queries_completed,
                round(self.queries_per_second, 1),
                round(self.latency_p50_ms, 3),
                round(self.latency_p95_ms, 3),
                round(self.latency_p99_ms, 3),
                round(self.counters.cache_hit_rate, 3)
                if self.counters.cache_hit_rate == self.counters.cache_hit_rate
                else None)
