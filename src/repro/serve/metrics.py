"""Serving-side observability: latency percentiles and server counters.

The counters mirror what a production inference tier exports: request
throughput, per-request latency percentiles, the ingest rate, and the
cache economics of the incremental engine (rows recomputed vs rows
served from the embedding cache).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LatencyTracker", "ServerCounters", "ServerStats"]


class LatencyTracker:
    """Collects per-request latencies and reports percentiles.

    Samples live in a **fixed-size reservoir** (Vitter's Algorithm R
    with a deterministic generator), so a long-running server's memory
    stays bounded no matter how many requests it answers.  Below
    ``reservoir_size`` recorded latencies the reservoir holds every
    sample and the percentiles are exact; beyond it each recorded value
    displaces a uniformly chosen slot, keeping an unbiased sample of
    the whole stream.  ``count`` and ``mean`` track the *full* stream
    exactly (a running counter and sum), only the percentile estimates
    come from the reservoir.
    """

    def __init__(self, reservoir_size: int = 4096, seed: int = 0) -> None:
        if reservoir_size < 1:
            raise ValueError(
                f"reservoir_size must be >= 1, got {reservoir_size}")
        self.reservoir_size = reservoir_size
        self._samples: list[float] = []
        self._count = 0
        self._sum = 0.0
        self._rng = np.random.default_rng(seed)

    def record(self, latency_ms: float) -> None:
        latency_ms = float(latency_ms)
        self._count += 1
        self._sum += latency_ms
        if len(self._samples) < self.reservoir_size:
            self._samples.append(latency_ms)
            return
        # Algorithm R: the i-th record replaces a reservoir slot with
        # probability reservoir_size / i (uniform slot choice)
        slot = int(self._rng.integers(0, self._count))
        if slot < self.reservoir_size:
            self._samples[slot] = latency_ms

    @property
    def count(self) -> int:
        """Total latencies recorded (the full stream, not the sample)."""
        return self._count

    @property
    def sampled(self) -> int:
        """Latencies currently resident in the reservoir."""
        return len(self._samples)

    def percentile(self, q: float) -> float:
        """Latency percentile in milliseconds (``q`` in [0, 100]);
        exact while the stream fits the reservoir, an unbiased
        reservoir estimate beyond it."""
        if not self._samples:
            return float("nan")
        return float(np.percentile(np.asarray(self._samples), q))

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def mean(self) -> float:
        """Exact mean over the full stream."""
        if self._count == 0:
            return float("nan")
        return self._sum / self._count


@dataclass
class ServerCounters:
    """Monotonic counters a :class:`~repro.serve.server.ModelServer`
    increments as it works."""

    queries_submitted: int = 0
    queries_completed: int = 0
    batches_flushed: int = 0
    events_ingested: int = 0
    commits: int = 0
    refreshes: int = 0
    advances: int = 0
    rows_recomputed: int = 0        # by refreshes (cache economics)
    rows_advanced: int = 0          # by timestep-boundary advances
    rows_served_from_cache: int = 0
    evictions: int = 0              # LRU eviction passes (bounded cache)
    rows_evicted: int = 0           # rows dropped from the resident set

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of vertex-rows served from the embedding cache
        across all refreshes (advances recompute everything and are
        excluded — they are timeline steps, not cache lookups)."""
        total = self.rows_recomputed + self.rows_served_from_cache
        return self.rows_served_from_cache / total if total else float("nan")


@dataclass(frozen=True)
class ServerStats:
    """Point-in-time snapshot of a server's observable state."""

    counters: ServerCounters
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    elapsed_s: float

    @property
    def queries_per_second(self) -> float:
        if self.elapsed_s <= 0:
            return float("nan")
        return self.counters.queries_completed / self.elapsed_s

    def row(self) -> tuple:
        """Report row for the bench reporting pipeline."""
        return (self.counters.queries_completed,
                round(self.queries_per_second, 1),
                round(self.latency_p50_ms, 3),
                round(self.latency_p95_ms, 3),
                round(self.latency_p99_ms, 3),
                round(self.counters.cache_hit_rate, 3)
                if self.counters.cache_hit_rate == self.counters.cache_hit_rate
                else None)
