"""Serving-side observability: latency percentiles and server counters.

The counters mirror what a production inference tier exports: request
throughput, per-request latency percentiles, the ingest rate, and the
cache economics of the incremental engine (rows recomputed vs rows
served from the embedding cache).

Since the unified observability layer (:mod:`repro.obs`) landed, this
module is a thin serving-flavored veneer over it:
:class:`LatencyTracker` *is* an :class:`repro.obs.registry.Histogram`
(same bounded reservoir, same exact count/mean), kept as a named alias
because "latency" is the serving tier's vocabulary and because servers
attach it into their metrics registry so the exporters see one source
of truth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.obs.registry import Histogram

__all__ = ["LatencyTracker", "ServerCounters", "ServerStats"]


class LatencyTracker(Histogram):
    """Collects per-request latencies and reports percentiles.

    Samples live in a **fixed-size reservoir** (Vitter's Algorithm R
    with a deterministic generator), so a long-running server's memory
    stays bounded no matter how many requests it answers.  Below
    ``reservoir_size`` recorded latencies the reservoir holds every
    sample and the percentiles are exact; beyond it each recorded value
    displaces a uniformly chosen slot, keeping an unbiased sample of
    the whole stream.  ``count`` and ``mean`` track the *full* stream
    exactly (a running counter and sum), only the percentile estimates
    come from the reservoir.

    Non-finite latencies are rejected with a :class:`ValueError` — one
    NaN would silently poison the running mean (and every percentile)
    for the rest of the server's life.
    """

    def __init__(self, reservoir_size: int = 4096, seed: int = 0) -> None:
        super().__init__(reservoir_size, seed)

    def record(self, latency_ms: float) -> None:
        self.observe(latency_ms)


@dataclass
class ServerCounters:
    """Monotonic counters a :class:`~repro.serve.server.ModelServer`
    increments as it works."""

    queries_submitted: int = 0
    queries_completed: int = 0
    batches_flushed: int = 0
    events_ingested: int = 0
    commits: int = 0
    refreshes: int = 0
    advances: int = 0
    rows_recomputed: int = 0        # by refreshes (cache economics)
    rows_advanced: int = 0          # by timestep-boundary advances
    rows_served_from_cache: int = 0
    evictions: int = 0              # LRU eviction passes (bounded cache)
    rows_evicted: int = 0           # rows dropped from the resident set

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of vertex-rows served from the embedding cache
        across all refreshes (advances recompute everything and are
        excluded — they are timeline steps, not cache lookups)."""
        total = self.rows_recomputed + self.rows_served_from_cache
        return self.rows_served_from_cache / total if total else float("nan")


@dataclass(frozen=True)
class ServerStats:
    """Point-in-time snapshot of a server's observable state.

    The counters really are a snapshot: construction copies the
    (mutable) :class:`ServerCounters` it is handed, so traffic served
    after ``stats()`` never mutates an already-taken stats object.
    """

    counters: ServerCounters
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    elapsed_s: float

    def __post_init__(self) -> None:
        # defensive copy no matter which call site built us — a live
        # reference here would falsify every later read of the snapshot
        object.__setattr__(self, "counters", replace(self.counters))

    @property
    def queries_per_second(self) -> float:
        if self.elapsed_s <= 0:
            return float("nan")
        return self.counters.queries_completed / self.elapsed_s

    def row(self) -> tuple:
        """Report row for the bench reporting pipeline."""
        hit_rate = self.counters.cache_hit_rate
        return (self.counters.queries_completed,
                round(self.queries_per_second, 1),
                round(self.latency_p50_ms, 3),
                round(self.latency_p95_ms, 3),
                round(self.latency_p99_ms, 3),
                None if math.isnan(hit_rate) else round(hit_rate, 3))
