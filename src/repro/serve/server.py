"""The batched model server: queries in, fraud/link scores out.

:class:`ModelServer` glues the serving subsystem together: a
:class:`~repro.serve.ingest.StreamIngestor` keeps the resident graph
current, an :class:`~repro.serve.engine.InferenceEngine` keeps the
embedding cache fresh (incrementally or via full recompute — the
``incremental`` flag is the benchmark's A/B switch), and a micro-batching
request queue amortizes head evaluation: requests buffer until either
``max_batch_size`` is reached or the oldest request has waited
``flush_latency_ms`` (checked by :meth:`tick`, the event-loop hook).

The server is deliberately single-threaded and deterministic — the same
design as the simulated cluster: batching *policy* is what the paper's
style of system study cares about, and a thread pool would only blur
the measurements.  Wall time comes from an injectable ``clock`` so tests
can drive latency accounting deterministically.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace
from typing import Callable, Iterable

import numpy as np

from repro.errors import ConfigError, StoreError
from repro.graph.snapshot import GraphSnapshot
from repro.models.base import DynamicGNN
from repro.nn.linear import EdgeScorer, Linear
from repro.obs import SloEngine, Telemetry, render_dashboard
from repro.serve.cache import EmbeddingCache
from repro.serve.engine import InferenceEngine
from repro.serve.ingest import EdgeEvent, StreamIngestor
from repro.serve.metrics import LatencyTracker, ServerCounters, ServerStats
from repro.store.recovery import (capture_engine_state,
                                  restore_engine_state)

__all__ = ["PendingQuery", "QueryFrontend", "ModelServer", "score_links",
           "score_fraud"]


def _softmax_rows(z: np.ndarray) -> np.ndarray:
    shifted = z - z.max(axis=-1, keepdims=True)
    ez = np.exp(shifted)
    return ez / ez.sum(axis=-1, keepdims=True)


def score_links(z: np.ndarray, pairs: np.ndarray,
                link_head: EdgeScorer | None) -> np.ndarray:
    """Link-existence probabilities for ``(src, dst)`` pairs.

    With a trained head the concatenated endpoint embeddings go through
    its classifier; without one the sigmoid of the dot product serves as
    the untrained fallback.  ``z`` may be any row-aligned embedding
    matrix — the sharded tier passes gathered rows rather than the full
    resident matrix, so ``pairs`` index into whatever ``z`` is given.
    """
    if link_head is not None:
        feats = np.concatenate([z[pairs[:, 0]], z[pairs[:, 1]]], axis=1)
        logits = feats @ link_head.fc.weight.data
        if link_head.fc.use_bias:
            logits = logits + link_head.fc.bias.data
        return _softmax_rows(logits)[:, 1]
    dots = (z[pairs[:, 0]] * z[pairs[:, 1]]).sum(axis=1)
    return 1.0 / (1.0 + np.exp(-dots))


def score_fraud(z: np.ndarray, accounts: np.ndarray,
                fraud_head: Linear) -> np.ndarray:
    """Suspicious-account probabilities from the classification head."""
    logits = z[accounts] @ fraud_head.weight.data
    if fraud_head.use_bias:
        logits = logits + fraud_head.bias.data
    return _softmax_rows(logits)[:, 1]


@dataclass
class PendingQuery:
    """Handle returned by ``submit_*``; resolved at flush time."""

    kind: str                     # "link" | "fraud"
    payload: tuple
    enqueued_at: float
    done: bool = False
    result: float | None = None
    latency_ms: float = float("nan")
    # set by admission control (exec tier): the query was rejected at
    # submit time to protect latency; ``done`` is True, ``result`` None
    shed: bool = False
    # set by degraded serving (exec tier): how many timestep boundaries
    # behind the live tip the answering embeddings were.  0 means fully
    # fresh; None means the query never went through a degraded path.
    staleness: int | None = None

    def _resolve(self, value: float, now: float) -> None:
        self.result = float(value)
        self.latency_ms = (now - self.enqueued_at) * 1e3
        self.done = True


class QueryFrontend:
    """The micro-batched request surface shared by the single-worker
    :class:`ModelServer` and the sharded router.

    Owns the pending-query queue and its batching policy: flush when
    ``max_batch_size`` requests are queued, or when the oldest request
    has waited ``flush_latency_ms`` (checked by :meth:`tick`).
    Subclasses implement :meth:`flush` (how a batch is answered) and
    ``num_vertices`` (the resident vertex set queries validate against),
    and provide ``counters`` with a ``queries_submitted`` field plus the
    optional ``fraud_head``.
    """

    def _init_frontend(self, max_batch_size: int, flush_latency_ms: float,
                       clock: Callable[[], float],
                       telemetry: Telemetry | None = None) -> None:
        if max_batch_size < 1:
            raise ConfigError("max_batch_size must be >= 1")
        if flush_latency_ms < 0:
            raise ConfigError("flush_latency_ms must be >= 0")
        self.max_batch_size = max_batch_size
        self.flush_latency_ms = flush_latency_ms
        self.clock = clock
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.latency = LatencyTracker()
        # the latency reservoir IS the exported histogram — attaching it
        # keeps one source of truth between stats() and the exporters
        self.telemetry.registry.attach(
            "serve_latency_ms", self.latency,
            "Per-request latency (bounded reservoir)")
        self._queue: list[PendingQuery] = []
        self._started_at: float | None = None
        self.slo = None              # attached SloEngine (attach_slo)
        self.store = None            # attached GraphStore (durability)
        self._store_state_interval = 1
        self._store_replaying = False

    @property
    def num_vertices(self) -> int:
        raise NotImplementedError

    def flush(self) -> int:
        """Answer (up to) one micro-batch; returns completed queries."""
        raise NotImplementedError

    def submit_link(self, src: int, dst: int) -> PendingQuery:
        """Probability that edge ``(src, dst)`` exists/appears."""
        self._check_vertex(src)
        self._check_vertex(dst)
        return self._submit(PendingQuery("link", (int(src), int(dst)),
                                         self.clock()))

    def submit_fraud(self, account: int) -> PendingQuery:
        """Probability that ``account`` is a suspicious (laundering)
        vertex, from the node-classification head."""
        if self.fraud_head is None:
            raise ConfigError("fraud queries need a fraud_head")
        self._check_vertex(account)
        return self._submit(PendingQuery("fraud", (int(account),),
                                         self.clock()))

    def _check_vertex(self, v: int) -> None:
        """Reject bad ids at submit time: a negative id would silently
        score the wrong vertex (numpy indexing) and an oversized one
        would fail mid-flush, taking its co-batched queries with it."""
        if not 0 <= int(v) < self.num_vertices:
            raise ConfigError(
                f"query vertex {v} outside the resident vertex set of "
                f"size {self.num_vertices}")

    def _submit(self, query: PendingQuery) -> PendingQuery:
        if self._started_at is None:
            self._started_at = query.enqueued_at
        self._queue.append(query)
        self.counters.queries_submitted += 1
        if len(self._queue) >= self.max_batch_size:
            self.flush()
        return query

    def tick(self) -> int:
        """Event-loop hook: flush if the oldest request is past the
        latency budget.  Returns the number of completed queries."""
        if not self._queue:
            return 0
        waited_ms = (self.clock() - self._queue[0].enqueued_at) * 1e3
        if waited_ms >= self.flush_latency_ms:
            return self.flush()
        return 0

    def drain(self) -> int:
        """Flush until the queue is empty (end-of-stream helper)."""
        total = 0
        while self._queue:
            total += self.flush()
        return total

    # -- observability export (shared by both serving tiers) ---------------------------
    def _collect_metrics(self) -> None:
        """Sync the authoritative plain-int counters into the metrics
        registry.  Runs at export time, never on the hot path — the
        registry mirrors, it does not double-count."""
        import dataclasses
        reg = self.telemetry.registry
        for field in dataclasses.fields(self.counters):
            reg.counter(f"serve_{field.name}_total").set_to(
                getattr(self.counters, field.name))
        reg.gauge("serve_queue_depth",
                  "Pending queries awaiting a flush").set(len(self._queue))
        self._collect_tier_metrics(reg)
        if self.store is not None:
            self.store.collect_metrics(reg)

    def _collect_tier_metrics(self, reg) -> None:
        """Tier-specific registry sync (engine, maintainer, shards)."""

    @staticmethod
    def _collect_maintainer(reg, maintainer) -> None:
        if maintainer is None:
            return
        reg.counter("serve_maintainer_updates_total").set_to(
            maintainer.updates)
        reg.counter("serve_maintainer_incremental_total").set_to(
            maintainer.incremental_updates)
        reg.counter("serve_maintainer_full_rebuilds_total").set_to(
            maintainer.full_rebuilds)
        reg.counter("serve_maintainer_fallbacks_total").set_to(
            maintainer.fallbacks)

    def prometheus(self) -> str:
        """Live Prometheus text exposition (counters synced first)."""
        self._collect_metrics()
        return self.telemetry.prometheus()

    def export_jsonl(self, target, *, spans: bool = True) -> int:
        """Write the synced metrics (and retained span trees) as JSONL
        events; returns the number of events written."""
        self._collect_metrics()
        return self.telemetry.export_jsonl(target, spans=spans)

    def span_tree(self, *, min_ms: float = 0.0) -> str:
        """Human-readable dump of the retained span trees (empty unless
        the telemetry was built with ``tracing=True``)."""
        return self.telemetry.span_tree(min_ms=min_ms)

    def attach_slo(self, slo: SloEngine | None = None, *,
                   window: int = 60) -> SloEngine:
        """Attach (or build) an :class:`SloEngine` over this server's
        registry; :meth:`dashboard` renders its verdicts from then on.
        Returns the engine so callers can declare targets fluently::

            server.attach_slo().quantile(
                "p99-latency", "serve_latency_ms", q=99, threshold=5.0)
        """
        if slo is None:
            slo = SloEngine(self.telemetry.registry, window=window)
        self.slo = slo
        return slo

    def dashboard(self, *, title: str | None = None) -> str:
        """Live text dashboard of this tier (counters synced first; on
        an :class:`~repro.exec.router.ExecRouter` the sync also drains
        worker telemetry, so the view covers the whole cluster)."""
        self._collect_metrics()
        if title is None:
            title = f"{type(self).__name__} dashboard"
        return render_dashboard(self.telemetry, slo=self.slo,
                                title=title)

    # -- durability plumbing (shared by ModelServer and ShardedServer) -----------
    def attach_store(self, store, *, state_interval: int = 1,
                     capture: bool = True) -> None:
        """Make ingestion durable through a
        :class:`~repro.store.store.GraphStore`.

        Every subsequent event batch is WAL-logged *before* it is
        acknowledged and every ``advance_time`` seals a timestep, so
        ``recover()`` can reboot an identical server after a crash.  A
        fresh store adopts the current resident snapshot as its sealed
        step 0; a non-empty store must already be at the resident state
        (its live tip is checked against the resident).
        ``state_interval`` controls how many timestep boundaries pass
        between engine-state captures (the recovery "bases"); the
        initial capture happens here unless ``capture=False``.
        """
        if store.num_vertices != self.num_vertices:
            raise ConfigError(
                f"store covers {store.num_vertices} vertices, server "
                f"resident has {self.num_vertices}")
        resident = self.ingestor.resident
        if store.num_timesteps == 0 and store.wal.num_records <= 1:
            store.append_snapshot(resident)
        elif not (store.tip == resident):
            raise ConfigError(
                "store tip does not match the resident snapshot; "
                "recover() from the store instead of attaching it")
        self.store = store
        # the store reports through the server's telemetry from now on:
        # its spans nest under the serving spans and its counters land
        # in the same registry the server exports
        store.telemetry = self.telemetry
        self._store_state_interval = max(1, int(state_interval))
        if capture:
            self._capture_store_state()

    def _capture_state(self) -> tuple[dict, dict]:
        """(meta, arrays) snapshot of the serving-engine state — the
        tier-specific half of the durability plumbing."""
        raise NotImplementedError

    def _capture_store_state(self) -> None:
        meta, arrays = self._capture_state()
        self.store.save_engine_state(meta, arrays)

    def _store_log_events(self, events: list) -> None:
        """WAL the batch before it is applied or acknowledged."""
        if self.store is not None and not self._store_replaying and events:
            self.store.append_events(events)

    def _store_log_boundary(self, snapshot) -> None:
        """Seal a WAL timestep at an ``advance_time`` boundary (a
        rebase snapshot lands as a GD delta record)."""
        if self.store is None or self._store_replaying:
            return
        if snapshot is not None:
            self.store.append_snapshot(snapshot)
        else:
            self.store.seal_step()

    def _store_maybe_capture(self) -> None:
        """Capture engine state every ``state_interval`` boundaries."""
        if self.store is not None and not self._store_replaying and \
                self.counters.advances % self._store_state_interval == 0:
            self._capture_store_state()

    @staticmethod
    def _recovery_state(store, checkpoint, model, kwargs):
        """Shared ``recover()`` prologue: resolve the model/heads from
        a checkpoint, fetch the newest engine capture, and materialize
        the resident graph at the capture point."""
        if checkpoint is not None:
            from repro.train.checkpoint import load_model_checkpoint
            ckpt = load_model_checkpoint(checkpoint)
            model = ckpt.model if model is None else model
            kwargs.setdefault("link_head", ckpt.link_head)
            kwargs.setdefault("fraud_head", ckpt.fraud_head)
        if model is None:
            raise ConfigError("recover needs a checkpoint path or a model")
        state = store.latest_engine_state()
        if state is None:
            raise StoreError(
                "store holds no engine-state capture; serve with "
                "attach_store(...) so recovery has a starting point")
        meta, arrays = state
        resident = store._state_at_record(meta["record_index"])
        return model, meta, arrays, resident

    def _replay_store_tail(self, store, record_index: int,
                           state_interval: int) -> None:
        """Re-run the WAL ops after ``record_index`` through the normal
        ingest/advance paths (with logging suspended), then re-attach
        the store and capture the recovered state."""
        self.store = store
        store.telemetry = self.telemetry
        self._store_state_interval = max(1, int(state_interval))
        self._store_replaying = True
        try:
            # the resident IS the state at record_index (recovery just
            # materialized it) — hand it over so the tail replay does
            # not rebuild the log prefix a second time
            for op, payload in store.replay_tail(
                    record_index, start=self.ingestor.resident):
                if op == "events":
                    self.ingest_events(payload)
                elif op == "rebase":
                    # snapshot-sealed boundary: the decoded GD delta
                    # keeps the resident Ã maintainer incremental
                    snapshot, diff = payload
                    self.advance_time(snapshot, diff=diff)
                else:
                    self.advance_time(payload)
        finally:
            self._store_replaying = False
        self._capture_store_state()


class ModelServer(QueryFrontend):
    """Serves link-prediction and fraud-score queries over a live graph.

    Parameters
    ----------
    model:
        Trained dynamic GNN (CD-GCN / EvolveGCN / TM-GCN).
    snapshot:
        Initial resident graph (typically the last training snapshot).
    link_head:
        Optional trained :class:`EdgeScorer`; without it, link queries
        score by the sigmoid of the embedding dot product.
    fraud_head:
        Optional trained :class:`Linear` classifier (class 1 =
        suspicious); required for fraud queries.
    max_batch_size / flush_latency_ms:
        Micro-batching knobs: flush when the queue is full, or when the
        oldest queued request exceeds the latency budget.
    k_hops:
        Cache invalidation radius (default: model depth).
    incremental:
        ``False`` recomputes every row on each refresh — the full
        recompute baseline the serving benchmark compares against.
    kernel_backend:
        Kernel backend (name or instance) the engine's sparse kernels
        run on; ``None`` applies the selection precedence
        (``REPRO_KERNEL_BACKEND`` env, then ``reference``).
    clock:
        Seconds-returning callable (default ``time.perf_counter``).
    """

    def __init__(self, model: DynamicGNN, snapshot: GraphSnapshot, *,
                 link_head: EdgeScorer | None = None,
                 fraud_head: Linear | None = None,
                 max_batch_size: int = 64,
                 flush_latency_ms: float = 2.0,
                 k_hops: int | None = None,
                 incremental: bool = True,
                 cache_max_rows: int | None = None,
                 telemetry: Telemetry | None = None,
                 kernel_backend=None,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self._init_frontend(max_batch_size, flush_latency_ms, clock,
                            telemetry)
        self.model = model
        self.engine = InferenceEngine(model, snapshot, k_hops=k_hops,
                                      cache_max_rows=cache_max_rows,
                                      telemetry=self.telemetry,
                                      kernel_backend=kernel_backend)
        self.ingestor = StreamIngestor(snapshot)
        self.link_head = link_head
        self.fraud_head = fraud_head
        self.incremental = incremental
        self.counters = ServerCounters()
        self.engine.advance()  # prime embeddings for the initial snapshot
        self.counters.advances += 1

    @classmethod
    def from_checkpoint(cls, path: str, snapshot: GraphSnapshot,
                        **kwargs) -> "ModelServer":
        """Boot a server from a training checkpoint (model + heads
        rebuilt through the model registry)."""
        from repro.train.checkpoint import load_model_checkpoint
        ckpt = load_model_checkpoint(path)
        kwargs.setdefault("link_head", ckpt.link_head)
        kwargs.setdefault("fraud_head", ckpt.fraud_head)
        return cls(ckpt.model, snapshot, **kwargs)

    # -- durability ----------------------------------------------------------------
    # attach_store (WAL-before-ack, timestep seals, periodic captures)
    # is inherited from QueryFrontend; this class supplies the capture
    # payload and the recovery assembly.
    def _capture_state(self) -> tuple[dict, dict]:
        return capture_engine_state(self.engine)

    @classmethod
    def recover(cls, store, *, checkpoint: str | None = None,
                model: DynamicGNN | None = None,
                state_interval: int = 1, **kwargs) -> "ModelServer":
        """Reboot a crashed server from (model checkpoint, newest
        engine-state capture, WAL tail replay).

        The recovered server's resident graph, temporal state and
        served embeddings equal the pre-crash server's exactly: the
        capture restores the per-vertex arrays bit-for-bit and the tail
        ops re-run through the same ``ingest_events`` /
        ``advance_time`` numerics.
        """
        model, meta, arrays, resident = cls._recovery_state(
            store, checkpoint, model, kwargs)
        server = cls(model, resident, **kwargs)
        restore_engine_state(server.engine, meta, arrays)
        server._replay_store_tail(store, meta["record_index"],
                                  state_interval)
        return server

    # -- cache plumbing ------------------------------------------------------------
    @property
    def cache(self) -> EmbeddingCache:
        return self.engine.cache

    @property
    def num_vertices(self) -> int:
        return self.engine.num_vertices

    def _collect_tier_metrics(self, reg) -> None:
        self._collect_maintainer(reg, self.engine.maintainer)
        reg.counter("serve_engine_steps_total",
                    "Timestep boundaries the engine crossed").set_to(
            self.engine.steps)
        reg.gauge("serve_cache_dirty_rows",
                  "Rows invalidated and awaiting recompute").set(
            self.cache.num_dirty)
        hit_rate = self.counters.cache_hit_rate
        if not math.isnan(hit_rate):
            reg.gauge("serve_cache_hit_rate",
                      "Fraction of rows served from the embedding "
                      "cache").set(hit_rate)

    def stats(self) -> ServerStats:
        now = self.clock()
        elapsed = (now - self._started_at) if self._started_at is not None \
            else 0.0
        # copy the counters so the stats object really is point-in-time
        return ServerStats(counters=replace(self.counters),
                           latency_p50_ms=self.latency.p50,
                           latency_p95_ms=self.latency.p95,
                           latency_p99_ms=self.latency.p99,
                           latency_mean_ms=self.latency.mean,
                           elapsed_s=elapsed)

    # -- ingestion --------------------------------------------------------------------
    def ingest_events(self, events: Iterable[EdgeEvent]) -> int:
        """Fold live edge events into the resident graph.

        With a store attached the batch is WAL-logged *before* it is
        applied (and before this method returns — ingestion is only
        acknowledged once durable).  The embedding cache is invalidated
        (k-hop) but not refreshed — recomputation is deferred to the
        next flush so event bursts coalesce into one partial recompute.
        """
        events = list(events)
        with self.telemetry.trace("serve.ingest", events=len(events)):
            self._store_log_events(events)
            with self.telemetry.trace("serve.commit"):
                count = self.ingestor.push_batch(events)
                result = self.ingestor.commit()
            self.counters.events_ingested += result.num_events
            self.counters.commits += 1
            if self.incremental:
                # the GD delta rides along so the engine's Ã maintainer
                # applies it incrementally instead of rebuilding
                self.engine.set_snapshot(result.snapshot,
                                         seeds=result.dirty,
                                         diff=result.diff)
            else:
                # the full-recompute baseline keeps the pre-kernel cost
                # profile: no delta, full operator rebuild
                self.engine.set_snapshot(result.snapshot, seeds=None)
        return count

    def advance_time(self, snapshot: GraphSnapshot | None = None, *,
                     diff=None) -> None:
        """Cross a timestep boundary: temporal carries move forward and
        every row recomputes (both serving modes pay this).  With a
        store attached the boundary seals a timestep in the WAL (a
        rebase snapshot lands as a GD delta) and the engine state is
        captured every ``state_interval`` boundaries.  ``diff`` is the
        optional GD delta from the current resident to a rebase
        ``snapshot`` — with it the engine's Ã maintainer advances
        incrementally instead of rebuilding (recovery replay passes the
        store-decoded delta here)."""
        with self.telemetry.trace("serve.advance",
                                  rebase=snapshot is not None):
            self._store_log_boundary(snapshot)
            self.engine.advance(snapshot, diff=diff if self.incremental
                                else None)
            if snapshot is not None:
                self.ingestor.rebase(snapshot)
            self.counters.advances += 1
            self.counters.rows_advanced += self.engine.num_vertices
            self._evict()
            self._store_maybe_capture()

    # -- queries ----------------------------------------------------------------------
    def flush(self) -> int:
        """Refresh the cache and answer every queued query in one batch."""
        if not self._queue:
            return 0
        batch, self._queue = self._queue[:self.max_batch_size], \
            self._queue[self.max_batch_size:]
        with self.telemetry.trace("serve.query", batch=len(batch)):
            touched = {v for q in batch for v in
                       (q.payload if q.kind == "link" else q.payload[:1])}
            self.cache.touch(np.fromiter(touched, dtype=np.int64,
                                         count=len(touched)))
            self._refresh()
            z = self.engine.embeddings
            links = [(i, q) for i, q in enumerate(batch)
                     if q.kind == "link"]
            frauds = [(i, q) for i, q in enumerate(batch)
                      if q.kind == "fraud"]
            now = self.clock()
            if links:
                pairs = np.array([q.payload for _, q in links],
                                 dtype=np.int64)
                scores = self._score_links(z, pairs)
                for (_, q), s in zip(links, scores):
                    q._resolve(s, now)
            if frauds:
                accounts = np.array([q.payload[0] for _, q in frauds],
                                    dtype=np.int64)
                scores = self._score_fraud(z, accounts)
                for (_, q), s in zip(frauds, scores):
                    q._resolve(s, now)
            for q in batch:
                self.latency.record(q.latency_ms)
            self.counters.queries_completed += len(batch)
            self.counters.batches_flushed += 1
        if self._queue:  # drained in max_batch_size chunks
            return len(batch) + self.flush()
        return len(batch)

    # -- scoring ----------------------------------------------------------------------
    def _refresh(self) -> None:
        cache = self.cache
        if cache.num_dirty == 0:
            self._evict()
            return
        if not self.incremental:
            cache.invalidate_all()
        with self.telemetry.trace("serve.refresh") as span:
            recomputed = self.engine.refresh()
            span.set(rows=recomputed)
        self.counters.refreshes += 1
        self.counters.rows_recomputed += recomputed
        self.counters.rows_served_from_cache += \
            self.engine.num_vertices - recomputed
        self._evict()

    def _evict(self) -> None:
        """Bound the resident row set (no-op without ``cache_max_rows``)."""
        evicted = self.cache.maybe_evict()
        if evicted:
            self.counters.evictions += 1
            self.counters.rows_evicted += evicted

    def _score_links(self, z: np.ndarray, pairs: np.ndarray) -> np.ndarray:
        return score_links(z, pairs, self.link_head)

    def _score_fraud(self, z: np.ndarray,
                     accounts: np.ndarray) -> np.ndarray:
        return score_fraud(z, accounts, self.fraud_head)
