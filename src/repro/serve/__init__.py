"""Streaming inference: live ingestion, embedding cache, model server.

The serving tier turns the trained reproduction into a train-then-serve
system: edge events stream into a resident snapshot through the same
graph-difference machinery the trainer uses for CPU→GPU transfer
(paper §3.2), an embedding cache invalidates only the k-hop neighborhood
of changed edges, and a micro-batching model server answers
link-prediction and fraud-score queries from the incrementally
maintained embeddings.
"""

from repro.serve.ingest import (EdgeEvent, IngestResult, StreamIngestor,
                                events_between)
from repro.serve.cache import EmbeddingCache, expand_dirty
from repro.serve.engine import InferenceEngine
from repro.serve.server import (ModelServer, PendingQuery, QueryFrontend,
                                score_fraud, score_links)
from repro.serve.metrics import LatencyTracker, ServerCounters, ServerStats
from repro.serve.sharded import (HaloExchange, ReplicaSet, ShardEngine,
                                 ShardPlan, ShardWorker, ShardedServer,
                                 ShardedStats)

__all__ = [
    "EdgeEvent", "IngestResult", "StreamIngestor", "events_between",
    "EmbeddingCache", "expand_dirty",
    "InferenceEngine",
    "ModelServer", "PendingQuery", "QueryFrontend", "score_links",
    "score_fraud",
    "LatencyTracker", "ServerCounters", "ServerStats",
    "ShardPlan", "ShardEngine", "HaloExchange", "ReplicaSet",
    "ShardWorker", "ShardedServer", "ShardedStats",
]
