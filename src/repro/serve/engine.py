"""Incremental inference engine over a resident dynamic graph.

The engine evaluates a trained :class:`~repro.models.base.DynamicGNN`
in plain numpy (inference needs no tape) against the snapshot held by
the serving tier, with two entry points:

``advance()``
    A *timestep boundary*: temporal state moves forward one step — LSTM
    states advance for every vertex, EvolveGCN weights evolve once, the
    M-product history shifts — and every row is recomputed.  This is the
    periodic resync a production tier runs at window boundaries.

``refresh()``
    An *intra-step* update: edge events changed the resident graph, the
    temporal carry is frozen, and only the rows marked dirty by the
    :class:`~repro.serve.cache.EmbeddingCache` (the k-hop neighborhood
    of the touched endpoints) are recomputed.  Because embeddings at a
    fixed timestep are a pure function of (frozen carry, current graph),
    the refreshed rows are *numerically identical* to a full recompute —
    incremental serving trades no accuracy.

The Eq. 1 operator ``Ã`` is kept current by a
:class:`~repro.graph.inc_laplacian.LaplacianMaintainer`: each ingest
commit hands its GD delta to :meth:`set_snapshot`, which updates only
the touched rows/columns instead of rebuilding, and partial refreshes
compute the dirty rows' slice of ``Ã·X`` with the row-sliced SpMM
kernel (bit-identical to the same rows of the full multiply).

.. note::
   The engine evaluates the model on the **raw** event stream.  CD-GCN
   trains on raw snapshots (§5.1), so it is served exactly as trained.
   TM-GCN and EvolveGCN are conventionally trained on *smoothed* inputs
   (M-product / edge-life, §5.4); to serve those faithfully, train them
   on raw snapshots — the engine stays numerically exact w.r.t. its
   input stream either way, but it does not re-apply training-side
   smoothing to live events.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, KernelError
from repro.graph.diff import SnapshotDiff
from repro.graph.inc_laplacian import LaplacianMaintainer
from repro.tensor.backend import KernelBackend, resolve_backend
from repro.graph.snapshot import GraphSnapshot
from repro.models.base import DynamicGNN
from repro.models.cdgcn import CDGCN
from repro.models.evolvegcn import EvolveGCN
from repro.models.tmgcn import TMGCN
from repro.obs import Telemetry
from repro.serve.cache import EmbeddingCache

__all__ = ["InferenceEngine", "derive_serving_features"]


def derive_serving_features(snapshot: GraphSnapshot
                            ) -> tuple[np.ndarray, np.ndarray]:
    """Degree features and Laplacian normalization for a resident graph.

    The single definition both the engine and the shard router use —
    sharded exactness depends on every worker deriving *identical*
    features for the same snapshot.
    """
    in_deg = snapshot.in_degrees()
    out_deg = snapshot.out_degrees()
    features = np.stack([in_deg, out_deg], axis=1)
    dinv = 1.0 / np.sqrt(1.0 + np.maximum(out_deg, in_deg))
    return features, dinv


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


@dataclass
class _Layer:
    """Numpy view of one model layer's parameters."""

    gcn_weight: np.ndarray
    skip_concat: bool
    out_dim: int
    # LSTM part (CD-GCN only)
    w_ih: np.ndarray | None = None
    w_hh: np.ndarray | None = None
    lstm_bias: np.ndarray | None = None
    hidden: int = 0


class InferenceEngine:
    """Evaluates a dynamic GNN incrementally against a resident snapshot.

    Parameters
    ----------
    model:
        A (trained) CD-GCN, EvolveGCN or TM-GCN instance.  Parameters
        are referenced, not copied — serving always sees current weights.
    snapshot:
        The initial resident graph.
    k_hops:
        Invalidation radius; defaults to ``model.num_layers`` (the
        minimum that keeps incremental inference exact).
    kernel_backend:
        Kernel backend (name or instance) the engine's SpMM calls run
        on.  ``None`` adopts the injected ``maintainer``'s backend, or
        applies the selection precedence (``REPRO_KERNEL_BACKEND`` env,
        then ``reference``).  Injecting a maintainer pinned to a
        *different* backend raises :class:`~repro.errors.KernelError`.
    """

    def __init__(self, model: DynamicGNN, snapshot: GraphSnapshot,
                 k_hops: int | None = None, *,
                 features: np.ndarray | None = None,
                 dinv: np.ndarray | None = None,
                 cache_max_rows: int | None = None,
                 maintainer: LaplacianMaintainer | None = None,
                 telemetry: Telemetry | None = None,
                 kernel_backend: str | KernelBackend | None = None) -> None:
        if model.in_features != 2:
            raise ConfigError(
                "serving computes in/out-degree features from the event "
                f"stream (F=2); model expects F={model.in_features}")
        self.model = model
        # spans flow into the owning server's telemetry when injected;
        # the default is a private, tracing-off (no-op) instance
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.kind = self._detect_kind(model)
        self.layers = self._extract_layers(model)
        self.cache = EmbeddingCache(snapshot.num_vertices,
                                    model.num_layers, k_hops,
                                    max_rows=cache_max_rows)
        self.steps = 0
        self._primed = False
        self._resident: GraphSnapshot | None = None
        # the Ã maintainer may be injected and *shared*: engines fed the
        # same snapshot/diff sequence (a shard's replicas, or every
        # worker of a sharded tier whose router pre-applies the delta)
        # hold one operator copy — update() short-circuits when the
        # resident is already current, so redundant calls are free
        self._maintainer = maintainer
        if kernel_backend is None and maintainer is not None:
            self.kernel_backend = maintainer.backend
        else:
            self.kernel_backend = resolve_backend(kernel_backend)
        if maintainer is not None and \
                maintainer.backend is not self.kernel_backend:
            raise KernelError(
                f"engine kernel_backend={self.kernel_backend.name!r} but "
                f"the injected maintainer is pinned to "
                f"{maintainer.backend.name!r}")
        # temporal state that is not per-vertex
        self._weight_state: list[tuple[np.ndarray, np.ndarray]] = []
        self._current_weights: list[np.ndarray] = []
        self._history: list[list[np.ndarray]] = []
        self._current_y: list[np.ndarray | None] = []
        self._init_carries(snapshot.num_vertices)
        self.set_snapshot(snapshot, seeds=None, features=features,
                          dinv=dinv)

    # -- model introspection -----------------------------------------------------
    @staticmethod
    def _detect_kind(model: DynamicGNN) -> str:
        if isinstance(model, CDGCN):
            return "cdgcn"
        if isinstance(model, EvolveGCN):
            return "egcn"
        if isinstance(model, TMGCN):
            return "tmgcn"
        raise ConfigError(
            f"unsupported model type {type(model).__name__}; the serving "
            f"engine knows CD-GCN, EvolveGCN and TM-GCN")

    def _extract_layers(self, model: DynamicGNN) -> list[_Layer]:
        layers = []
        for idx in range(model.num_layers):
            gcn = model.gcn_layer(idx)
            if gcn.activation != "relu":
                raise ConfigError("serving engine expects ReLU GCN layers")
            layer = _Layer(gcn_weight=gcn.weight.data,
                           skip_concat=gcn.skip_concat,
                           out_dim=gcn.output_dim)
            if self.kind == "cdgcn":
                lstm = model.lstm_layer(idx)
                layer.w_ih = lstm.w_ih.data
                layer.w_hh = lstm.w_hh.data
                layer.lstm_bias = lstm.bias.data
                layer.hidden = lstm.hidden_size
                layer.out_dim = lstm.hidden_size
            layers.append(layer)
        return layers

    def _init_carries(self, n: int) -> None:
        cache = self.cache
        if self.kind == "cdgcn":
            for layer in self.layers:
                cache.pre_carry.append(
                    (np.zeros((n, layer.hidden)), np.zeros((n, layer.hidden))))
                cache.post_carry.append(
                    (np.zeros((n, layer.hidden)), np.zeros((n, layer.hidden))))
        elif self.kind == "egcn":
            for idx in range(self.model.num_layers):
                base = self.model.gcn_layer(idx).weight.data
                self._weight_state.append((base.copy(),
                                           np.zeros_like(base)))
                self._current_weights.append(base.copy())
        else:  # tmgcn
            self.window = self.model.window
            for layer in self.layers:
                self._history.append([])
                self._current_y.append(None)
        cache.layer_outputs = [np.zeros((n, layer.out_dim))
                               for layer in self.layers]

    # -- resident graph ------------------------------------------------------------
    @property
    def resident(self) -> GraphSnapshot:
        return self._resident

    @property
    def embeddings(self) -> np.ndarray:
        """Served per-vertex embeddings for the current (step, graph)."""
        return self.cache.embeddings

    @property
    def maintainer(self) -> LaplacianMaintainer:
        """The engine's incremental ``Ã`` maintainer."""
        return self._maintainer

    def adopt_maintainer(self, maintainer: LaplacianMaintainer) -> None:
        """Point this engine at a shared (router-owned) ``Ã`` maintainer.

        The sharded tier holds ONE maintainer for all worker/replica
        engines; recovery re-injects it here so a rebooted tier keeps
        the shared-operator invariant (and its O(delta) update profile)
        instead of silently falling back to per-engine copies.  The
        maintainer must already be at this engine's resident — a shared
        operator cannot be rebased per adopter, so a mismatch is a
        caller bug, not something to repair here.
        """
        if self._resident is not None and \
                maintainer.resident is not self._resident:
            raise ConfigError(
                "cannot adopt a shared maintainer whose resident differs "
                "from this engine's — recover/rebuild through a common "
                "snapshot before injecting")
        if maintainer.backend is not self.kernel_backend:
            raise KernelError(
                f"cannot adopt a maintainer pinned to backend "
                f"{maintainer.backend.name!r} into an engine running "
                f"{self.kernel_backend.name!r}")
        self._maintainer = maintainer

    def set_snapshot(self, snapshot: GraphSnapshot,
                     seeds: np.ndarray | None, *,
                     features: np.ndarray | None = None,
                     dinv: np.ndarray | None = None,
                     diff: SnapshotDiff | None = None) -> None:
        """Install a new resident snapshot.

        ``seeds`` are the vertices incident to changed edges (the
        ingestor's dirty frontier); ``None`` invalidates everything
        (initial install or an untracked graph swap).  ``features`` /
        ``dinv`` short-circuit the degree recomputation when the caller
        (e.g. a shard router fanning one snapshot out to many workers)
        already derived them from the same snapshot.  ``diff`` is the
        GD delta from the previous resident to ``snapshot``: with it,
        the resident ``Ã`` is maintained incrementally (O(delta)
        operator work); without it the operator rebuilds in full.
        """
        if self._resident is not None and \
                snapshot.num_vertices != self._resident.num_vertices:
            raise ConfigError("resident vertex set must stay fixed")
        self._resident = snapshot
        # the normalized operator follows the graph: incrementally when
        # the caller supplies the GD delta, by full rebuild otherwise
        with self.telemetry.trace("serve.maintainer",
                                  incremental=diff is not None):
            if self._maintainer is None:
                self._maintainer = LaplacianMaintainer(
                    snapshot, backend=self.kernel_backend)
            else:
                self._maintainer.update(snapshot, diff)
        # degree features follow the graph (``dinv`` is accepted so a
        # router's one-shot derivation fans out unchanged; the engine
        # itself reads normalization from the maintainer)
        if features is None:
            features, _ = derive_serving_features(snapshot)
        self.cache.features = features
        if seeds is None:
            self.cache.invalidate_all()
        elif len(seeds):
            self.cache.invalidate(snapshot, seeds)

    # -- stepping ---------------------------------------------------------------------
    def advance(self, snapshot: GraphSnapshot | None = None, *,
                diff: SnapshotDiff | None = None) -> np.ndarray:
        """Move the timeline one step forward and recompute every row.

        ``diff`` is the optional GD delta from the current resident to
        the rebase ``snapshot``; with it the maintained ``Ã`` advances
        incrementally instead of rebuilding in full."""
        self._settle()
        if snapshot is not None:
            self.set_snapshot(snapshot, seeds=None, diff=diff)
        if self._primed:
            self._promote_carries()
        if self.kind == "egcn":
            self._evolve_weights()
        self.cache.invalidate_all()
        self.cache.clean()
        self._compute(None)
        self._primed = True
        self.steps += 1
        return self.embeddings

    def _settle(self) -> None:
        """Consume any dirty rows still pending against the *current*
        resident before a timestep boundary.  The temporal carries a
        boundary promotes must reflect the end-of-step graph — skipping
        this (e.g. events ingested but never flushed before an advance)
        would promote carries computed against a mid-step topology.
        """
        if self._primed and self.cache.num_dirty:
            self.refresh()

    def refresh(self) -> int:
        """Recompute the dirty rows (frozen carry); returns row count."""
        if not self._primed:
            raise ConfigError("advance() must run once before refresh()")
        rows = self.cache.clean()
        if len(rows) == 0:
            return 0
        if len(rows) == self.cache.num_vertices:
            self._compute(None)
        else:
            self._compute(rows)
        return len(rows)

    # -- carry management ---------------------------------------------------------------
    def _promote_carries(self) -> None:
        cache = self.cache
        if self.kind == "cdgcn":
            cache.pre_carry = cache.post_carry
            cache.post_carry = [(np.empty_like(h), np.empty_like(c))
                                for h, c in cache.pre_carry]
        elif self.kind == "tmgcn":
            keep = self.window - 1
            for idx in range(len(self.layers)):
                if keep > 0:
                    self._history[idx].append(self._current_y[idx])
                    self._history[idx] = self._history[idx][-keep:]
                self._current_y[idx] = None

    def _evolve_weights(self) -> None:
        """One weight-LSTM step per layer (EvolveGCN's recurrence)."""
        for idx in range(self.model.num_layers):
            cell = self.model.evolver(idx).cell
            h_prev, c_prev = self._weight_state[idx]
            gates = (h_prev @ cell.w_ih.data + h_prev @ cell.w_hh.data
                     + cell.bias.data)
            hs = cell.hidden_size
            i = _sigmoid(gates[:, 0 * hs:1 * hs])
            f = _sigmoid(gates[:, 1 * hs:2 * hs])
            g = np.tanh(gates[:, 2 * hs:3 * hs])
            o = _sigmoid(gates[:, 3 * hs:4 * hs])
            c = f * c_prev + i * g
            h = o * np.tanh(c)
            self._weight_state[idx] = (h, c)
            self._current_weights[idx] = h

    # -- numerics -------------------------------------------------------------------------
    def _aggregate(self, x: np.ndarray,
                   rows: np.ndarray | None) -> np.ndarray:
        """Rows of ``Ã·x`` for the resident snapshot.

        ``rows=None`` runs the full SpMM through the maintained
        operator; otherwise only the requested output rows are computed
        by the backend's fused gather-then-GEMM kernel, which is
        bit-identical to the corresponding rows of the full product.
        """
        lap = self._maintainer.laplacian
        kb = self.kernel_backend
        if rows is None:
            return kb.spmm(lap.csr, x)
        out, _ = kb.spmm_rows(lap.csr, rows, x)
        return out

    def _layer_rows(self, idx: int,
                    rows: np.ndarray | None) -> np.ndarray | None:
        """Rows to compute at layer ``idx`` (``None`` = every vertex).

        The base engine computes the same row set at every layer; the
        sharded engine overrides this to shrink the halo ring as depth
        grows (layer ``ℓ`` outputs are only needed within ``L-1-ℓ`` hops
        of the owned block).
        """
        return rows

    def _compute(self, rows: np.ndarray | None) -> None:
        """(Re)compute model rows; ``rows=None`` means all vertices."""
        cache = self.cache
        x = cache.features
        for idx, layer in enumerate(self.layers):
            layer_rows = self._layer_rows(idx, rows)
            sel = slice(None) if layer_rows is None else layer_rows
            agg = self._aggregate(x, layer_rows)
            if self.kind == "egcn":
                y = np.maximum(agg @ self._current_weights[idx], 0.0)
            elif layer.skip_concat:
                proj = agg @ layer.gcn_weight
                y = np.maximum(np.concatenate([agg, proj], axis=1), 0.0)
            else:
                y = np.maximum(agg @ layer.gcn_weight, 0.0)
            out = self._temporal(idx, y, sel)
            cache.layer_outputs[idx][sel] = out
            x = cache.layer_outputs[idx]

    def _temporal(self, idx: int, y: np.ndarray, sel) -> np.ndarray:
        """Apply layer ``idx``'s RNN component to GCN rows ``y``."""
        if self.kind == "cdgcn":
            layer = self.layers[idx]
            h_pre, c_pre = self.cache.pre_carry[idx]
            gates = y @ layer.w_ih + h_pre[sel] @ layer.w_hh \
                + layer.lstm_bias
            hs = layer.hidden
            i = _sigmoid(gates[:, 0 * hs:1 * hs])
            f = _sigmoid(gates[:, 1 * hs:2 * hs])
            g = np.tanh(gates[:, 2 * hs:3 * hs])
            o = _sigmoid(gates[:, 3 * hs:4 * hs])
            c = f * c_pre[sel] + i * g
            h = o * np.tanh(c)
            h_post, c_post = self.cache.post_carry[idx]
            h_post[sel] = h
            c_post[sel] = c
            return h
        if self.kind == "tmgcn":
            if self._current_y[idx] is None:
                self._current_y[idx] = np.zeros(
                    (self.cache.num_vertices, y.shape[1]))
            self._current_y[idx][sel] = y
            active = (self._history[idx][-(self.window - 1):]
                      if self.window > 1 else [])
            scale = 1.0 / (len(active) + 1)
            out = y * scale
            for frame in active:
                out = out + frame[sel] * scale
            return out
        return y  # egcn: no vertex-level recurrence


    # -- bookkeeping -------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.cache.num_vertices
