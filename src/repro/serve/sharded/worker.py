"""Shard workers and replica sets.

A :class:`ShardWorker` is one serving process in the simulated sharded
tier: it owns a :class:`~repro.serve.sharded.engine.ShardEngine` over
its vertex block, applies routed deltas, refreshes its dirty rows, and
scores the queries the router assigns it.  Every unit of work is timed
into ``busy_s`` — the per-worker busy clock from which the benchmark
derives the tier's simulated-parallel critical path, exactly how the
training side charges per-rank :class:`~repro.cluster.clock.RankClock`
seconds.

A :class:`ReplicaSet` wraps ``R`` identical workers for one shard.
Writes (deltas, advances, halo imports) fan out to every replica — the
cost of replication; reads (query scoring, ghost-row exports) go to the
replica the least-loaded router policy picks.  The load signal is the
replica's accumulated busy time, so routing is deterministic whenever
the injected clock is.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.errors import ConfigError
from repro.graph.snapshot import GraphSnapshot
from repro.models.base import DynamicGNN
from repro.nn.linear import EdgeScorer, Linear
from repro.serve.server import score_fraud, score_links
from repro.serve.sharded.engine import ShardEngine

__all__ = ["ShardWorker", "ReplicaSet"]

_EMPTY = np.empty(0, dtype=np.int64)


class ShardWorker:
    """One shard's serving process (engine + heads + busy clock)."""

    def __init__(self, shard_id: int, replica_id: int, model: DynamicGNN,
                 snapshot: GraphSnapshot, block: np.ndarray, *,
                 link_head: EdgeScorer | None = None,
                 fraud_head: Linear | None = None,
                 k_hops: int | None = None,
                 features: np.ndarray | None = None,
                 dinv: np.ndarray | None = None,
                 maintainer=None, kernel_backend=None,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.engine = ShardEngine(model, snapshot, block, k_hops=k_hops,
                                  features=features, dinv=dinv,
                                  maintainer=maintainer,
                                  kernel_backend=kernel_backend)
        self.link_head = link_head
        self.fraud_head = fraud_head
        self.clock = clock
        self.busy_s = 0.0
        self.rows_recomputed = 0
        self.rows_advanced = 0
        self.queries_scored = 0
        self.deltas_applied = 0

    # -- timing -----------------------------------------------------------------------
    def _charge(self, t0: float) -> None:
        self.busy_s += self.clock() - t0

    # -- lifecycle --------------------------------------------------------------------
    def begin_advance(self, snapshot: GraphSnapshot, features: np.ndarray,
                      dinv: np.ndarray, diff=None) -> None:
        t0 = self.clock()
        self.engine.begin_advance(snapshot, features=features, dinv=dinv,
                                  diff=diff)
        self._charge(t0)

    def finish_advance(self) -> int:
        t0 = self.clock()
        advanced = self.engine.finish_advance()
        self.rows_advanced += advanced
        self._charge(t0)
        return advanced

    def apply_delta(self, snapshot: GraphSnapshot, features: np.ndarray,
                    dinv: np.ndarray, dirty: np.ndarray,
                    diff=None) -> np.ndarray:
        """Install the routed snapshot + pre-expanded dirty region.

        ``diff`` is the full GD delta of the commit; each worker feeds
        it to its engine's Ã maintainer so the per-shard operator
        updates incrementally.  Returns the rows newly pulled into this
        shard's halo (whose frozen temporal state the exchange must
        import before the next refresh touches them).
        """
        t0 = self.clock()
        self.engine.set_snapshot(snapshot, seeds=_EMPTY, features=features,
                                 dinv=dinv, diff=diff)
        entrants = self.engine.relax_halo(dirty)
        self.engine.cache.mark_dirty(self.engine.restrict_to_coverage(dirty))
        self.deltas_applied += 1
        self._charge(t0)
        return entrants

    def refresh(self) -> int:
        """Recompute this shard's dirty rows; returns the row count."""
        t0 = self.clock()
        recomputed = self.engine.refresh()
        self.rows_recomputed += recomputed
        self._charge(t0)
        return recomputed

    # -- reads ------------------------------------------------------------------------
    def embedding_rows(self, rows: np.ndarray) -> np.ndarray:
        """Served embedding rows (caller must route owned/covered rows;
        the engine is authoritative for its block only)."""
        t0 = self.clock()
        out = self.engine.embeddings[rows]
        self._charge(t0)
        return out

    def score(self, link_pairs: np.ndarray, link_dst_rows: np.ndarray,
              fraud_accounts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Score a routed query group.

        ``link_pairs`` are ``(src, dst)`` vertex ids with every ``src``
        owned here; ``link_dst_rows`` carries the embedding rows of the
        ``dst`` column (gathered remotely by the router when the owner
        is another shard).  Returns (link scores, fraud scores).
        """
        t0 = self.clock()
        z = self.engine.embeddings
        link_scores = np.empty(0)
        fraud_scores = np.empty(0)
        if len(link_pairs):
            stacked = np.concatenate([z[link_pairs[:, 0]], link_dst_rows],
                                     axis=0)
            m = len(link_pairs)
            idx = np.stack([np.arange(m), np.arange(m, 2 * m)], axis=1)
            link_scores = score_links(stacked, idx, self.link_head)
        if len(fraud_accounts):
            if self.fraud_head is None:
                raise ConfigError("fraud queries need a fraud_head")
            fraud_scores = score_fraud(z, fraud_accounts, self.fraud_head)
        self.queries_scored += len(link_pairs) + len(fraud_accounts)
        self._charge(t0)
        return link_scores, fraud_scores


class ReplicaSet:
    """``R`` replicas of one shard behind least-loaded routing."""

    def __init__(self, workers: list[ShardWorker]) -> None:
        if not workers:
            raise ConfigError("a replica set needs at least one worker")
        self.workers = workers

    @property
    def primary(self) -> ShardWorker:
        return self.workers[0]

    @property
    def num_replicas(self) -> int:
        return len(self.workers)

    def least_loaded(self) -> ShardWorker:
        """Replica with the least accumulated busy time (deterministic
        tie-break on replica id)."""
        return min(self.workers, key=lambda w: (w.busy_s, w.replica_id))

    # writes fan out to every replica
    def begin_advance(self, snapshot, features, dinv) -> None:
        for w in self.workers:
            w.begin_advance(snapshot, features, dinv)

    def finish_advance(self) -> None:
        for w in self.workers:
            w.finish_advance()

    def apply_delta(self, snapshot, features, dinv, dirty,
                    diff=None) -> np.ndarray:
        entrants = _EMPTY
        for w in self.workers:
            entrants = w.apply_delta(snapshot, features, dinv, dirty,
                                     diff=diff)
        return entrants  # identical across replicas (same deterministic state)

    def import_temporal(self, rows, payload) -> int:
        """Install mirrored temporal rows on every replica; returns the
        bytes of ONE transfer (replica fan-out is shard-internal, so
        the cross-shard wire cost is counted once)."""
        nbytes = 0
        for w in self.workers:
            nbytes = w.engine.import_temporal(rows, payload)
        return nbytes

    @property
    def busy_s(self) -> float:
        """Critical-path busy time across the replicas (they run in
        parallel in a real deployment)."""
        return max(w.busy_s for w in self.workers)
