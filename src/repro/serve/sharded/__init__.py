"""Sharded serving: partition-aware routing, halo exchange, replicas.

The resident graph's per-vertex model state is split across ``N`` shard
workers along a :class:`ShardPlan` built from the training-side
partitioners (contiguous, hypergraph-vertex, or hybrid row chunks).
Each shard owns its vertex block plus a ghost-vertex halo (k-hop
fringe, k = model depth); a :class:`HaloExchange` mirrors frozen
temporal state across shard boundaries so incremental refresh stays
numerically equal to a single-worker full recompute even when an edge
event's k-hop cone crosses shards.  A :class:`ShardedServer` front door
mirrors the ``ModelServer`` request surface, routes queries to
least-loaded replicas (:class:`ReplicaSet`), and re-partitions onto
load-weighted blocks when per-shard query skew exceeds a threshold.
"""

from repro.serve.sharded.plan import (ShardPlan, block_distances,
                                      relax_distances)
from repro.serve.sharded.engine import ShardEngine
from repro.serve.sharded.halo import HaloExchange, HaloTraffic
from repro.serve.sharded.worker import ReplicaSet, ShardWorker
from repro.serve.sharded.router import (ShardedCounters, ShardedServer,
                                        ShardedStats)

__all__ = [
    "ShardPlan", "block_distances", "relax_distances",
    "ShardEngine",
    "HaloExchange", "HaloTraffic",
    "ReplicaSet", "ShardWorker",
    "ShardedCounters", "ShardedServer", "ShardedStats",
]
