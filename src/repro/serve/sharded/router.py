"""The sharded serving front door.

:class:`ShardedServer` mirrors the :class:`~repro.serve.server.ModelServer`
request surface (``submit_link`` / ``submit_fraud`` / ``tick`` /
``flush`` / ``drain`` / ``ingest_events`` / ``advance_time`` /
``stats``) over ``N`` shard workers built from a
:class:`~repro.serve.sharded.plan.ShardPlan`:

* **ingestion** — the router keeps the authoritative topology mirror (a
  :class:`~repro.serve.ingest.StreamIngestor`; topology is O(nnz) ints,
  tiny next to the per-vertex model state the shards hold), commits each
  event batch once, expands the dirty frontier once (k hops, k = model
  depth), splits the GD delta by vertex block
  (:func:`~repro.graph.diff.split_diff_by_blocks`) for wire accounting,
  and fans snapshot + pre-expanded frontier out to the shards;
* **queries** — micro-batched exactly like ``ModelServer`` (same
  :class:`~repro.serve.server.PendingQuery` handles), routed to the
  owner of the query's primary vertex; link queries whose endpoints
  live on different shards gather the remote endpoint's embedding row
  from its owner (counted as cross-shard row fetches);
* **replication** — each shard is an ``R``-replica
  :class:`~repro.serve.sharded.worker.ReplicaSet`; writes fan out,
  reads go to the least-loaded replica;
* **rebalancing** — per-vertex query loads are tracked, and when the
  per-shard skew exceeds ``rebalance_skew`` at a timestep boundary the
  tier re-partitions onto load-weighted blocks and transplants the
  exact per-vertex state from the old owners.

Execution is single-threaded and deterministic (the repo's simulated
cluster idiom): every worker carries its own busy clock, and the
benchmark reads the tier's simulated-parallel wall time as router busy
time plus the slowest worker's busy time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, Iterable

import numpy as np

from repro.errors import ConfigError
from repro.graph.diff import split_diff_by_blocks
from repro.graph.inc_laplacian import LaplacianMaintainer
from repro.graph.snapshot import GraphSnapshot
from repro.models.base import DynamicGNN
from repro.nn.linear import EdgeScorer, Linear
from repro.obs import Telemetry
from repro.serve.cache import expand_dirty
from repro.serve.engine import derive_serving_features
from repro.serve.ingest import EdgeEvent, StreamIngestor
from repro.serve.server import QueryFrontend
from repro.serve.sharded.halo import HaloExchange, HaloTraffic
from repro.serve.sharded.plan import ShardPlan
from repro.serve.sharded.worker import ReplicaSet, ShardWorker
from repro.store.recovery import (capture_sharded_state,
                                  unpack_sharded_state)

__all__ = ["ShardedCounters", "ShardedStats", "ShardedServer"]

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass
class ShardedCounters:
    """Monotonic counters the router increments as it works."""

    queries_submitted: int = 0
    queries_completed: int = 0
    batches_flushed: int = 0
    events_ingested: int = 0
    commits: int = 0
    advances: int = 0
    refreshes: int = 0
    rows_recomputed: int = 0       # across all workers (total tier work)
    rows_advanced: int = 0
    halo_dirty_rows: int = 0       # dirty rows delivered to non-owners
    cross_shard_events: int = 0    # delta edges spanning two shards
    remote_row_fetches: int = 0    # embedding rows gathered cross-shard
    remote_row_bytes: int = 0
    delta_bytes_fanout: int = 0    # summed per-shard sub-delta payloads
    rebalances: int = 0


@dataclass(frozen=True)
class ShardedStats:
    """Point-in-time view of the sharded tier.

    Construction copies the mutable counters and halo traffic, so later
    traffic never mutates an already-taken stats object."""

    counters: ShardedCounters
    traffic: HaloTraffic
    num_shards: int
    replicas: int
    per_shard_queries: tuple
    per_shard_busy_s: tuple
    router_busy_s: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    elapsed_s: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "counters", replace(self.counters))
        object.__setattr__(self, "traffic", self.traffic.copy())

    @property
    def load_skew(self) -> float:
        """max/mean queries per shard (1.0 = perfectly balanced)."""
        loads = np.asarray(self.per_shard_queries, dtype=np.float64)
        return float(loads.max() / loads.mean()) if loads.sum() else 1.0

    @property
    def simulated_wall_s(self) -> float:
        """Critical path under simulated parallelism: the router plus
        the slowest worker (shards and replicas run concurrently in a
        real deployment; here they execute serially and are timed
        individually, the cluster-clock idiom)."""
        slowest = max(self.per_shard_busy_s) if self.per_shard_busy_s \
            else 0.0
        return self.router_busy_s + slowest

    @property
    def aggregate_qps(self) -> float:
        if self.simulated_wall_s <= 0:
            return float("nan")
        return self.counters.queries_completed / self.simulated_wall_s


class ShardedServer(QueryFrontend):
    """Serves link/fraud queries over a graph sharded across N workers.

    Parameters mirror :class:`~repro.serve.server.ModelServer` with the
    sharding knobs added; serving is always incremental (each shard
    refreshes only its dirty covered rows — exactness is the
    ``tests/serve/sharded`` acceptance contract).
    """

    def __init__(self, model: DynamicGNN, snapshot: GraphSnapshot, *,
                 num_shards: int | None = None,
                 plan: ShardPlan | None = None,
                 replicas: int = 1,
                 link_head: EdgeScorer | None = None,
                 fraud_head: Linear | None = None,
                 max_batch_size: int = 64,
                 flush_latency_ms: float = 2.0,
                 k_hops: int | None = None,
                 rebalance_skew: float | None = None,
                 rebalance_min_queries: int = 256,
                 telemetry: Telemetry | None = None,
                 kernel_backend=None,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        if plan is None:
            if num_shards is None:
                raise ConfigError("pass num_shards or an explicit plan")
            plan = ShardPlan.uniform(snapshot.num_vertices, num_shards)
        if plan.num_vertices != snapshot.num_vertices:
            raise ConfigError("shard plan does not cover the vertex set")
        if replicas < 1:
            raise ConfigError("replicas must be >= 1")
        self._init_frontend(max_batch_size, flush_latency_ms, clock,
                            telemetry)
        self.model = model
        self.plan = plan
        self.replicas = replicas
        self.link_head = link_head
        self.fraud_head = fraud_head
        self.k_hops = model.num_layers if k_hops is None else k_hops
        self.rebalance_skew = rebalance_skew
        self.rebalance_min_queries = rebalance_min_queries
        self.ingestor = StreamIngestor(snapshot)
        self.exchange = HaloExchange(plan)
        self.counters = ShardedCounters()
        self.router_busy_s = 0.0
        self._vertex_load = np.zeros(snapshot.num_vertices)
        self._per_shard_queries = np.zeros(plan.num_shards, dtype=np.int64)
        # one Ã maintainer for the whole tier: the router applies each
        # commit's GD delta once and every worker/replica engine reads
        # the same maintained operator (their own update() calls
        # short-circuit on the already-current resident) — topology is
        # shared simulation substrate, like features/dinv below
        self.maintainer = LaplacianMaintainer(snapshot,
                                              backend=kernel_backend)
        self.kernel_backend = self.maintainer.backend
        self.shards = self._build_shards(plan, snapshot)
        self._advance()  # prime embeddings for the initial snapshot

    def _build_shards(self, plan: ShardPlan,
                      snapshot: GraphSnapshot) -> list[ReplicaSet]:
        # derive degree features once and fan them out to all N*R workers
        features, dinv = derive_serving_features(snapshot)
        sets = []
        for s in range(plan.num_shards):
            block = plan.block(s)
            sets.append(ReplicaSet([
                ShardWorker(s, r, self.model, snapshot, block,
                            link_head=self.link_head,
                            fraud_head=self.fraud_head,
                            k_hops=self.k_hops, features=features,
                            dinv=dinv, maintainer=self.maintainer,
                            kernel_backend=self.kernel_backend,
                            clock=self.clock)
                for r in range(self.replicas)]))
        return sets

    @classmethod
    def from_checkpoint(cls, path: str, snapshot: GraphSnapshot,
                        **kwargs) -> "ShardedServer":
        """Boot a sharded tier from a training checkpoint."""
        from repro.train.checkpoint import load_model_checkpoint
        ckpt = load_model_checkpoint(path)
        kwargs.setdefault("link_head", ckpt.link_head)
        kwargs.setdefault("fraud_head", ckpt.fraud_head)
        return cls(ckpt.model, snapshot, **kwargs)

    # -- durability ----------------------------------------------------------------
    # attach_store (WAL-before-ack, timestep seals, periodic captures)
    # is inherited from QueryFrontend — the router owns the tier's
    # authoritative topology mirror, so it also owns the WAL; this
    # class supplies the per-shard capture payload and the recovery
    # assembly.
    def _capture_state(self) -> tuple[dict, dict]:
        return capture_sharded_state(self)

    @classmethod
    def recover(cls, store, *, checkpoint: str | None = None,
                model: DynamicGNN | None = None,
                state_interval: int = 1, **kwargs) -> "ShardedServer":
        """Reboot a crashed sharded tier from (model checkpoint, newest
        per-shard state capture, WAL tail replay).

        The capture carries the shard plan that was live at crash time
        (rebalances included), every shard's owned-row export, and the
        pending dirty rows; workers are reassembled with the
        rebalancer's exact state-transplant path and the WAL tail
        re-runs through the normal ingest/advance numerics.
        """
        model, meta, arrays, resident = cls._recovery_state(
            store, checkpoint, model, kwargs)
        owner, exports, dirty = unpack_sharded_state(meta, arrays)
        plan = ShardPlan(owner=owner, num_shards=meta["num_shards"])
        kwargs.setdefault("replicas", meta["replicas"])
        server = cls(model, resident, plan=plan, **kwargs)
        steps = int(meta["steps"])
        # the tier invariant the crashed server ran with: ONE
        # router-owned Ã maintainer shared by every worker/replica
        # engine.  The constructor injects it, but recovery re-asserts
        # the injection explicitly so the WAL tail (and all serving
        # after it) replays through the O(delta) incremental path
        # rather than per-engine full rebuilds.
        for rs in server.shards:
            for w in rs.workers:
                w.engine.adopt_maintainer(server.maintainer)
                w.engine.adopt_state(exports, steps)
                if len(dirty):
                    w.engine.cache.mark_dirty(
                        w.engine.restrict_to_coverage(dirty))
        server._replay_store_tail(store, meta["record_index"],
                                  state_interval)
        return server

    # -- introspection ---------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.plan.num_shards

    @property
    def num_vertices(self) -> int:
        return self.plan.num_vertices

    def worker(self, shard: int) -> ShardWorker:
        """Primary replica of ``shard`` (tests and state gathers)."""
        return self.shards[shard].primary

    def _collect_tier_metrics(self, reg) -> None:
        self._collect_maintainer(reg, self.maintainer)
        reg.gauge("shard_count", "Shards in the tier").set(self.num_shards)
        reg.gauge("shard_replicas", "Replicas per shard").set(self.replicas)
        reg.gauge("shard_load_skew",
                  "max/mean per-shard query load").set(self.observed_skew())
        reg.gauge("serve_router_busy_seconds",
                  "Router busy clock").set(self.router_busy_s)
        for s in range(self.num_shards):
            label = str(s)
            reg.counter("shard_queries_total",
                        "Queries routed to each shard",
                        shard=label).set_to(int(self._per_shard_queries[s]))
            rs = self.shards[s]
            reg.gauge("shard_busy_seconds",
                      "Per-worker busy clock (slowest replica bounds the "
                      "simulated wall time)", shard=label).set(
                max(w.busy_s for w in rs.workers))
            reg.counter("shard_rows_recomputed_total",
                        "Rows recomputed by each shard's workers",
                        shard=label).set_to(
                sum(w.rows_recomputed for w in rs.workers))
            reg.counter("shard_deltas_applied_total",
                        "Event deltas folded into each shard's mirror",
                        shard=label).set_to(
                sum(w.deltas_applied for w in rs.workers))
        traffic = self.exchange.traffic
        reg.counter("shard_halo_boundary_syncs_total").set_to(
            traffic.boundary_syncs)
        reg.counter("shard_halo_entrant_syncs_total").set_to(
            traffic.entrant_syncs)
        reg.counter("shard_halo_messages_total").set_to(traffic.messages)
        reg.counter("shard_halo_rows_total",
                    "Temporal-state rows shipped owner to ghost").set_to(
            traffic.rows_shipped)
        reg.counter("shard_halo_bytes_total",
                    "Halo payload bytes shipped owner to ghost").set_to(
            traffic.bytes_shipped)
        for s, nbytes in sorted(traffic.bytes_per_shard.items()):
            reg.counter("shard_halo_bytes_total", shard=str(s)).set_to(
                nbytes)
        for s, rows in sorted(traffic.rows_per_shard.items()):
            reg.counter("shard_halo_rows_total", shard=str(s)).set_to(rows)

    def gathered_embeddings(self) -> np.ndarray:
        """Full embedding matrix assembled from each shard's owned rows
        (each shard is authoritative for its block only).  Shards
        refresh lazily when they serve, so pending dirt is consumed
        before the gather."""
        out = np.empty((self.num_vertices, self.model.embed_dim))
        for s in range(self.num_shards):
            src = self.worker(s)
            src.refresh()
            block = self.plan.block(s)
            out[block] = src.engine.embeddings[block]
        return out

    def stats(self) -> ShardedStats:
        now = self.clock()
        elapsed = (now - self._started_at) if self._started_at is not None \
            else 0.0
        return ShardedStats(
            counters=self.counters,      # __post_init__ snapshots these
            traffic=self.exchange.traffic,
            num_shards=self.num_shards,
            replicas=self.replicas,
            per_shard_queries=tuple(int(q) for q in
                                    self._per_shard_queries),
            per_shard_busy_s=tuple(w.busy_s for rs in self.shards
                                   for w in rs.workers),
            router_busy_s=self.router_busy_s,
            latency_p50_ms=self.latency.p50,
            latency_p95_ms=self.latency.p95,
            latency_p99_ms=self.latency.p99,
            latency_mean_ms=self.latency.mean,
            elapsed_s=elapsed)

    # -- ingestion --------------------------------------------------------------------
    def ingest_events(self, events: Iterable[EdgeEvent]) -> int:
        """Commit live edge events once and fan the delta out to shards.

        The commit itself (materializing the new resident snapshot) is
        the shared simulation substrate and stays off the router's busy
        clock: a real deployment's router forwards O(events) sub-deltas
        and each shard folds its own into its local mirror — a cost the
        workers' ``apply_delta`` timing stands in for.  Frontier
        expansion, delta splitting, and fan-out accounting are genuine
        router work and are timed.
        """
        events = list(events)
        with self.telemetry.trace("serve.ingest", events=len(events)):
            self._store_log_events(events)  # WAL before acknowledgment
            with self.telemetry.trace("serve.commit"):
                count = self.ingestor.push_batch(events)
                result = self.ingestor.commit()
            t0 = self.clock()
            snap = result.snapshot
            with self.telemetry.trace("serve.maintainer", incremental=True):
                self.maintainer.update(snap, result.diff)
            features, dinv = derive_serving_features(snap)
            dirty = expand_dirty(snap, result.dirty, self.k_hops)
            subs = split_diff_by_blocks(result.diff, snap, self.plan.owner,
                                        self.plan.num_shards)
            self.counters.delta_bytes_fanout += sum(d.payload_nbytes
                                                    for d in subs)
            for edges in (result.diff.added, result.diff.removed):
                if len(edges):
                    self.counters.cross_shard_events += int(
                        (self.plan.owner[edges[:, 0]]
                         != self.plan.owner[edges[:, 1]]).sum())
            self.router_busy_s += self.clock() - t0
            entrants = []
            with self.telemetry.trace("serve.fanout",
                                      shards=self.num_shards):
                for s, rs in enumerate(self.shards):
                    entrants.append(rs.apply_delta(snap, features, dinv,
                                                   dirty,
                                                   diff=result.diff))
                    covered = rs.primary.engine.restrict_to_coverage(dirty)
                    self.counters.halo_dirty_rows += int(
                        (self.plan.owner[covered] != s).sum())
            with self.telemetry.trace("serve.halo_sync", kind="entrants"):
                self.exchange.sync_entrants(self.shards, entrants)
            self.counters.events_ingested += result.num_events
            self.counters.commits += 1
        return count

    def advance_time(self, snapshot: GraphSnapshot | None = None, *,
                     diff=None) -> None:
        """Cross a timestep boundary: promote carries everywhere, run
        the bulk halo exchange, recompute every covered row.  With a
        store attached the boundary seals a WAL timestep and the tier
        state is captured every ``state_interval`` boundaries.
        ``diff`` is the optional GD delta from the current resident to
        a rebase ``snapshot`` — with it the tier's shared Ã maintainer
        advances incrementally (recovery replay passes the
        store-decoded delta through here)."""
        self._store_log_boundary(snapshot)
        if snapshot is not None:
            self.ingestor.rebase(snapshot)
        self._advance(diff=diff)
        self._maybe_rebalance()
        self._store_maybe_capture()

    def _advance(self, diff=None) -> None:
        with self.telemetry.trace("serve.advance",
                                  rebase=diff is not None):
            snap = self.ingestor.resident
            t0 = self.clock()
            # a no-op unless advance_time rebased the resident wholesale —
            # incremental when the rebase delta is in hand, a single full
            # rebuild otherwise
            with self.telemetry.trace("serve.maintainer",
                                      incremental=diff is not None):
                self.maintainer.update(snap, diff)
            features, dinv = derive_serving_features(snap)
            self.router_busy_s += self.clock() - t0
            for rs in self.shards:
                rs.begin_advance(snap, features, dinv)
            if self.num_shards > 1:
                with self.telemetry.trace("serve.halo_sync",
                                          kind="boundary"):
                    self.exchange.sync_halos(self.shards)
            before = sum(w.rows_advanced for rs in self.shards
                         for w in rs.workers)
            for rs in self.shards:
                rs.finish_advance()
            after = sum(w.rows_advanced for rs in self.shards
                        for w in rs.workers)
            self.counters.rows_advanced += after - before
            self.counters.advances += 1

    # -- queries ----------------------------------------------------------------------
    def flush(self) -> int:
        """Route and answer one micro-batch."""
        if not self._queue:
            return 0
        batch, self._queue = self._queue[:self.max_batch_size], \
            self._queue[self.max_batch_size:]
        with self.telemetry.trace("serve.query", batch=len(batch)):
            self._answer_batch(batch)
        if self._queue:
            return len(batch) + self.flush()
        return len(batch)

    def _answer_batch(self, batch: list) -> None:
        """Route one micro-batch to its owner shards and resolve every
        query in it."""
        link_by_shard: dict[int, list] = {}
        fraud_by_shard: dict[int, list] = {}
        needed = set()
        for q in batch:
            if q.kind == "link":
                src, dst = q.payload
                s = int(self.plan.owner[src])
                link_by_shard.setdefault(s, []).append(q)
                needed.add(s)
                needed.add(int(self.plan.owner[dst]))
                self._vertex_load[src] += 1.0
                self._vertex_load[dst] += 1.0
                self._per_shard_queries[s] += 1
            else:
                acct = q.payload[0]
                s = int(self.plan.owner[acct])
                fraud_by_shard.setdefault(s, []).append(q)
                needed.add(s)
                self._vertex_load[acct] += 1.0
                self._per_shard_queries[s] += 1
        # one serving replica per shard this flush; each refreshes its
        # dirty covered rows before any of its embeddings are read
        serving: dict[int, ShardWorker] = {}
        for s in sorted(needed):
            w = self.shards[s].least_loaded()
            with self.telemetry.trace("serve.refresh", shard=s) as span:
                recomputed = w.refresh()
                span.set(rows=recomputed)
            if recomputed:
                self.counters.refreshes += 1
                self.counters.rows_recomputed += recomputed
            serving[s] = w
        now = self.clock()
        for s in sorted(set(link_by_shard) | set(fraud_by_shard)):
            links = link_by_shard.get(s, [])
            frauds = fraud_by_shard.get(s, [])
            pairs = np.array([q.payload for q in links],
                             dtype=np.int64).reshape(-1, 2)
            accounts = np.array([q.payload[0] for q in frauds],
                                dtype=np.int64)
            dst_rows = self._gather_rows(pairs[:, 1], serving, home=s) \
                if len(pairs) else np.empty((0, self.model.embed_dim))
            link_scores, fraud_scores = serving[s].score(
                pairs, dst_rows, accounts)
            for q, score in zip(links, link_scores):
                q._resolve(score, now)
            for q, score in zip(frauds, fraud_scores):
                q._resolve(score, now)
        for q in batch:
            self.latency.record(q.latency_ms)
        self.counters.queries_completed += len(batch)
        self.counters.batches_flushed += 1

    def _gather_rows(self, rows: np.ndarray,
                     serving: dict[int, ShardWorker],
                     home: int) -> np.ndarray:
        """Embedding rows of ``rows`` gathered from their owner shards
        (cross-shard fetches counted)."""
        owners = self.plan.owner[rows]
        out = np.empty((len(rows), self.model.embed_dim))
        for s in np.unique(owners):
            s = int(s)
            mask = owners == s
            got = serving[s].embedding_rows(rows[mask])
            out[mask] = got
            if s != home:
                self.counters.remote_row_fetches += int(mask.sum())
                self.counters.remote_row_bytes += got.nbytes
        return out

    # -- rebalancing ------------------------------------------------------------------
    def observed_skew(self) -> float:
        """max/mean per-shard query load since the last rebalance."""
        loads = np.bincount(self.plan.owner, weights=self._vertex_load,
                            minlength=self.num_shards)
        return float(loads.max() / loads.mean()) if loads.sum() else 1.0

    def _maybe_rebalance(self) -> None:
        if self.rebalance_skew is None or self.num_shards < 2:
            return
        if self._vertex_load.sum() < self.rebalance_min_queries:
            return
        if self.observed_skew() <= self.rebalance_skew:
            return
        self.rebalance(ShardPlan.weighted(self._vertex_load,
                                          self.num_shards))

    def rebalance(self, plan: ShardPlan) -> None:
        """Re-partition onto ``plan``, transplanting exact per-vertex
        state from the old owners (run at a timestep boundary, when
        every owned row is freshly recomputed)."""
        if plan.num_vertices != self.num_vertices:
            raise ConfigError("rebalance plan does not cover the vertex set")
        if plan.num_shards != self.num_shards:
            raise ConfigError("rebalancing keeps the shard count fixed")
        self.drain()
        t0 = self.clock()
        exports = []
        for s in range(self.num_shards):
            block = self.plan.block(s)
            src = self.worker(s)
            # the exporting replica must have consumed its dirty set so
            # the gathered rows are fresh
            src.refresh()
            exports.append((block, src.engine.export_state_rows(block)))
        steps = self.worker(0).engine.steps
        self.router_busy_s += self.clock() - t0
        snapshot = self.ingestor.resident
        # the transplant is a tier-wide barrier: every new worker resumes
        # from the slowest old worker's clock (plus its own transplant
        # cost), so busy time stays monotone across the rebalance
        barrier = max(w.busy_s for rs in self.shards for w in rs.workers)
        self.plan = plan
        self.exchange.plan = plan
        self.shards = self._build_shards(plan, snapshot)
        for rs in self.shards:
            for w in rs.workers:
                t0 = self.clock()
                w.engine.adopt_state(exports, steps)
                w.busy_s = barrier + (self.clock() - t0)
        self._vertex_load[:] = 0.0
        self.counters.rebalances += 1
