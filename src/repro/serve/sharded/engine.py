"""A shard's inference engine: owned block + shrinking halo rings.

:class:`ShardEngine` specializes the single-worker
:class:`~repro.serve.engine.InferenceEngine` with a truncated
distance-to-block field.  Layer ``ℓ`` (0-based) is computed only for
vertices within ``L-1-ℓ`` hops of the owned block: the served rows are
the block itself, and each ghost ring exists solely to feed the next
layer's aggregation, so the computed region shrinks by one ring per
layer.  Everything a computed row reads is therefore computed one ring
wider at the previous layer (or is a globally-exact degree feature), and
owned rows come out **numerically identical** to a single-worker full
recompute — the same exactness argument as the unsharded engine, applied
ring-wise.

The Eq. 1 operator reaches the shard through the engine's
:class:`~repro.graph.inc_laplacian.LaplacianMaintainer` — the router
owns one maintainer for the whole tier, applies each commit's GD delta
to it exactly once, and injects it into every worker (the engines'
own ``update()`` calls short-circuit on the already-current resident).
Every layer's aggregation then row-slices that operator over the
shard's covered rows (owned block + the live ghost rings), never the
full vertex set.

What cannot be derived locally is the frozen temporal state of ghost
rows (LSTM carries entering the current timestep, M-product history
frames): those are *owned* by their home shard and mirrored here through
the :class:`~repro.serve.sharded.halo.HaloExchange` — once per timestep
boundary for the whole halo, and incrementally whenever an edge event
pulls a new vertex into the halo mid-step.  EvolveGCN has no per-vertex
recurrence; its weight LSTM is replicated and every shard evolves it
identically, so its halo exchange ships zero temporal bytes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.graph.snapshot import GraphSnapshot
from repro.models.base import DynamicGNN
from repro.serve.engine import InferenceEngine
from repro.serve.sharded.plan import block_distances, relax_distances

__all__ = ["ShardEngine"]


class ShardEngine(InferenceEngine):
    """Evaluates a dynamic GNN for one shard's vertex block.

    Parameters
    ----------
    model / snapshot / k_hops:
        As for :class:`InferenceEngine` (parameters are shared across
        shards — serving replicates weights, not state).
    block:
        Sorted vertex ids this shard owns and serves.
    """

    def __init__(self, model: DynamicGNN, snapshot: GraphSnapshot,
                 block: np.ndarray, k_hops: int | None = None, *,
                 features: np.ndarray | None = None,
                 dinv: np.ndarray | None = None,
                 maintainer=None, kernel_backend=None) -> None:
        self._block = np.asarray(block, dtype=np.int64)
        self._dist: np.ndarray | None = None
        super().__init__(model, snapshot, k_hops, features=features,
                         dinv=dinv, maintainer=maintainer,
                         kernel_backend=kernel_backend)

    # -- halo geometry ---------------------------------------------------------------
    @property
    def block(self) -> np.ndarray:
        return self._block

    @property
    def max_ring(self) -> int:
        """Deepest ghost ring whose rows are computed locally."""
        return self.model.num_layers - 1

    @property
    def coverage(self) -> np.ndarray:
        """Rows this shard materializes (owned block + ghost rings)."""
        return np.flatnonzero(self._dist <= self.max_ring)

    @property
    def halo(self) -> np.ndarray:
        """Ghost rows only (coverage minus the owned block)."""
        return np.flatnonzero((self._dist >= 1) & (self._dist <= self.max_ring))

    def rebuild_halo(self) -> None:
        """Exact truncated BFS from the block on the resident topology."""
        self._dist = block_distances(self.num_vertices, self._resident.edges,
                                     self._block, self.max_ring)

    def relax_halo(self, region: np.ndarray) -> np.ndarray:
        """Lower the distance field after edge additions touching
        ``region`` (the global dirty set); returns the rows that newly
        entered (or deepened into) the computed coverage and therefore
        need their frozen temporal state imported from their owner."""
        if self._dist is None:
            raise ConfigError("rebuild_halo() must run before relax_halo()")
        before = self._dist.copy()
        relax_distances(self._dist, self._resident.edges, region,
                        self.max_ring)
        return np.flatnonzero((self._dist < before)
                              & (self._dist <= self.max_ring))

    def restrict_to_coverage(self, rows: np.ndarray) -> np.ndarray:
        """Subset of ``rows`` this shard materializes."""
        return rows[self._dist[rows] <= self.max_ring]

    def _layer_rows(self, idx: int,
                    rows: np.ndarray | None) -> np.ndarray | None:
        if self._dist is None:  # not yet sharded-primed: behave unsharded
            return rows
        limit = self.model.num_layers - 1 - idx
        if rows is None:
            sched = np.flatnonzero(self._dist <= limit)
            # full coverage keeps the cached-Laplacian SpMM fast path
            return None if len(sched) == self.num_vertices else sched
        return rows[self._dist[rows] <= limit]

    # -- advance protocol -------------------------------------------------------------
    # A sharded advance is split in two so the router can run the halo
    # exchange between carry promotion and recomputation (all shards
    # promote, then ghosts sync, then all shards compute).
    def begin_advance(self, snapshot: GraphSnapshot | None = None, *,
                      features: np.ndarray | None = None,
                      dinv: np.ndarray | None = None,
                      diff=None) -> None:
        self._settle()  # every replica, not just the ones that served
        if snapshot is not None:
            self.set_snapshot(snapshot, seeds=None, features=features,
                              dinv=dinv, diff=diff)
        self.rebuild_halo()
        if self._primed:
            self._promote_carries()
        if self.kind == "egcn":
            self._evolve_weights()

    def finish_advance(self) -> int:
        """Recompute the covered rows; returns how many were computed."""
        self.cache.invalidate_all()
        self.cache.clean()
        self._compute(None)
        self._primed = True
        self.steps += 1
        return len(self.coverage)

    def advance(self, snapshot: GraphSnapshot | None = None) -> np.ndarray:
        """Single-shard convenience (full halo sync is a no-op when no
        ghost row has remote temporal state — i.e. one shard)."""
        self.begin_advance(snapshot)
        self.finish_advance()
        return self.embeddings

    # -- temporal-state mirroring ----------------------------------------------------
    # The frozen per-vertex temporal state entering the current timestep
    # is what a ghost row cannot reproduce locally.  Rows are exported
    # by the owner (always exact for its block) and written into a
    # mirroring shard's arrays.
    def export_temporal(self, rows: np.ndarray) -> list[np.ndarray]:
        out: list[np.ndarray] = []
        if self.kind == "cdgcn":
            for h, c in self.cache.pre_carry:
                out.append(h[rows])
                out.append(c[rows])
        elif self.kind == "tmgcn":
            for frames in self._history:
                for frame in frames:
                    out.append(frame[rows])
        return out

    def import_temporal(self, rows: np.ndarray,
                        payload: list[np.ndarray]) -> int:
        """Install exported temporal rows; returns payload bytes."""
        nbytes = 0
        i = 0
        if self.kind == "cdgcn":
            for h, c in self.cache.pre_carry:
                h[rows] = payload[i]
                c[rows] = payload[i + 1]
                nbytes += payload[i].nbytes + payload[i + 1].nbytes
                i += 2
        elif self.kind == "tmgcn":
            for frames in self._history:
                for frame in frames:
                    frame[rows] = payload[i]
                    nbytes += payload[i].nbytes
                    i += 1
        return nbytes

    # -- state transplant (rebalancing) ----------------------------------------------
    def export_state_rows(self, rows: np.ndarray) -> dict:
        """Every per-vertex array this shard is authoritative for
        (``rows`` must be owned rows), plus the replicated non-vertex
        temporal state — the rebalancer's wire format."""
        state: dict = {
            "layer_outputs": [z[rows] for z in self.cache.layer_outputs],
        }
        if self.kind == "cdgcn":
            state["pre_carry"] = [(h[rows], c[rows])
                                  for h, c in self.cache.pre_carry]
            state["post_carry"] = [(h[rows], c[rows])
                                   for h, c in self.cache.post_carry]
        elif self.kind == "tmgcn":
            state["history"] = [[f[rows] for f in frames]
                                for frames in self._history]
            state["current_y"] = [None if y is None else y[rows]
                                  for y in self._current_y]
        elif self.kind == "egcn":
            state["weight_state"] = [(h.copy(), c.copy())
                                     for h, c in self._weight_state]
            state["current_weights"] = [w.copy()
                                        for w in self._current_weights]
        return state

    def adopt_state(self, rows_per_source: list[tuple[np.ndarray, dict]],
                    steps: int) -> None:
        """Assemble this engine's state from per-source row exports.

        Each ``(rows, state)`` pair scatters one source shard's owned
        rows into the full-width arrays; together the sources must cover
        every vertex this shard will read.  Leaves the engine primed
        with a clean cache, ready for refreshes and future advances.
        """
        for rows, state in rows_per_source:
            for idx, z in enumerate(state["layer_outputs"]):
                self.cache.layer_outputs[idx][rows] = z
            if self.kind == "cdgcn":
                for idx, (h, c) in enumerate(state["pre_carry"]):
                    self.cache.pre_carry[idx][0][rows] = h
                    self.cache.pre_carry[idx][1][rows] = c
                for idx, (h, c) in enumerate(state["post_carry"]):
                    self.cache.post_carry[idx][0][rows] = h
                    self.cache.post_carry[idx][1][rows] = c
            elif self.kind == "tmgcn":
                for idx, frames in enumerate(state["history"]):
                    while len(self._history[idx]) < len(frames):
                        self._history[idx].append(
                            np.zeros((self.num_vertices,
                                      frames[len(self._history[idx])]
                                      .shape[1])))
                    for j, f in enumerate(frames):
                        self._history[idx][j][rows] = f
                for idx, y in enumerate(state["current_y"]):
                    if y is None:
                        continue
                    if self._current_y[idx] is None:
                        self._current_y[idx] = np.zeros(
                            (self.num_vertices, y.shape[1]))
                    self._current_y[idx][rows] = y
            elif self.kind == "egcn":
                self._weight_state = [(h.copy(), c.copy())
                                      for h, c in state["weight_state"]]
                self._current_weights = [w.copy()
                                         for w in state["current_weights"]]
        self.steps = steps
        self._primed = True
        self.rebuild_halo()
        self.cache.clean()
