"""Cross-shard halo exchange.

Ghost (halo) rows let each shard recompute its owned block exactly, but
their *frozen temporal state* — LSTM carries entering the current
timestep, M-product history frames — lives on the owning shard.  The
exchange mirrors it across shard boundaries at two moments:

* :meth:`HaloExchange.sync_halos` — at every timestep boundary, after
  all shards promoted their carries and before any recomputes: each
  shard imports the temporal rows of its entire ghost set from the
  owners.  This is the classic bulk-synchronous halo exchange; its
  volume is the per-advance halo traffic the benchmark reports.
* :meth:`HaloExchange.sync_entrants` — mid-step, when an edge event
  pulls new vertices into a shard's halo (the k-hop cone of the event
  crossed a shard boundary): only the entrant rows ship, keeping
  incremental refresh exact without re-syncing the whole fringe.

Because every owner recomputes its own block at every layer, the rows it
exports are always exact — the exchange never forwards second-hand
(ghost) state.  EvolveGCN ships zero temporal bytes (its recurrence runs
over replicated weights); the counters still record the exchanged row
sets so halo *pressure* stays observable for every model.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field, replace

import numpy as np

from repro.serve.sharded.plan import ShardPlan
from repro.serve.sharded.worker import ReplicaSet

__all__ = ["HaloExchange", "HaloTraffic"]


@dataclass
class HaloTraffic:
    """Monotonic counters of cross-shard state movement.

    ``bytes_per_shard`` / ``rows_per_shard`` break the aggregate down by
    *importing* shard — the per-shard halo pressure the observability
    layer exports as labeled ``shard_halo_*`` series.
    """

    boundary_syncs: int = 0        # bulk syncs at timestep boundaries
    entrant_syncs: int = 0         # mid-step halo-growth syncs
    rows_shipped: int = 0          # temporal-state rows moved owner→ghost
    bytes_shipped: int = 0         # payload bytes of those rows
    messages: int = 0              # owner→ghost-shard transfers
    bytes_per_shard: dict = field(default_factory=lambda: defaultdict(int))
    rows_per_shard: dict = field(default_factory=lambda: defaultdict(int))

    def copy(self) -> "HaloTraffic":
        """Deep point-in-time copy (the per-shard dicts are mutable)."""
        return replace(self, bytes_per_shard=dict(self.bytes_per_shard),
                       rows_per_shard=dict(self.rows_per_shard))


class HaloExchange:
    """Moves frozen temporal state between shard workers."""

    def __init__(self, plan: ShardPlan) -> None:
        self.plan = plan
        self.traffic = HaloTraffic()

    def _ship(self, shards: list[ReplicaSet], target: int,
              rows: np.ndarray) -> None:
        """Import ``rows``' temporal state into shard ``target`` from
        each owning shard."""
        if len(rows) == 0:
            return
        owners = self.plan.owner[rows]
        for src in np.unique(owners):
            src = int(src)
            if src == target:
                continue  # owned rows are authoritative already
            chunk = rows[owners == src]
            payload = shards[src].primary.engine.export_temporal(chunk)
            nbytes = shards[target].import_temporal(chunk, payload)
            self.traffic.rows_shipped += len(chunk)
            self.traffic.bytes_shipped += nbytes
            self.traffic.messages += 1
            self.traffic.rows_per_shard[target] += len(chunk)
            self.traffic.bytes_per_shard[target] += nbytes

    def sync_halos(self, shards: list[ReplicaSet]) -> None:
        """Bulk boundary sync: every shard imports its whole ghost set.

        Must run after every shard's ``begin_advance`` (carries
        promoted) and before any ``finish_advance`` (recompute reads the
        mirrored state).
        """
        for target, rs in enumerate(shards):
            self._ship(shards, target, rs.primary.engine.halo)
        self.traffic.boundary_syncs += 1

    def sync_entrants(self, shards: list[ReplicaSet],
                      entrants_per_shard: list[np.ndarray]) -> None:
        """Mid-step sync of rows that newly entered each shard's halo."""
        shipped = False
        for target, entrants in enumerate(entrants_per_shard):
            if len(entrants):
                self._ship(shards, target, entrants)
                shipped = True
        if shipped:
            self.traffic.entrant_syncs += 1
