"""Shard plans: vertex→shard ownership plus ghost-vertex halo geometry.

A :class:`ShardPlan` assigns every resident vertex to exactly one shard
worker, reusing the partitioners the trainer already has:

* :meth:`ShardPlan.uniform` — contiguous equal blocks
  (:class:`~repro.partition.base.VertexChunks`), the §4.2 layout;
* :meth:`ShardPlan.from_partition` — a hypergraph/random
  :class:`~repro.partition.vertex_part.VertexPartition` (§4.1), applied
  in the *original* id space (serving never renames live vertex ids);
* :meth:`ShardPlan.from_hybrid` — the row chunks of a §6.5
  :class:`~repro.partition.hybrid.HybridPlan` (shards play the role of
  group members cooperating on one resident graph);
* :meth:`ShardPlan.weighted` — contiguous blocks balanced against an
  observed per-vertex load vector (what the rebalancer builds).

The halo geometry is a truncated distance-to-block field: a shard with
an ``L``-layer model computes layer ``ℓ`` outputs for every vertex
within ``L-1-ℓ`` hops of its block, so rows at distance ``d`` are ghost
(halo) rows mirrored for ``d ∈ [1, L-1]`` and ring ``L`` contributes
degree features only.  :func:`block_distances` builds the field exactly
(used at timestep boundaries); :func:`relax_distances` lowers it in
place after intra-step edge additions — lowering is the exactness-safe
direction, since an overestimate would shrink coverage below what
owned-row recomputation needs, while an underestimate merely recomputes
a few extra ghost rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitionError
from repro.graph.traversal import undirected_distances
from repro.partition.base import VertexChunks
from repro.partition.hybrid import HybridPlan
from repro.partition.vertex_part import VertexPartition

__all__ = ["ShardPlan", "block_distances", "relax_distances"]


@dataclass(frozen=True)
class ShardPlan:
    """Vertex→shard assignment for the sharded serving tier."""

    owner: np.ndarray
    num_shards: int

    def __post_init__(self) -> None:
        owner = np.asarray(self.owner, dtype=np.int64)
        object.__setattr__(self, "owner", owner)
        if self.num_shards < 1:
            raise PartitionError("a shard plan needs at least one shard")
        if len(owner) == 0:
            raise PartitionError("shard plan over an empty vertex set")
        if owner.min() < 0 or owner.max() >= self.num_shards:
            raise PartitionError("shard ids out of range in owner array")

    @property
    def num_vertices(self) -> int:
        return len(self.owner)

    @classmethod
    def uniform(cls, num_vertices: int, num_shards: int) -> "ShardPlan":
        chunks = VertexChunks.uniform(num_vertices, num_shards)
        return cls(owner=chunks.owner_array(), num_shards=num_shards)

    @classmethod
    def from_chunks(cls, chunks: VertexChunks) -> "ShardPlan":
        return cls(owner=chunks.owner_array(), num_shards=chunks.num_ranks)

    @classmethod
    def from_partition(cls, partition: VertexPartition) -> "ShardPlan":
        """Adopt a §4.1 vertex partition (original id space)."""
        return cls(owner=partition.assignment.copy(),
                   num_shards=partition.num_ranks)

    @classmethod
    def from_hybrid(cls, plan: HybridPlan) -> "ShardPlan":
        """Adopt the row-split of a §6.5 hybrid plan (one shard per
        group member)."""
        return cls.from_chunks(plan.row_chunks)

    @classmethod
    def weighted(cls, loads: np.ndarray, num_shards: int) -> "ShardPlan":
        """Contiguous blocks with near-equal cumulative ``loads``.

        ``loads`` is a non-negative per-vertex weight (e.g. queries
        observed per vertex); block boundaries are placed at the load
        quantiles, which is how the rebalancer splits a skewed keyspace.
        """
        loads = np.asarray(loads, dtype=np.float64)
        if (loads < 0).any():
            raise PartitionError("vertex loads must be non-negative")
        n = len(loads)
        if num_shards > n:
            raise PartitionError(
                f"cannot spread {n} vertices over {num_shards} shards")
        # every vertex carries a floor weight so zero-load tails still
        # spread across shards
        weights = loads + max(loads.sum(), 1.0) / (10.0 * n)
        cum = np.cumsum(weights)
        targets = cum[-1] * np.arange(1, num_shards) / num_shards
        bounds = np.searchsorted(cum, targets, side="left")
        # concentrated load can collapse several quantiles onto one cut
        # point; force the cuts strictly increasing (and leave room for
        # the trailing shards) so every shard keeps at least one vertex
        for i in range(len(bounds)):
            lo = bounds[i - 1] + 1 if i else 0
            hi = n - (num_shards - 1 - i) - 1
            bounds[i] = min(max(bounds[i], lo), hi)
        owner = np.zeros(n, dtype=np.int64)
        for s, b in enumerate(bounds):
            owner[b + 1:] = s + 1
        return cls(owner=owner, num_shards=num_shards)

    def block(self, shard: int) -> np.ndarray:
        """Sorted vertex ids owned by ``shard``."""
        if not 0 <= shard < self.num_shards:
            raise PartitionError(f"shard {shard} out of range")
        return np.flatnonzero(self.owner == shard)

    def block_sizes(self) -> np.ndarray:
        return np.bincount(self.owner, minlength=self.num_shards)

    def imbalance(self) -> float:
        """max/mean shard size (1.0 = perfectly balanced)."""
        sizes = self.block_sizes().astype(np.float64)
        return float(sizes.max() / sizes.mean()) if sizes.mean() else 1.0


def block_distances(num_vertices: int, edges: np.ndarray,
                    block: np.ndarray, max_dist: int) -> np.ndarray:
    """Exact undirected hop distance to ``block``, truncated at
    ``max_dist`` (unreached vertices get ``max_dist + 1``)."""
    return undirected_distances(num_vertices, edges, block, max_dist)


def relax_distances(dist: np.ndarray, edges: np.ndarray,
                    region: np.ndarray, max_dist: int) -> None:
    """Lower ``dist`` in place after edge additions touching ``region``.

    Runs ``max_dist`` rounds of bounded relaxation over the edges
    incident to the affected region — enough because any distance that
    genuinely decreased lies on a path of newly-dirty vertices of length
    at most ``max_dist``.  The update is monotone non-increasing, so
    stale entries after edge *removals* only over-cover (the exact field
    is rebuilt at the next timestep boundary).
    """
    if len(region) == 0 or len(edges) == 0 or max_dist <= 0:
        return
    mask = np.zeros(len(dist), dtype=bool)
    mask[region] = True
    inc = edges[mask[edges[:, 0]] | mask[edges[:, 1]]]
    if len(inc) == 0:
        return
    src, dst = inc[:, 0], inc[:, 1]
    for _ in range(max_dist):
        d_src = dist[src]
        d_dst = dist[dst]
        np.minimum.at(dist, dst, d_src + 1)
        np.minimum.at(dist, src, d_dst + 1)
