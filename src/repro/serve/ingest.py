"""Live edge-event ingestion into a resident snapshot.

:class:`StreamIngestor` is the front door of the serving subsystem: it
accepts individual edge events (a payment, a new link, a retraction),
buffers them, and on :meth:`commit` folds the pending batch into the
resident :class:`~repro.graph.snapshot.GraphSnapshot` by building and
applying a :class:`~repro.graph.diff.SnapshotDiff` — the same GD delta
machinery the trainer uses for CPU→GPU transfer (paper §3.2), pointed at
a new job: keeping a server's resident graph current.

Alongside the snapshot the ingestor maintains the **dirty-vertex
frontier**: every vertex incident to an edge that changed since the
frontier was last consumed.  The embedding cache expands this seed set
by k hops to decide which rows of the model state must be recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.errors import ConfigError, DatasetError
from repro.graph.diff import SnapshotDiff, diff_snapshots
from repro.graph.snapshot import GraphSnapshot

__all__ = ["EdgeEvent", "IngestResult", "StreamIngestor",
           "events_between", "fold_event_batch"]


@dataclass(frozen=True)
class EdgeEvent:
    """One live graph mutation.

    ``op`` is ``"add"`` or ``"remove"``.  Adding an edge that already
    exists accumulates its value (repeated transactions between the same
    accounts add up, matching how AML-Sim snapshots merge duplicates);
    removing an edge that is absent is a no-op.
    """

    src: int
    dst: int
    op: str = "add"
    value: float = 1.0

    def __post_init__(self) -> None:
        if self.op not in ("add", "remove"):
            raise ConfigError(f"unknown edge-event op {self.op!r}")


def fold_event_batch(snapshot: GraphSnapshot, events: Iterable[EdgeEvent]
                     ) -> tuple[GraphSnapshot, np.ndarray]:
    """Fold an event batch into a snapshot; returns the new snapshot
    and the sorted touched-vertex array.

    This is THE event-fold semantics — repeated adds accumulate, a
    removal drops the base edge *and* any adds buffered before it
    (making remove+add an exact value replacement) — shared by the live
    :class:`StreamIngestor` and the temporal store's WAL replay
    (:mod:`repro.store.codec`), which must reconstruct bit-identical
    snapshots from the same batches.
    """
    n = snapshot.num_vertices
    add_value: dict[tuple[int, int], float] = {}
    removed: set[tuple[int, int]] = set()
    touched: set[int] = set()
    for event in events:
        key = (int(event.src), int(event.dst))
        if not (0 <= key[0] < n and 0 <= key[1] < n):
            raise DatasetError(
                f"event endpoint {key} outside the vertex set of size {n}")
        touched.update(key)
        if event.op == "add":
            add_value[key] = add_value.get(key, 0.0) + event.value
        else:
            add_value.pop(key, None)
            removed.add(key)

    keep = np.ones(snapshot.num_edges, dtype=bool)
    if removed:
        removed_arr = np.array(sorted(removed), dtype=np.int64)
        prev_keys = snapshot.edges[:, 0] * np.int64(n) \
            + snapshot.edges[:, 1]
        removed_keys = removed_arr[:, 0] * np.int64(n) + removed_arr[:, 1]
        keep = ~np.isin(prev_keys, removed_keys, assume_unique=False)
    if add_value:
        added_arr = np.array(sorted(add_value), dtype=np.int64)
        added_vals = np.array([add_value[tuple(e)] for e in
                               added_arr.tolist()], dtype=np.float64)
        edges = np.concatenate([snapshot.edges[keep], added_arr], axis=0)
        values = np.concatenate([snapshot.values[keep], added_vals])
    else:
        edges = snapshot.edges[keep]
        values = snapshot.values[keep]
    curr = GraphSnapshot(n, edges, values)
    return curr, np.array(sorted(touched), dtype=np.int64)


@dataclass(frozen=True)
class IngestResult:
    """Outcome of one :meth:`StreamIngestor.commit`."""

    snapshot: GraphSnapshot        # the new resident snapshot
    diff: SnapshotDiff             # GD delta prev → new (wire format)
    dirty: np.ndarray              # vertices incident to changed edges
    num_events: int                # events folded by this commit

    @property
    def payload_nbytes(self) -> int:
        """Wire bytes the delta would cost under GD (§3.2 accounting)."""
        return self.diff.payload_nbytes


class StreamIngestor:
    """Folds edge events into a resident snapshot via GD deltas.

    Parameters
    ----------
    snapshot:
        The initial resident graph (e.g. the last training snapshot).
    """

    def __init__(self, snapshot: GraphSnapshot) -> None:
        self._resident = snapshot
        self._pending: list[EdgeEvent] = []
        self._frontier: set[int] = set()
        self.total_events = 0
        self.total_commits = 0
        self.total_payload_nbytes = 0

    # -- state ---------------------------------------------------------------------
    @property
    def resident(self) -> GraphSnapshot:
        return self._resident

    @property
    def num_pending(self) -> int:
        return len(self._pending)

    @property
    def frontier(self) -> np.ndarray:
        """Dirty vertices accumulated since :meth:`take_frontier`."""
        return np.array(sorted(self._frontier), dtype=np.int64)

    def take_frontier(self) -> np.ndarray:
        """Return and clear the accumulated dirty-vertex frontier."""
        out = self.frontier
        self._frontier.clear()
        return out

    def rebase(self, snapshot: GraphSnapshot) -> None:
        """Swap the resident snapshot wholesale (e.g. a periodic resync
        from an authoritative store).  Pending events are kept and will
        apply against the new base on the next commit."""
        if snapshot.num_vertices != self._resident.num_vertices:
            raise DatasetError("rebase must keep the vertex set fixed")
        self._resident = snapshot

    # -- event intake ----------------------------------------------------------------
    def push(self, event: EdgeEvent) -> None:
        n = self._resident.num_vertices
        if not (0 <= event.src < n and 0 <= event.dst < n):
            raise DatasetError(
                f"event endpoint ({event.src}, {event.dst}) outside the "
                f"resident vertex set of size {n}")
        self._pending.append(event)

    def push_batch(self, events: Iterable[EdgeEvent]) -> int:
        count = 0
        for event in events:
            self.push(event)
            count += 1
        return count

    # -- commit ------------------------------------------------------------------------
    def commit(self) -> IngestResult:
        """Fold every pending event into the resident snapshot.

        The new snapshot is materialized, the transition is encoded as a
        :class:`SnapshotDiff` (checksummed against the old resident, so
        the wire format stays replayable to any mirror holding the same
        base), and the dirty frontier absorbs the touched endpoints.
        """
        prev = self._resident
        events = self._pending
        self._pending = []
        if not events:
            empty = np.empty(0, dtype=np.int64)
            diff = diff_snapshots(prev, prev)
            return IngestResult(prev, diff, empty, 0)

        curr, dirty = fold_event_batch(prev, events)

        # encode the transition in the GD wire format and replay it onto
        # the resident copy — the same path a remote mirror would take
        diff = diff_snapshots(prev, curr)
        self._resident = curr
        self._frontier.update(dirty.tolist())
        self.total_events += len(events)
        self.total_commits += 1
        self.total_payload_nbytes += diff.payload_nbytes
        return IngestResult(curr, diff, dirty, len(events))


def events_between(prev: GraphSnapshot,
                   curr: GraphSnapshot) -> list[EdgeEvent]:
    """Express a snapshot transition as an edge-event list.

    Used by stream replays: a recorded DTDG timeline is turned back into
    the event stream a live system would have observed.  Topology changes
    become add/remove events; common edges whose value changed become a
    remove+add pair so the replayed resident matches ``curr`` exactly.
    """
    diff = diff_snapshots(prev, curr)
    events = [EdgeEvent(int(u), int(v), "remove") for u, v in diff.removed]

    n = prev.num_vertices
    curr_keys = curr.edges[:, 0] * np.int64(n) + curr.edges[:, 1]
    prev_keys = prev.edges[:, 0] * np.int64(n) + prev.edges[:, 1]
    added_keys = (diff.added[:, 0] * np.int64(n) + diff.added[:, 1]
                  if len(diff.added) else np.empty(0, dtype=np.int64))
    added_pos = np.searchsorted(curr_keys, added_keys)
    for (u, v), pos in zip(diff.added, added_pos):
        events.append(EdgeEvent(int(u), int(v), "add",
                                float(curr.values[pos])))

    # common edges with changed values
    common_mask = np.isin(curr_keys, prev_keys, assume_unique=True)
    common_keys = curr_keys[common_mask]
    prev_pos = np.searchsorted(prev_keys, common_keys)
    curr_pos = np.nonzero(common_mask)[0]
    # exact comparison: edge values are transaction amounts/counts, and
    # a tolerance here would let the replayed resident silently drift
    changed = prev.values[prev_pos] != curr.values[curr_pos]
    for pp, cp in zip(prev_pos[changed], curr_pos[changed]):
        u, v = int(prev.edges[pp, 0]), int(prev.edges[pp, 1])
        events.append(EdgeEvent(u, v, "remove"))
        events.append(EdgeEvent(u, v, "add", float(curr.values[cp])))
    return events
