"""Per-vertex model-state cache with k-hop invalidation.

The serving engine keeps, for every vertex, the outputs of each GCN
layer plus the temporal carries (LSTM ``(h, c)`` rows, M-product history
frames) that scoring at the current timestep depends on.  When a batch
of edge events lands, only vertices whose rows can actually have changed
need recomputation.  The reach of a delta is bounded by the network
depth: with degree features, an edge touching vertex set ``D₀`` perturbs

* the feature rows of ``D₀`` only,
* layer-ℓ outputs of vertices within ℓ hops of ``D₀`` (each GCN layer
  reads one ring of neighbors, and the Laplacian's degree normalization
  reaches the same ring),

so invalidating the ``k = num_layers`` hop neighborhood of the touched
endpoints is sufficient for exact (not approximate) incremental
inference — the ReInc/InstantGNN observation mapped onto this codebase's
snapshot machinery.  Expansion only needs the *new* topology: an edge
present solely in the old snapshot was removed, so both its endpoints
are already seeds.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.graph.snapshot import GraphSnapshot
from repro.graph.traversal import undirected_distances

__all__ = ["EmbeddingCache", "expand_dirty"]


def expand_dirty(snapshot: GraphSnapshot, seeds: np.ndarray,
                 hops: int) -> np.ndarray:
    """Vertices within ``hops`` undirected hops of ``seeds``.

    Runs the shared vectorized mask-frontier BFS over the snapshot's
    edge array (O(E) boolean work per hop, no sorting); returns a
    sorted unique vertex array including the seeds.
    """
    seeds = np.unique(np.asarray(seeds, dtype=np.int64))
    if hops <= 0 or len(seeds) == 0 or snapshot.num_edges == 0:
        return seeds
    dist = undirected_distances(snapshot.num_vertices, snapshot.edges,
                                seeds, hops)
    return np.flatnonzero(dist <= hops)


class EmbeddingCache:
    """Holds per-vertex layer outputs/carries and the pending dirty set.

    The cache itself is storage plus invalidation bookkeeping; the
    :class:`~repro.serve.engine.InferenceEngine` reads and writes the
    arrays.  Layout:

    ``features``
        ``(N, F)`` input feature rows (in/out degrees of the resident
        snapshot).
    ``layer_outputs``
        One ``(N, dim_ℓ)`` array per layer — the post-RNN output ``z_ℓ``
        that feeds layer ``ℓ+1`` (the last one is the served embedding).
    ``pre_carry`` / ``post_carry``
        Temporal state per layer *entering* the current timestep (frozen
        while events stream in) and *leaving* it (what the next
        ``advance`` promotes).  Structure is model-kind specific and
        owned by the engine.
    """

    def __init__(self, num_vertices: int, num_layers: int,
                 k_hops: int | None = None, *,
                 max_rows: int | None = None) -> None:
        if num_layers < 1:
            raise ConfigError("num_layers must be >= 1")
        k = num_layers if k_hops is None else k_hops
        if k < num_layers:
            raise ConfigError(
                f"k_hops={k} below num_layers={num_layers} would serve "
                f"stale rows; exactness needs k >= depth")
        if max_rows is not None and max_rows < 1:
            raise ConfigError(f"max_rows must be >= 1, got {max_rows}")
        self.num_vertices = num_vertices
        self.num_layers = num_layers
        self.k_hops = k
        self.max_rows = max_rows
        self.features: np.ndarray | None = None
        self.layer_outputs: list[np.ndarray] = []
        self.pre_carry: list = []
        self.post_carry: list = []
        self._dirty: np.ndarray = np.arange(num_vertices, dtype=np.int64)
        # seeds already expanded since the last clean(); re-walking them
        # is redundant (see invalidate) and bursts of events sharing
        # endpoints are common in transaction streams
        self._expanded: np.ndarray = np.empty(0, dtype=np.int64)
        # LRU bookkeeping for bounded-memory serving: a logical clock
        # stamped onto rows as they are read, plus the evicted
        # (logically non-resident) row set
        self._last_used = np.zeros(num_vertices, dtype=np.int64)
        self._use_clock = 0
        self._evicted: np.ndarray = np.empty(0, dtype=np.int64)
        self.invalidations = 0
        self.rows_invalidated = 0
        self.seeds_deduplicated = 0
        self.evictions = 0
        self.rows_evicted = 0
        self.rows_reloaded = 0

    # -- dirty tracking ------------------------------------------------------------
    @property
    def dirty(self) -> np.ndarray:
        return self._dirty

    @property
    def num_dirty(self) -> int:
        return len(self._dirty)

    @property
    def all_dirty(self) -> bool:
        return len(self._dirty) == self.num_vertices

    def invalidate(self, snapshot: GraphSnapshot,
                   seeds: np.ndarray) -> np.ndarray:
        """Mark the k-hop neighborhood of ``seeds`` stale; returns the
        newly computed dirty set (cumulative until :meth:`clean`).

        Seeds already expanded since the last :meth:`clean` are skipped
        instead of re-walked.  This is exact, not heuristic: a repeated
        seed's k-hop reach can only grow through edges added *after* its
        first expansion, and every such edge contributes its own (fresh)
        endpoints to the seed set of the commit that added it — so the
        repeat's reach is covered by the old expansion plus the fresh
        seeds' expansions.  Removed edges only shrink reach, and
        over-invalidation never serves a stale row.
        """
        if self.all_dirty:
            return self._dirty
        seeds = np.unique(np.asarray(seeds, dtype=np.int64))
        fresh = np.setdiff1d(seeds, self._expanded, assume_unique=True)
        self.seeds_deduplicated += len(seeds) - len(fresh)
        if len(fresh) == 0:
            return self._dirty
        region = expand_dirty(snapshot, fresh, self.k_hops)
        self._dirty = np.union1d(self._dirty, region)
        self._reclaim(region)
        self._expanded = np.union1d(self._expanded, fresh)
        self.invalidations += 1
        self.rows_invalidated += len(region)
        return self._dirty

    def mark_dirty(self, rows: np.ndarray) -> np.ndarray:
        """Union pre-expanded rows into the dirty set without walking
        the graph (a router that already expanded the frontier once
        hands shards their slice through this)."""
        rows = np.asarray(rows, dtype=np.int64)
        if len(rows) == 0:
            return self._dirty
        if not self.all_dirty:
            self._dirty = np.union1d(self._dirty, rows)
            self._reclaim(rows)
            self.invalidations += 1
            self.rows_invalidated += len(rows)
        return self._dirty

    def invalidate_all(self) -> None:
        self._dirty = np.arange(self.num_vertices, dtype=np.int64)
        self._evicted = np.empty(0, dtype=np.int64)
        self.invalidations += 1
        self.rows_invalidated += self.num_vertices

    def _reclaim(self, rows: np.ndarray) -> None:
        """Pull ``rows`` back out of the evicted set when they get
        dirtied: a dirty row *will* be recomputed at the next refresh,
        and exactness demands it — rows inside an invalidation cone
        feed other dirty rows' aggregations, so their stored layer
        outputs must never be left stale, evicted or not."""
        if len(self._evicted):
            self._evicted = np.setdiff1d(self._evicted, rows)

    def clean(self) -> np.ndarray:
        """Consume the dirty set (the engine recomputed those rows)."""
        out = self._dirty
        self._dirty = np.empty(0, dtype=np.int64)
        self._expanded = np.empty(0, dtype=np.int64)
        return out

    # -- bounded-memory eviction ---------------------------------------------------
    # Eviction is *lazy*: a victim leaves the logically resident set
    # (its storage stays allocated in this in-process simulation) but
    # is NOT recomputed until a read actually touches it — touch()
    # reloads it into the dirty set, and the pre-read refresh recomputes
    # it.  Bounded memory is traded for on-demand recompute, never for
    # staleness, and rows nobody asks for again cost nothing.

    @property
    def evicted(self) -> np.ndarray:
        return self._evicted

    @property
    def num_evicted(self) -> int:
        return len(self._evicted)

    def touch(self, rows: np.ndarray | None) -> None:
        """Stamp ``rows`` (``None`` = every row) as recently read and
        reload any of them that were evicted (cache miss → the row goes
        dirty and the next refresh recomputes it before it is served).

        Only *reads* count as use — recomputation does not, or refresh
        sweeps would stamp victims most-recent and invert the LRU
        order.  A no-op unless ``max_rows`` bounds the resident set.
        """
        if self.max_rows is None:
            return
        self._use_clock += 1
        if rows is None:
            self._last_used[:] = self._use_clock
            rows = self._evicted
        elif len(rows):
            self._last_used[rows] = self._use_clock
        if rows is None or len(rows) == 0 or len(self._evicted) == 0:
            return
        misses = np.intersect1d(rows, self._evicted)
        if len(misses):
            self._evicted = np.setdiff1d(self._evicted, misses,
                                         assume_unique=True)
            self._dirty = np.union1d(self._dirty, misses)
            self.rows_reloaded += len(misses)

    def maybe_evict(self) -> int:
        """Trim the clean resident set down to ``max_rows`` by moving
        the least-recently-read rows to the evicted set; returns how
        many were evicted."""
        if self.max_rows is None:
            return 0
        resident = np.setdiff1d(
            np.setdiff1d(np.arange(self.num_vertices, dtype=np.int64),
                         self._dirty, assume_unique=True),
            self._evicted, assume_unique=True)
        excess = len(resident) - self.max_rows
        if excess <= 0:
            return 0
        order = np.argsort(self._last_used[resident], kind="stable")
        victims = resident[order[:excess]]
        self._evicted = np.union1d(self._evicted, victims)
        self.evictions += 1
        self.rows_evicted += len(victims)
        return len(victims)

    # -- embeddings ----------------------------------------------------------------
    @property
    def embeddings(self) -> np.ndarray:
        """The served per-vertex embedding matrix (last layer output)."""
        if not self.layer_outputs:
            raise ConfigError("cache not primed: run an engine step first")
        return self.layer_outputs[-1]
