"""LSTM cells (paper §5.1 / §5.2).

:class:`LSTMCell` is the standard Hochreiter–Schmidhuber cell used by
CD-GCN over per-vertex feature sequences (window ``w = 1``: state and
output depend on the previous state, current input and previous output).

EvolveGCN applies the *same* recurrence to the GCN weight matrices
instead of vertex features (§5.2, EGCN-O): ``W_t = LSTM(W_{t-1})`` where
the cell's hidden state *is* the evolving weight matrix.
:class:`WeightLSTMCell` implements that specialization: input size =
hidden size = the weight's column count, and the rows of the weight act
as the batch dimension.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import Module, Parameter, Tensor, functional as F, init, ops

__all__ = ["LSTMCell", "WeightLSTMCell", "lstm_flops"]


def lstm_flops(rows: int, input_size: int, hidden_size: int) -> float:
    """FLOPs of one cell application over ``rows`` independent rows."""
    return 2.0 * rows * 4 * hidden_size * (input_size + hidden_size)


class LSTMCell(Module):
    """One step of an LSTM over a batch of row vectors.

    State is the pair ``(h, c)``; gates follow the standard layout
    ``[i, f, g, o]``.  The forget-gate bias starts at 1.0 (common
    practice; keeps early training stable).
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Parameter(
            init.xavier_uniform((input_size, 4 * hidden_size), rng),
            name="lstm.w_ih")
        self.w_hh = Parameter(
            init.orthogonal((hidden_size, 4 * hidden_size), rng),
            name="lstm.w_hh")
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size:2 * hidden_size] = 1.0  # forget gate
        self.bias = Parameter(bias, name="lstm.bias")

    def init_state(self, rows: int) -> tuple[Tensor, Tensor]:
        h = Tensor(np.zeros((rows, self.hidden_size)))
        c = Tensor(np.zeros((rows, self.hidden_size)))
        return h, c

    def forward(self, x: Tensor,
                state: tuple[Tensor, Tensor]) -> tuple[Tensor,
                                                       tuple[Tensor, Tensor]]:
        h_prev, c_prev = state
        gates = x @ self.w_ih + h_prev @ self.w_hh + self.bias
        hs = self.hidden_size
        i = F.sigmoid(gates[:, 0 * hs:1 * hs])
        f = F.sigmoid(gates[:, 1 * hs:2 * hs])
        g = F.tanh(gates[:, 2 * hs:3 * hs])
        o = F.sigmoid(gates[:, 3 * hs:4 * hs])
        c = f * c_prev + i * g
        h = o * F.tanh(c)
        return h, (h, c)

    def run_sequence(self, xs: list[Tensor],
                     state: tuple[Tensor, Tensor] | None = None
                     ) -> tuple[list[Tensor], tuple[Tensor, Tensor]]:
        """Apply the cell along a list of frames; returns outputs + state."""
        if state is None:
            state = self.init_state(xs[0].shape[0])
        outs: list[Tensor] = []
        for x in xs:
            y, state = self.forward(x, state)
            outs.append(y)
        return outs, state

    def flops(self, rows: int) -> float:
        return lstm_flops(rows, self.input_size, self.hidden_size)


class WeightLSTMCell(Module):
    """EvolveGCN's recurrence over a GCN weight matrix (EGCN-O).

    The evolving ``F × F'`` weight is fed as both the input and the
    hidden state: rows are the batch, columns the feature dimension.
    ``forward`` returns the next weight ``W_t = h_t``.
    """

    def __init__(self, cols: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.cols = cols
        self.cell = LSTMCell(cols, cols, rng)

    def init_state(self, weight: Tensor) -> tuple[Tensor, Tensor]:
        """Hidden state starts at the initial weight, cell memory at 0."""
        c = Tensor(np.zeros(weight.shape))
        return weight, c

    def forward(self, state: tuple[Tensor, Tensor]
                ) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        w_prev, _ = state
        return self.cell.forward(w_prev, state)

    def flops(self, rows: int) -> float:
        return self.cell.flops(rows)
