"""Model building blocks: GCN, LSTM, M-transform and dense heads."""

from repro.nn.gcn import GCNLayer, gcn_dense_flops, gcn_spmm_flops
from repro.nn.lstm import LSTMCell, WeightLSTMCell, lstm_flops
from repro.nn.mproduct import m_matrix, m_transform_flops, m_transform_frames
from repro.nn.linear import EdgeScorer, Linear

__all__ = [
    "GCNLayer", "gcn_spmm_flops", "gcn_dense_flops",
    "LSTMCell", "WeightLSTMCell", "lstm_flops",
    "m_matrix", "m_transform_frames", "m_transform_flops",
    "Linear", "EdgeScorer",
]
