"""Graph Convolutional Network layers (paper Eq. 2 and the CD-GCN
skip-concatenation variant of §5.1).

Two forward paths exist on purpose:

* :meth:`GCNLayer.forward` — the standard ``σ(Ã·X·W)``;
* :meth:`GCNLayer.forward_precomputed` — consumes a *pre-computed*
  ``Ã·X`` (the §5.5 optimization: the sparse-dense product is parameter
  independent, so it is computed once before training and reused every
  epoch).
"""

from __future__ import annotations

import numpy as np

from repro.tensor import Module, Parameter, Tensor, functional as F, init, ops
from repro.tensor.sparse import SparseMatrix, spmm

__all__ = ["GCNLayer", "gcn_spmm_flops", "gcn_dense_flops"]


def gcn_spmm_flops(nnz: int, features: int) -> float:
    """FLOPs of the sparse aggregation ``Ã·X`` (2 per multiply-add)."""
    return 2.0 * nnz * features


def gcn_dense_flops(rows: int, f_in: int, f_out: int) -> float:
    """FLOPs of the dense projection ``(Ã·X)·W``."""
    return 2.0 * rows * f_in * f_out


class GCNLayer(Module):
    """One graph convolution.

    Parameters
    ----------
    in_features / out_features:
        ``F`` and ``F'`` of Eq. 2.
    skip_concat:
        CD-GCN variant (§5.1): ``Y = σ(Y₀ ∘ Y₀·W)`` where ``Y₀ = Ã·X``;
        the output width becomes ``in_features + out_features``.
    activation:
        ``"relu"`` (default) or ``"none"`` (the framework's last layer
        leaves logit scaling to the head).
    """

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, skip_concat: bool = False,
                 activation: str = "relu") -> None:
        super().__init__()
        if activation not in ("relu", "none"):
            raise ValueError(f"unsupported activation {activation!r}")
        self.in_features = in_features
        self.out_features = out_features
        self.skip_concat = skip_concat
        self.activation = activation
        self.weight = Parameter(
            init.xavier_uniform((in_features, out_features), rng),
            name="gcn.weight")

    @property
    def output_dim(self) -> int:
        if self.skip_concat:
            return self.in_features + self.out_features
        return self.out_features

    # -- forward paths ----------------------------------------------------------
    def forward(self, laplacian: SparseMatrix, x: Tensor) -> Tensor:
        return self.forward_precomputed(spmm(laplacian, x))

    def forward_precomputed(self, aggregated: Tensor) -> Tensor:
        """Apply the parameterized part to a pre-computed ``Ã·X``."""
        projected = aggregated @ self.weight
        if self.skip_concat:
            out = ops.concat([aggregated, projected], axis=1)
        else:
            out = projected
        if self.activation == "relu":
            out = F.relu(out)
        return out

    def forward_with_weight(self, laplacian: SparseMatrix, x: Tensor,
                            weight: Tensor,
                            precomputed: Tensor | None = None) -> Tensor:
        """EvolveGCN path: use an externally evolved weight ``W_t``
        (optionally over a pre-computed / reuse-patched ``Ã·X``)."""
        aggregated = precomputed if precomputed is not None \
            else spmm(laplacian, x)
        projected = aggregated @ weight
        if self.activation == "relu":
            projected = F.relu(projected)
        return projected

    # -- cost model ---------------------------------------------------------------
    def flops(self, nnz: int, rows: int) -> tuple[float, float]:
        """(sparse, dense) FLOPs of one application."""
        return (gcn_spmm_flops(nnz, self.in_features),
                gcn_dense_flops(rows, self.in_features, self.out_features))
