"""Dense layers and the edge-concatenation classifier head.

The paper derives edge-level predictions "via concatenating the
embeddings of the edge end-points and applying a fully connected layer"
(§6.4); :class:`EdgeScorer` implements exactly that head.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import Module, Parameter, Tensor, init, ops

__all__ = ["Linear", "EdgeScorer"]


class Linear(Module):
    """Affine map ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform((in_features, out_features), rng),
            name="linear.weight")
        self.use_bias = bias
        if bias:
            self.bias = Parameter(np.zeros(out_features), name="linear.bias")

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.use_bias:
            out = out + self.bias
        return out

    def flops(self, rows: int) -> float:
        return 2.0 * rows * self.in_features * self.out_features


class EdgeScorer(Module):
    """Classify vertex pairs from concatenated endpoint embeddings.

    ``forward(z, pairs)`` gathers ``z[u] ‖ z[v]`` for each pair and maps
    it to ``num_classes`` logits.
    """

    def __init__(self, embed_dim: int, num_classes: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.embed_dim = embed_dim
        self.num_classes = num_classes
        self.fc = Linear(2 * embed_dim, num_classes, rng)

    def forward(self, embeddings: Tensor, pairs: np.ndarray) -> Tensor:
        pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        src = embeddings[pairs[:, 0]]
        dst = embeddings[pairs[:, 1]]
        return self.fc(ops.concat([src, dst], axis=1))
