"""The M-transform (paper §5.3): TM-GCN's parameter-free RNN component.

``Y = X ×₁ M`` with the banded lower-triangular averaging matrix

    M[t, k] = 1 / min(w, t)   for max(1, t−w+1) ≤ k ≤ t   (1-indexed)

i.e. each output frame is the average of the current and up to ``w−1``
previous input frames.  The same matrix smooths the input adjacency
tensor in TM-GCN's preprocessing step (§5.4); that sparse variant lives
in :mod:`repro.train.preprocess`.

For block-wise (checkpointed / distributed) execution the transform is
applied with an explicit *history window*: the carry between blocks is
the last ``w−1`` frames of the previous block, which is exactly the
``π_b`` payload of paper Fig. 2.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.tensor import Tensor
from repro.tensor.tensor import as_tensor

__all__ = ["m_matrix", "m_transform_frames", "m_transform_flops",
           "window_average"]


def window_average(contributors: list[Tensor]) -> Tensor:
    """Uniform average of equally shaped frames as ONE tape node.

    The naive ``x₀·s + x₁·s + …`` chain allocates an intermediate (and
    an autograd node) per contributor; a T-step timeline pays that for
    every output frame.  This op accumulates in place and records a
    single backward (each parent receives ``g · 1/len``), which is what
    keeps the M-transform off the training profile's hot list.
    """
    contributors = [as_tensor(c) for c in contributors]
    if not contributors:
        raise ConfigError("window_average needs at least one frame")
    scale = 1.0 / len(contributors)
    acc = contributors[0].data * scale
    for extra in contributors[1:]:
        acc += extra.data * scale
    def backward(g):
        shared = g * scale
        return tuple(shared for _ in contributors)

    return Tensor._make(acc, tuple(contributors), backward)


def m_matrix(num_timesteps: int, window: int) -> np.ndarray:
    """Dense ``T × T`` M-product matrix (for reference and tests)."""
    if window <= 0:
        raise ConfigError(f"window must be positive, got {window}")
    m = np.zeros((num_timesteps, num_timesteps))
    for t in range(1, num_timesteps + 1):  # 1-indexed per the paper
        lo = max(1, t - window + 1)
        for k in range(lo, t + 1):
            m[t - 1, k - 1] = 1.0 / min(window, t)
    return m


def m_transform_frames(frames: list[Tensor], window: int,
                       history: list[Tensor] | None = None
                       ) -> tuple[list[Tensor], list[Tensor]]:
    """Apply the M-transform to a block of frames.

    Parameters
    ----------
    frames:
        Frames of the current block, in time order.
    history:
        The trailing ``≤ w−1`` frames of the *previous* block (the RNN
        carry ``π``); ``None`` means this block starts the timeline.

    Returns
    -------
    (outputs, new_history):
        One output per input frame, plus the trailing window to carry
        into the next block.
    """
    if window <= 0:
        raise ConfigError(f"window must be positive, got {window}")
    past: list[Tensor] = list(history) if history else []
    outputs: list[Tensor] = []
    for x in frames:
        active = past[-(window - 1):] if window > 1 else []
        outputs.append(window_average(active + [x]))
        past.append(x)
    new_history = past[-(window - 1):] if window > 1 else []
    return outputs, new_history


def m_transform_flops(rows: int, features: int, window: int) -> float:
    """FLOPs per output frame: averaging ≤ w frames of shape rows×F."""
    return 2.0 * rows * features * window
