"""repro — reproduction of "Efficient Scaling of Dynamic Graph Neural
Networks" (SC'21, arXiv:2109.07893).

Subpackages
-----------
``repro.tensor``
    From-scratch reverse-mode autograd over numpy/scipy-sparse.
``repro.graph``
    Discrete-time dynamic graphs: snapshots, Laplacians, the
    graph-difference encoding, generators and calibrated datasets.
``repro.cluster``
    Simulated multi-node multi-GPU system: device memory accounting,
    CPU→GPU transfer engine, link-model collectives, per-rank clocks.
``repro.partition``
    Snapshot, vertex (hypergraph) and hybrid partitioning strategies.
``repro.nn`` / ``repro.models``
    GCN/LSTM/M-product blocks and the CD-GCN, EvolveGCN, TM-GCN models.
``repro.train``
    Smoothing pre-processing, timeline gradient checkpointing, tasks,
    single-device and distributed trainers, model checkpoint save/load.
``repro.serve``
    Streaming inference: live edge-event ingestion via graph-difference
    deltas, a k-hop-invalidated embedding cache, and a micro-batching
    model server for link-prediction and fraud-score queries.
``repro.store``
    Temporal graph store: append-only delta-log WAL, CSR snapshot
    compaction, time-travel views, and crash-recoverable serving state.
``repro.bench``
    Harness that regenerates every table and figure of the paper, plus
    the serving replay workload.
"""

__version__ = "1.0.0"
