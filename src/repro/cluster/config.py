"""Cluster hardware specification for the simulator.

The paper's testbed (AiMOS) is 16 nodes × 8 NVIDIA V100 GPUs, 768 GiB
host RAM per node, dual 100 Gb EDR InfiniBand between nodes, and
PCIe/NVLink inside a node.  :class:`ClusterSpec` captures the quantities
the execution-time model needs: per-class bandwidths and latencies, GPU
memory capacity, and effective compute rates.

Absolute constants are calibrated to commodity datasheet numbers; the
reproduced experiments compare *shapes* (speedup curves, crossovers), so
only the ratios between the constants matter.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError

__all__ = ["ClusterSpec", "GIB"]

GIB = 1024 ** 3


@dataclass(frozen=True)
class ClusterSpec:
    """Topology and rate model of a multi-node multi-GPU system.

    Attributes
    ----------
    num_nodes / gpus_per_node:
        Rank layout; rank ``r`` lives on node ``r // gpus_per_node``.
    gpu_memory_bytes:
        HBM capacity per GPU; allocations beyond it raise
        :class:`~repro.errors.DeviceOOM`.
    dense_flops / sparse_flops:
        Effective FLOP/s for dense GEMM-like and sparse (memory-bound)
        kernels on one GPU.
    h2d_bandwidth / h2d_latency:
        Pinned-memory CPU→GPU transfer rate and per-transfer latency
        (paper §3.2 uses pinned memory for both Base and GD methods).
    intra_bandwidth / intra_latency:
        GPU↔GPU links within a node.
    inter_bandwidth / inter_latency:
        Per-node NIC rate for traffic crossing node boundaries; all ranks
        of a node share this NIC (the paper's (K−1)/K analysis, §6.3).
    """

    num_nodes: int = 16
    gpus_per_node: int = 8
    gpu_memory_bytes: int = 32 * GIB
    dense_flops: float = 7.0e12
    sparse_flops: float = 4.0e11
    h2d_bandwidth: float = 11.0e9
    h2d_latency: float = 10.0e-6
    intra_bandwidth: float = 48.0e9
    intra_latency: float = 4.0e-6
    # the paper's nodes have *dual* 100 Gb EDR InfiniBand rails
    inter_bandwidth: float = 25.0e9
    inter_latency: float = 6.0e-6

    def __post_init__(self) -> None:
        if self.num_nodes <= 0 or self.gpus_per_node <= 0:
            raise ConfigError("cluster needs positive node/GPU counts")
        if self.gpu_memory_bytes <= 0:
            raise ConfigError("gpu_memory_bytes must be positive")
        for field in ("dense_flops", "sparse_flops", "h2d_bandwidth",
                      "intra_bandwidth", "inter_bandwidth"):
            if getattr(self, field) <= 0:
                raise ConfigError(f"{field} must be positive")

    # -- rank geometry -----------------------------------------------------------
    @property
    def total_gpus(self) -> int:
        return self.num_nodes * self.gpus_per_node

    def node_of(self, rank: int) -> int:
        if not 0 <= rank < self.total_gpus:
            raise ConfigError(f"rank {rank} outside [0, {self.total_gpus})")
        return rank // self.gpus_per_node

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def link(self, src: int, dst: int) -> tuple[float, float]:
        """(bandwidth, latency) of the src→dst link class."""
        if src == dst:
            return float("inf"), 0.0
        if self.same_node(src, dst):
            return self.intra_bandwidth, self.intra_latency
        return self.inter_bandwidth, self.inter_latency

    # -- convenience constructors ---------------------------------------------------
    @classmethod
    def aimos(cls, num_nodes: int = 16, gpus_per_node: int = 8,
              **overrides) -> "ClusterSpec":
        """The paper's testbed layout (defaults) with optional overrides."""
        return cls(num_nodes=num_nodes, gpus_per_node=gpus_per_node,
                   **overrides)

    @classmethod
    def single_node(cls, gpus: int = 8, **overrides) -> "ClusterSpec":
        return cls(num_nodes=1, gpus_per_node=gpus, **overrides)

    def with_gpus(self, total_gpus: int) -> "ClusterSpec":
        """Smallest prefix of this cluster exposing ``total_gpus`` ranks.

        Mirrors how the paper's strong-scaling study grows P = 1 … 128 on
        the same machine: fill nodes one at a time, 8 ranks per node.
        """
        if total_gpus <= 0:
            raise ConfigError("total_gpus must be positive")
        full_nodes, rem = divmod(total_gpus, self.gpus_per_node)
        if rem:
            if full_nodes == 0:
                return replace(self, num_nodes=1, gpus_per_node=total_gpus)
            # uneven tail: round the layout up to whole nodes; callers use
            # exactly `total_gpus` ranks out of it
            full_nodes += 1
        nodes = max(1, full_nodes)
        return replace(self, num_nodes=nodes)
