"""The assembled simulated system: devices + clocks + collectives.

:class:`Cluster` is the facade the distributed trainer talks to.  It
instantiates one :class:`Device` per rank (prefix of the spec's rank
grid), a shared :class:`Communicator`, and a per-rank transfer engine,
and exposes the critical-path :class:`TimeBreakdown` the benchmarks
report.
"""

from __future__ import annotations

from repro.cluster.clock import RankClock, TimeBreakdown, max_breakdown
from repro.cluster.comm import Communicator
from repro.cluster.config import ClusterSpec
from repro.cluster.device import Device
from repro.cluster.transfer import TransferEngine
from repro.errors import ConfigError

__all__ = ["Cluster"]


class Cluster:
    """A P-rank slice of a :class:`ClusterSpec` ready to execute on.

    Parameters
    ----------
    spec:
        Hardware model.  The cluster exposes ranks ``0 … num_ranks-1``
        placed on nodes in fill order (8-per-node on the paper layout).
    num_ranks:
        How many ranks to activate; defaults to every GPU in the spec.
    """

    def __init__(self, spec: ClusterSpec,
                 num_ranks: int | None = None) -> None:
        num_ranks = spec.total_gpus if num_ranks is None else int(num_ranks)
        if not 1 <= num_ranks <= spec.total_gpus:
            raise ConfigError(
                f"num_ranks {num_ranks} outside [1, {spec.total_gpus}]")
        self.spec = spec
        self.num_ranks = num_ranks
        self.clocks = [RankClock(r) for r in range(num_ranks)]
        self.devices = [Device(r, spec, self.clocks[r])
                        for r in range(num_ranks)]
        self.comm = Communicator(spec, self.clocks)
        self.transfers = [TransferEngine() for _ in range(num_ranks)]

    @classmethod
    def of_size(cls, num_ranks: int, gpus_per_node: int = 8,
                **spec_overrides) -> "Cluster":
        """Cluster with exactly ``num_ranks`` ranks on the paper's layout
        (nodes filled 8 ranks at a time, like the strong-scaling study)."""
        if num_ranks <= 0:
            raise ConfigError("num_ranks must be positive")
        nodes = max(1, -(-num_ranks // gpus_per_node))
        gpn = num_ranks if nodes == 1 else gpus_per_node
        spec = ClusterSpec.aimos(num_nodes=nodes, gpus_per_node=gpn,
                                 **spec_overrides)
        return cls(spec, num_ranks=num_ranks)

    # -- accessors ------------------------------------------------------------------
    def device(self, rank: int) -> Device:
        return self.devices[rank]

    def transfer(self, rank: int) -> TransferEngine:
        return self.transfers[rank]

    @property
    def breakdown(self) -> TimeBreakdown:
        """Critical-path time breakdown across ranks."""
        return max_breakdown(self.clocks)

    @property
    def elapsed(self) -> float:
        return self.breakdown.total

    def peak_memory(self) -> int:
        return max(d.peak_in_use for d in self.devices)

    def barrier(self) -> None:
        latest = max(c.now for c in self.clocks)
        for c in self.clocks:
            c.wait_until(latest, "comm")

    def reset(self) -> None:
        for d in self.devices:
            d.reset()
        for t in self.transfers:
            t.reset()
        self.comm.reset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Cluster(P={self.num_ranks}, nodes≤{self.spec.num_nodes}, "
                f"gpus/node={self.spec.gpus_per_node})")
