"""Simulated time accounting.

Every rank owns a :class:`RankClock` that accumulates modeled seconds in
the three buckets the paper's figures break execution into:

* ``transfer`` — CPU→GPU snapshot/feature movement (Fig. 4),
* ``compute``  — GCN/RNN kernels,
* ``comm``     — inter-GPU collectives (Fig. 5).

The cluster runs bulk-synchronously: after each collective the
participating clocks synchronize to the slowest rank, charging the wait
to the bucket of the operation that caused it — exactly how per-epoch
wall-clock is attributed on a real synchronous data-parallel run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["TimeBreakdown", "RankClock", "max_breakdown"]

BUCKETS = ("transfer", "compute", "comm")


@dataclass
class TimeBreakdown:
    """Seconds spent per bucket; the unit the benchmarks report."""

    transfer: float = 0.0
    compute: float = 0.0
    comm: float = 0.0

    @property
    def total(self) -> float:
        return self.transfer + self.compute + self.comm

    def __add__(self, other: "TimeBreakdown") -> "TimeBreakdown":
        return TimeBreakdown(self.transfer + other.transfer,
                             self.compute + other.compute,
                             self.comm + other.comm)

    def scaled(self, factor: float) -> "TimeBreakdown":
        return TimeBreakdown(self.transfer * factor, self.compute * factor,
                             self.comm * factor)

    def as_millis(self) -> dict[str, float]:
        return {"transfer_ms": self.transfer * 1e3,
                "compute_ms": self.compute * 1e3,
                "comm_ms": self.comm * 1e3,
                "total_ms": self.total * 1e3}


@dataclass
class RankClock:
    """Per-rank simulated clock with bucket attribution."""

    rank: int
    breakdown: TimeBreakdown = field(default_factory=TimeBreakdown)

    @property
    def now(self) -> float:
        return self.breakdown.total

    def advance(self, bucket: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds}s")
        if bucket not in BUCKETS:
            raise ValueError(f"unknown bucket {bucket!r}; "
                             f"expected one of {BUCKETS}")
        setattr(self.breakdown, bucket,
                getattr(self.breakdown, bucket) + seconds)

    def wait_until(self, t: float, bucket: str) -> None:
        """Stall this rank until simulated time ``t`` (barrier wait)."""
        if t > self.now:
            self.advance(bucket, t - self.now)

    def reset(self) -> None:
        self.breakdown = TimeBreakdown()


def max_breakdown(clocks: Iterable[RankClock]) -> TimeBreakdown:
    """Critical-path breakdown: the slowest rank's buckets.

    Under bulk-synchronous execution all ranks finish an epoch at (close
    to) the same simulated instant, so reporting the slowest rank matches
    the paper's per-epoch measurements.
    """
    clocks = list(clocks)
    if not clocks:
        return TimeBreakdown()
    slowest = max(clocks, key=lambda c: c.now)
    return TimeBreakdown(slowest.breakdown.transfer,
                         slowest.breakdown.compute,
                         slowest.breakdown.comm)
