"""CPU→GPU transfer engine (paper §3.1/§3.2).

Models pinned-memory host-to-device copies: ``latency + bytes/bandwidth``
per transfer, charged to the owning rank's ``transfer`` bucket.  Both the
naive (full index+value) and graph-difference snapshot paths are
implemented; the GD path *actually reconstructs* each snapshot through
:class:`~repro.graph.diff.DiffDecoder`, so correctness of the decoded
topology is exercised on every simulated transfer, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.cluster.device import Device
from repro.graph.diff import DiffDecoder, diff_snapshots
from repro.graph.snapshot import GraphSnapshot

__all__ = ["TransferEngine", "TransferStats"]


@dataclass
class TransferStats:
    """Byte/second totals across all transfers issued via one engine."""

    bytes_moved: int = 0
    seconds: float = 0.0
    num_transfers: int = 0
    # bytes the Base (naive) method would have moved for the same payloads
    snapshot_bytes_naive_equivalent: int = 0

    def merge(self, other: "TransferStats") -> None:
        self.bytes_moved += other.bytes_moved
        self.seconds += other.seconds
        self.num_transfers += other.num_transfers
        self.snapshot_bytes_naive_equivalent += \
            other.snapshot_bytes_naive_equivalent


@dataclass
class TransferEngine:
    """Issues modeled H2D copies against a device's clock."""

    stats: TransferStats = field(default_factory=TransferStats)

    def h2d(self, device: Device, nbytes: int) -> float:
        """One pinned-memory host→device copy; returns modeled seconds."""
        nbytes = int(nbytes)
        spec = device.spec
        seconds = spec.h2d_latency + nbytes / spec.h2d_bandwidth
        device.clock.advance("transfer", seconds)
        self.stats.bytes_moved += nbytes
        self.stats.seconds += seconds
        self.stats.num_transfers += 1
        return seconds

    # -- snapshot transfer paths -----------------------------------------------------
    def send_snapshot_naive(self, device: Device,
                            snapshot: GraphSnapshot) -> GraphSnapshot:
        """Base method: full (index, value) sparse representation."""
        self.h2d(device, snapshot.nbytes)
        self.stats.snapshot_bytes_naive_equivalent += snapshot.nbytes
        return snapshot

    def send_block_naive(self, device: Device,
                         snapshots: Sequence[GraphSnapshot]
                         ) -> list[GraphSnapshot]:
        return [self.send_snapshot_naive(device, s) for s in snapshots]

    def send_block_gd(self, device: Device,
                      snapshots: Sequence[GraphSnapshot]
                      ) -> list[GraphSnapshot]:
        """Graph-difference method over a per-rank chunk of a block.

        The first snapshot ships naively; each subsequent one ships as a
        diff against its predecessor and is reconstructed on the device
        side (the returned snapshots are the *decoded* ones).
        """
        snapshots = list(snapshots)
        if not snapshots:
            return []
        received = [self.send_snapshot_naive(device, snapshots[0])]
        decoder = DiffDecoder(snapshots[0])
        for prev, curr in zip(snapshots, snapshots[1:]):
            diff = diff_snapshots(prev, curr)
            self.h2d(device, diff.payload_nbytes)
            self.stats.snapshot_bytes_naive_equivalent += curr.nbytes
            received.append(decoder.push(diff))
        return received

    def send_dense(self, device: Device, nbytes: int) -> float:
        """Dense payload (feature frames) transfer (Base == GD cost)."""
        self.stats.snapshot_bytes_naive_equivalent += int(nbytes)
        return self.h2d(device, nbytes)

    @property
    def gd_savings_ratio(self) -> float:
        """naive-equivalent / actually-moved snapshot byte ratio."""
        if self.stats.bytes_moved == 0:
            return 1.0
        return (self.stats.snapshot_bytes_naive_equivalent
                / self.stats.bytes_moved)

    def reset(self) -> None:
        self.stats = TransferStats()
