"""Simulated multi-node multi-GPU system.

Substitutes the paper's AiMOS testbed (16 nodes × 8 V100, EDR IB):
devices with hard memory capacity and OOM, pinned-memory CPU→GPU
transfer modeling, and bulk-synchronous collectives over a two-level
(intra-node / shared-NIC inter-node) link model.
"""

from repro.cluster.config import ClusterSpec, GIB
from repro.cluster.clock import RankClock, TimeBreakdown, max_breakdown
from repro.cluster.device import Allocation, Device
from repro.cluster.transfer import TransferEngine, TransferStats
from repro.cluster.comm import CommEvent, Communicator
from repro.cluster.cluster import Cluster

__all__ = [
    "ClusterSpec", "GIB",
    "RankClock", "TimeBreakdown", "max_breakdown",
    "Device", "Allocation",
    "TransferEngine", "TransferStats",
    "Communicator", "CommEvent",
    "Cluster",
]
