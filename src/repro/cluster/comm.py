"""Bulk-synchronous collectives over the simulated link model.

All ranks live in one Python process, so a collective is a function over
*lists indexed by rank*.  Timing follows the paper's §6.3 analysis:

* intra-node traffic rides the node's GPU↔GPU links;
* traffic crossing nodes is serialized through the node's NIC, which all
  ``gpus_per_node`` ranks share — this is what produces the speedup dip
  when P first crosses the node boundary (P=8→16 on the paper's system)
  and the gradual recovery as the number of NICs grows with K.

After every collective the participants synchronize to the slowest rank
(charged to ``comm``), matching synchronous data-parallel training.

Volume accounting: every event records its payload bytes and a label so
the Table-2 benchmark can report redistribution volume separately from
(insignificant) gradient aggregation, exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.clock import RankClock
from repro.cluster.config import ClusterSpec
from repro.errors import CommunicationError

__all__ = ["Communicator", "CommEvent"]


@dataclass(frozen=True)
class CommEvent:
    """One logged collective: payload bytes exclude self-communication.

    ``full_equivalent_bytes`` is what the collective *would* have moved
    without delta-aware payload shrinking (the training tier's
    cross-timestep reuse ships only delta-touched boundary rows); it
    equals ``payload_bytes`` for ordinary collectives, mirroring the
    transfer engine's naive-equivalent accounting.
    """

    op: str
    label: str
    payload_bytes: int
    seconds: float
    full_equivalent_bytes: int = 0

    def __post_init__(self) -> None:
        if self.full_equivalent_bytes < self.payload_bytes:
            object.__setattr__(self, "full_equivalent_bytes",
                               self.payload_bytes)


class Communicator:
    """Collectives for ``num_ranks`` ranks laid out per ``spec``."""

    def __init__(self, spec: ClusterSpec, clocks: list[RankClock]) -> None:
        if not clocks:
            raise CommunicationError("communicator needs at least one rank")
        if len(clocks) > spec.total_gpus:
            raise CommunicationError(
                f"{len(clocks)} ranks exceed cluster capacity "
                f"{spec.total_gpus}")
        self.spec = spec
        self.clocks = clocks
        self.num_ranks = len(clocks)
        self.events: list[CommEvent] = []

    # -- helpers -----------------------------------------------------------------------
    def _barrier(self) -> None:
        latest = max(c.now for c in self.clocks)
        for c in self.clocks:
            c.wait_until(latest, "comm")

    def volume_bytes(self, label: str | None = None) -> int:
        return sum(e.payload_bytes for e in self.events
                   if label is None or e.label == label)

    def volume_units(self, label: str | None = None,
                     unit_bytes: int = 4) -> float:
        """Volume in feature-vector *units* (floats by default), the
        quantity Table 2 reports in billions."""
        return self.volume_bytes(label) / unit_bytes

    def full_equivalent_bytes(self, label: str | None = None) -> int:
        """Bytes the logged collectives would have moved without
        delta-aware payload shrinking."""
        return sum(e.full_equivalent_bytes for e in self.events
                   if label is None or e.label == label)

    def full_equivalent_units(self, label: str | None = None,
                              unit_bytes: int = 4) -> float:
        return self.full_equivalent_bytes(label) / unit_bytes

    # -- all-to-all ---------------------------------------------------------------------
    def all_to_all_bytes(self, payload: np.ndarray,
                         label: str = "redistribution",
                         full_equivalent: np.ndarray | None = None
                         ) -> float:
        """Charge an all-to-all with byte matrix ``payload[src, dst]``.

        ``full_equivalent`` optionally records the byte matrix a
        non-delta-aware exchange would have shipped (volume accounting
        only — the charged time follows ``payload``).  Returns the
        modeled wall-clock of the collective (slowest rank).
        """
        p = self.num_ranks
        payload = np.asarray(payload, dtype=np.float64)
        if payload.shape != (p, p):
            raise CommunicationError(
                f"payload matrix shape {payload.shape} != ({p}, {p})")
        spec = self.spec
        off_diag = payload.copy()
        np.fill_diagonal(off_diag, 0.0)

        nodes = [spec.node_of(r) for r in range(p)]
        num_nodes = max(nodes) + 1
        intra_out = np.zeros(p)
        intra_in = np.zeros(p)
        intra_msgs = np.zeros(p)
        inter_msgs = np.zeros(p)
        nic_out = np.zeros(num_nodes)
        nic_in = np.zeros(num_nodes)
        for src in range(p):
            for dst in range(p):
                b = off_diag[src, dst]
                if src == dst or b == 0.0:
                    continue
                if nodes[src] == nodes[dst]:
                    intra_out[src] += b
                    intra_in[dst] += b
                    intra_msgs[src] += 1
                else:
                    nic_out[nodes[src]] += b
                    nic_in[nodes[dst]] += b
                    inter_msgs[src] += 1

        # Bytes serialize through the links (shared NIC per node for
        # inter-node traffic); per-message setup overhead is paid by the
        # issuing rank and overlaps across ranks, not the NIC — real
        # collectives pipeline messages.
        seconds = np.zeros(p)
        for r in range(p):
            t_intra = (max(intra_out[r], intra_in[r]) / spec.intra_bandwidth
                       + intra_msgs[r] * spec.intra_latency)
            node = nodes[r]
            t_nic = (max(nic_out[node], nic_in[node]) / spec.inter_bandwidth
                     + inter_msgs[r] * spec.inter_latency)
            seconds[r] = t_intra + t_nic
            self.clocks[r].advance("comm", seconds[r])
        self._barrier()

        total_bytes = int(off_diag.sum())
        if full_equivalent is None:
            full_bytes = total_bytes
        else:
            full = np.asarray(full_equivalent, dtype=np.float64).copy()
            np.fill_diagonal(full, 0.0)
            full_bytes = int(full.sum())
        wall = float(seconds.max())
        self.events.append(CommEvent("all_to_all", label, total_bytes,
                                     wall, full_equivalent_bytes=full_bytes))
        return wall

    def all_to_all(self, buffers: list[list[np.ndarray]],
                   label: str = "redistribution"
                   ) -> list[list[np.ndarray]]:
        """Exchange actual arrays: ``buffers[src][dst]`` → result[dst][src].

        The data really moves (the receiving side gets the sender's
        arrays), so downstream computation is numerically faithful, and
        the byte matrix is derived from the true array sizes.
        """
        p = self.num_ranks
        if len(buffers) != p or any(len(row) != p for row in buffers):
            raise CommunicationError(
                f"buffers must be a {p}×{p} nested list")
        payload = np.zeros((p, p))
        for src in range(p):
            for dst in range(p):
                arr = buffers[src][dst]
                if arr is not None:
                    payload[src, dst] = arr.nbytes
        self.all_to_all_bytes(payload, label=label)
        return [[buffers[src][dst] for src in range(p)] for dst in range(p)]

    # -- all-reduce ---------------------------------------------------------------------
    def all_reduce_sum(self, arrays: list[np.ndarray],
                       label: str = "gradient") -> np.ndarray:
        """Ring all-reduce of per-rank arrays; every rank gets the sum."""
        p = self.num_ranks
        if len(arrays) != p:
            raise CommunicationError(
                f"{len(arrays)} buffers for {p} ranks")
        shape = arrays[0].shape
        for a in arrays:
            if a.shape != shape:
                raise CommunicationError("all_reduce buffers must match")
        total = np.sum(np.stack([np.asarray(a, dtype=np.float64)
                                 for a in arrays]), axis=0)
        nbytes = arrays[0].nbytes
        spec = self.spec
        if p > 1:
            multi_node = spec.node_of(p - 1) != spec.node_of(0)
            bw = spec.inter_bandwidth if multi_node else spec.intra_bandwidth
            lat = spec.inter_latency if multi_node else spec.intra_latency
            seconds = 2.0 * (p - 1) / p * nbytes / bw + 2 * (p - 1) * lat
        else:
            seconds = 0.0
        for c in self.clocks:
            c.advance("comm", seconds)
        self._barrier()
        # ring all-reduce moves 2(p-1)/p of the buffer per rank
        moved = int(2 * (p - 1) / p * nbytes * p) if p > 1 else 0
        self.events.append(CommEvent("all_reduce", label, moved, seconds))
        return total

    def broadcast(self, array: np.ndarray, root: int = 0,
                  label: str = "broadcast") -> list[np.ndarray]:
        """Root sends its array to every rank (tree broadcast model)."""
        p = self.num_ranks
        if not 0 <= root < p:
            raise CommunicationError(f"root {root} out of range")
        nbytes = array.nbytes
        spec = self.spec
        if p > 1:
            multi_node = spec.node_of(p - 1) != spec.node_of(0)
            bw = spec.inter_bandwidth if multi_node else spec.intra_bandwidth
            lat = spec.inter_latency if multi_node else spec.intra_latency
            hops = int(np.ceil(np.log2(p)))
            seconds = hops * (nbytes / bw + lat)
        else:
            seconds = 0.0
        for c in self.clocks:
            c.advance("comm", seconds)
        self._barrier()
        self.events.append(
            CommEvent("broadcast", label, nbytes * (p - 1), seconds))
        return [array.copy() for _ in range(p)]

    def collect_metrics(self, reg) -> None:
        """Mirror the volume ledger into a metrics registry as labeled
        counters — one telemetry family shared with the exec tier's
        real transports (``comm_bytes_total{label=}``)."""
        for label in sorted({e.label for e in self.events}):
            reg.counter("comm_bytes_total",
                        "Collective payload bytes by traffic class",
                        label=label).set_to(self.volume_bytes(label))
            reg.counter("comm_full_equivalent_bytes_total",
                        "Bytes a non-delta-aware exchange would have "
                        "shipped", label=label).set_to(
                self.full_equivalent_bytes(label))

    def reset(self) -> None:
        self.events.clear()
