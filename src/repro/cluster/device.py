"""A simulated GPU: memory accounting plus a kernel-time model.

Memory is the paper's first-order constraint ("most of the model-dataset
configurations do not execute on fewer than 8 GPUs", §3.1): the
:class:`Device` tracks named allocations against a hard capacity and
raises :class:`~repro.errors.DeviceOOM` on overflow, which is how the
benchmark harness reproduces the baseline's single-node failures and the
checkpointed implementation's success.

Kernel cost: ``flops / rate`` with separate effective rates for dense
(GEMM-like) and sparse (memory-bound SpMM) work.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

from repro.cluster.clock import RankClock
from repro.cluster.config import ClusterSpec
from repro.errors import DeviceOOM

__all__ = ["Device", "Allocation"]


@dataclass(frozen=True)
class Allocation:
    """Handle for a live device-memory region."""

    tag: str
    nbytes: int
    serial: int


class Device:
    """One simulated GPU bound to a rank and its clock."""

    def __init__(self, rank: int, spec: ClusterSpec,
                 clock: RankClock | None = None) -> None:
        self.rank = rank
        self.spec = spec
        self.clock = clock or RankClock(rank)
        self.capacity = spec.gpu_memory_bytes
        self._live: dict[int, Allocation] = {}
        self._serial = 0
        self.in_use = 0
        self.peak_in_use = 0

    # -- memory ---------------------------------------------------------------------
    def alloc(self, nbytes: int, tag: str = "anon") -> Allocation:
        """Reserve ``nbytes``; raises :class:`DeviceOOM` past capacity."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        if self.in_use + nbytes > self.capacity:
            raise DeviceOOM(
                f"rank {self.rank}: OOM allocating {nbytes} bytes "
                f"({tag}); in use {self.in_use} of {self.capacity}",
                requested=nbytes, capacity=self.capacity,
                in_use=self.in_use)
        self._serial += 1
        handle = Allocation(tag=tag, nbytes=nbytes, serial=self._serial)
        self._live[handle.serial] = handle
        self.in_use += nbytes
        self.peak_in_use = max(self.peak_in_use, self.in_use)
        return handle

    def free(self, handle: Allocation) -> None:
        live = self._live.pop(handle.serial, None)
        if live is None:
            raise KeyError(f"double free / unknown allocation {handle}")
        self.in_use -= live.nbytes

    @contextlib.contextmanager
    def hold(self, nbytes: int, tag: str = "scratch"):
        """Scoped allocation (freed on exit even on error)."""
        handle = self.alloc(nbytes, tag)
        try:
            yield handle
        finally:
            self.free(handle)

    def free_all(self, tag: str | None = None) -> int:
        """Free every live allocation (optionally only those with ``tag``);
        returns bytes released."""
        released = 0
        for serial in list(self._live):
            if tag is None or self._live[serial].tag == tag:
                released += self._live[serial].nbytes
                self.in_use -= self._live[serial].nbytes
                del self._live[serial]
        return released

    @property
    def live_allocations(self) -> list[Allocation]:
        return list(self._live.values())

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    # -- kernels ----------------------------------------------------------------------
    def compute_dense(self, flops: float) -> float:
        """Charge a dense kernel; returns modeled seconds."""
        seconds = max(flops, 0.0) / self.spec.dense_flops
        self.clock.advance("compute", seconds)
        return seconds

    def compute_sparse(self, flops: float) -> float:
        """Charge a sparse (memory-bound) kernel; returns modeled seconds."""
        seconds = max(flops, 0.0) / self.spec.sparse_flops
        self.clock.advance("compute", seconds)
        return seconds

    def reset(self) -> None:
        self._live.clear()
        self.in_use = 0
        self.peak_in_use = 0
        self.clock.reset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Device(rank={self.rank}, in_use={self.in_use}/"
                f"{self.capacity})")
