"""Tests for generators, calibrated datasets, AML-Sim and DTDG I/O."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.graph import (DATASETS, DTDG, AMLSimConfig, generate_amlsim,
                         evolving_dtdg, load_dataset, load_dtdg,
                         random_dtdg, sample_edges, save_dtdg)


class TestSampleEdges:
    def test_exact_count_no_self_loops_no_dups(self):
        rng = np.random.default_rng(0)
        edges = sample_edges(20, 50, rng)
        assert len(edges) == 50
        assert (edges[:, 0] != edges[:, 1]).all()
        assert len(set(map(tuple, edges.tolist()))) == 50

    def test_zero_edges(self):
        assert len(sample_edges(5, 0, np.random.default_rng(0))) == 0

    def test_infeasible_count_rejected(self):
        with pytest.raises(DatasetError):
            sample_edges(3, 100, np.random.default_rng(0))

    def test_negative_rejected(self):
        with pytest.raises(DatasetError):
            sample_edges(3, -1, np.random.default_rng(0))

    def test_skew_concentrates_popularity(self):
        rng = np.random.default_rng(1)
        skewed = sample_edges(200, 400, rng, skew=1.5)
        flat = sample_edges(200, 400, np.random.default_rng(1), skew=0.0)
        # low-id vertices appear more often with skew
        low_share_skewed = (skewed < 20).mean()
        low_share_flat = (flat < 20).mean()
        assert low_share_skewed > low_share_flat


class TestRandomDTDG:
    def test_shapes(self):
        d = random_dtdg(50, 6, density=2.0, seed=0)
        assert d.num_vertices == 50
        assert d.num_timesteps == 6
        for s in d:
            assert s.num_edges == 100

    def test_independent_snapshots_low_overlap(self):
        d = random_dtdg(200, 4, density=1.0, seed=0)
        assert d.mean_topology_overlap() < 0.1

    def test_deterministic(self):
        a = random_dtdg(30, 3, 1.5, seed=7)
        b = random_dtdg(30, 3, 1.5, seed=7)
        for sa, sb in zip(a, b):
            assert sa == sb

    def test_bad_density(self):
        with pytest.raises(DatasetError):
            random_dtdg(10, 2, density=0.0)


class TestEvolvingDTDG:
    def test_churn_controls_overlap(self):
        slow = evolving_dtdg(100, 6, 200, churn=0.05, seed=0)
        fast = evolving_dtdg(100, 6, 200, churn=0.8, seed=0)
        assert slow.mean_topology_overlap() > fast.mean_topology_overlap()
        assert slow.mean_topology_overlap() > 0.8

    def test_constant_edge_count(self):
        d = evolving_dtdg(60, 5, 120, churn=0.3, seed=1)
        for s in d:
            assert s.num_edges == 120

    def test_zero_churn_frozen_topology(self):
        d = evolving_dtdg(40, 4, 80, churn=0.0, seed=2)
        for s in d.snapshots[1:]:
            assert s == d.snapshots[0]

    def test_invalid_churn(self):
        with pytest.raises(DatasetError):
            evolving_dtdg(10, 2, 10, churn=1.5)


class TestAMLSim:
    @pytest.fixture(scope="class")
    def result(self):
        return generate_amlsim(AMLSimConfig(
            num_accounts=120, num_timesteps=10, background_per_step=200,
            seed=3))

    def test_shapes(self, result):
        assert result.dtdg.num_vertices == 120
        assert result.dtdg.num_timesteps == 10

    def test_suspicious_edges_exist_in_graph(self, result):
        assert result.suspicious
        for (t, u, v) in result.suspicious:
            assert (u, v) in result.dtdg[t].edge_set()

    def test_edge_labels_align(self, result):
        total = 0
        for t in range(result.dtdg.num_timesteps):
            labels = result.edge_labels(t)
            assert labels.shape == (result.dtdg[t].num_edges,)
            total += int(labels.sum())
        # every suspicious (t,u,v) that survived canonicalization is marked
        assert total == len(result.suspicious)

    def test_account_labels(self, result):
        labels = result.account_labels()
        assert labels.sum() == len(result.suspicious_accounts)
        assert set(np.where(labels == 1)[0]) == result.suspicious_accounts

    def test_persistence_creates_overlap(self):
        sticky = generate_amlsim(AMLSimConfig(
            num_accounts=100, num_timesteps=6, background_per_step=300,
            partner_persistence=0.95, seed=1)).dtdg
        loose = generate_amlsim(AMLSimConfig(
            num_accounts=100, num_timesteps=6, background_per_step=300,
            partner_persistence=0.0, seed=1)).dtdg
        assert sticky.mean_topology_overlap() > loose.mean_topology_overlap()

    def test_deterministic(self):
        cfg = AMLSimConfig(num_accounts=80, num_timesteps=5,
                           background_per_step=100, seed=9)
        a = generate_amlsim(cfg)
        b = generate_amlsim(cfg)
        assert a.suspicious == b.suspicious
        for sa, sb in zip(a.dtdg, b.dtdg):
            assert sa == sb

    def test_config_validation(self):
        with pytest.raises(DatasetError):
            generate_amlsim(AMLSimConfig(num_accounts=4, pattern_size=6))
        with pytest.raises(DatasetError):
            generate_amlsim(AMLSimConfig(num_timesteps=2))
        with pytest.raises(DatasetError):
            generate_amlsim(AMLSimConfig(partner_persistence=2.0))


class TestDatasets:
    def test_registry_contents(self):
        assert set(DATASETS) == {"epinions", "flickr", "youtube", "amlsim"}

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            load_dataset("imaginary")

    @pytest.mark.parametrize("name", ["epinions", "flickr", "youtube",
                                      "amlsim"])
    def test_scaled_stand_in(self, name):
        d = load_dataset(name, scale=2e-4, t_scale=0.05, seed=0)
        spec = DATASETS[name]
        n, t, m = spec.scaled_shape(2e-4, 0.05)
        assert d.num_vertices == n
        assert d.num_timesteps == t
        assert d.total_nnz > 0

    def test_overlap_matches_churn_calibration(self):
        d = load_dataset("epinions", scale=5e-4, t_scale=0.04, seed=0)
        # churn 0.30 -> expected Jaccard ≈ (1-churn)/(1+churn) ≈ 0.54
        assert 0.4 < d.mean_topology_overlap() < 0.75

    def test_scaled_shape_floor(self):
        spec = DATASETS["epinions"]
        n, t, m = spec.scaled_shape(1e-9, 1e-9)
        assert n >= 64 and t >= 8 and m >= 16


class TestIO:
    """save/load on the store format (delta log + bases), plus read
    support for the legacy one-file .npz archive."""

    def test_roundtrip_with_features(self, tmp_path):
        d = evolving_dtdg(30, 4, 60, churn=0.2, seed=0, name="io-test")
        d.set_features([np.random.default_rng(t).normal(size=(30, 3))
                        for t in range(4)])
        path = str(tmp_path / "d.store")
        save_dtdg(d, path)
        loaded = load_dtdg(path)
        assert loaded.name == "io-test"
        assert loaded.num_timesteps == 4
        for sa, sb in zip(d, loaded):
            assert sa == sb
        for fa, fb in zip(d.features, loaded.features):
            np.testing.assert_array_equal(fa, fb)

    def test_roundtrip_without_features(self, tmp_path):
        d = evolving_dtdg(20, 3, 40, churn=0.2, seed=1)
        path = str(tmp_path / "d2.store")
        save_dtdg(d, path)
        assert load_dtdg(path).features is None

    def test_roundtrip_weighted_edges(self, tmp_path):
        """Non-unit, step-varying edge values survive the delta log's
        changed-values-only encoding."""
        from repro.graph import GraphSnapshot
        n = 10
        e = np.array([[0, 1], [1, 2], [3, 4]])
        d = DTDG([GraphSnapshot(n, e, np.array([0.5, 2.0, 3.0])),
                  GraphSnapshot(n, e, np.array([0.5, 7.25, 3.0])),
                  GraphSnapshot(n, e[1:], np.array([7.25, -1.5]))],
                 name="weighted")
        path = str(tmp_path / "w.store")
        save_dtdg(d, path)
        loaded = load_dtdg(path)
        for sa, sb in zip(d, loaded):
            assert sa == sb
            np.testing.assert_array_equal(sa.values, sb.values)

    def test_roundtrip_empty_snapshots(self, tmp_path):
        from repro.graph import GraphSnapshot
        n = 8
        empty = GraphSnapshot(n, np.empty((0, 2), dtype=np.int64))
        full = GraphSnapshot(n, np.array([[0, 1], [5, 6]]))
        d = DTDG([empty, full, empty], name="sparse")
        path = str(tmp_path / "e.store")
        save_dtdg(d, path)
        loaded = load_dtdg(path)
        assert loaded.num_timesteps == 3
        for sa, sb in zip(d, loaded):
            assert sa == sb

    def test_saved_store_is_a_store_directory(self, tmp_path):
        from repro.store import GraphStore
        d = evolving_dtdg(20, 5, 40, churn=0.2, seed=2, name="as-store")
        path = str(tmp_path / "s")
        save_dtdg(d, path)
        store = GraphStore.open(path)
        assert store.num_timesteps == 5
        assert store.materialize(3) == d[3]

    def test_legacy_npz_still_loads(self, tmp_path):
        from repro.graph.io import _save_dtdg_npz
        d = evolving_dtdg(25, 4, 50, churn=0.3, seed=3, name="legacy")
        d.set_features([np.random.default_rng(t).normal(size=(25, 2))
                        for t in range(4)])
        path = str(tmp_path / "old.npz")
        _save_dtdg_npz(d, path)
        loaded = load_dtdg(path)
        assert loaded.name == "legacy"
        for sa, sb in zip(d, loaded):
            assert sa == sb
        for fa, fb in zip(d.features, loaded.features):
            np.testing.assert_array_equal(fa, fb)

    def test_resave_overwrites_in_place(self, tmp_path):
        """The legacy writer's cache-refresh semantics: saving to the
        same path twice replaces the old archive."""
        path = str(tmp_path / "cache")
        save_dtdg(evolving_dtdg(20, 3, 40, churn=0.2, seed=1), path)
        fresh = evolving_dtdg(20, 5, 40, churn=0.2, seed=9, name="v2")
        save_dtdg(fresh, path)
        loaded = load_dtdg(path)
        assert loaded.name == "v2"
        assert loaded.num_timesteps == 5
        for sa, sb in zip(fresh, loaded):
            assert sa == sb

    def test_save_over_legacy_file(self, tmp_path):
        from repro.graph.io import _save_dtdg_npz
        path = str(tmp_path / "cache.npz")
        _save_dtdg_npz(evolving_dtdg(20, 3, 40, churn=0.2, seed=1), path)
        fresh = evolving_dtdg(20, 4, 40, churn=0.2, seed=2, name="v2")
        save_dtdg(fresh, path)
        assert load_dtdg(path).name == "v2"

    def test_missing_file(self):
        with pytest.raises(DatasetError):
            load_dtdg("/nonexistent/file.npz")

    def test_corrupt_store_raises_dataset_error(self, tmp_path):
        path = tmp_path / "bad"
        path.mkdir()
        (path / "wal.log").write_bytes(b"not a wal")
        with pytest.raises(DatasetError):
            load_dtdg(str(path))
