"""Tests for the DTDG container and the normalized Laplacian."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.graph import DTDG, GraphSnapshot, normalized_laplacian


def snap(n, pairs):
    return GraphSnapshot(n, np.array(pairs, dtype=np.int64).reshape(-1, 2))


class TestDTDG:
    def test_basic(self):
        d = DTDG([snap(3, [[0, 1]]), snap(3, [[1, 2]])], name="x")
        assert d.num_vertices == 3
        assert d.num_timesteps == 2
        assert d.total_nnz == 2
        assert len(d) == 2

    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            DTDG([])

    def test_vertex_mismatch_rejected(self):
        with pytest.raises(DatasetError):
            DTDG([snap(3, [[0, 1]]), snap(4, [[1, 2]])])

    def test_iter_getitem(self):
        snaps = [snap(3, [[0, 1]]), snap(3, [[1, 2]])]
        d = DTDG(snaps)
        assert list(d) == snaps
        assert d[1] is snaps[1]

    def test_features_validation(self):
        d = DTDG([snap(3, [[0, 1]]), snap(3, [[1, 2]])])
        with pytest.raises(DatasetError):
            d.set_features([np.zeros((3, 2))])  # wrong count
        with pytest.raises(DatasetError):
            d.set_features([np.zeros((4, 2)), np.zeros((4, 2))])  # wrong N
        with pytest.raises(DatasetError):
            d.set_features([np.zeros((3, 2)), np.zeros((3, 3))])  # ragged F
        d.set_features([np.zeros((3, 2)), np.zeros((3, 2))])
        assert d.feature_dim == 2

    def test_feature_dim_requires_features(self):
        d = DTDG([snap(3, [[0, 1]])])
        with pytest.raises(DatasetError):
            _ = d.feature_dim

    def test_slice_time(self):
        snaps = [snap(3, [[0, i % 3]]) for i in range(1, 5)]
        d = DTDG(snaps, [np.full((3, 1), float(i)) for i in range(4)])
        sliced = d.slice_time(1, 3)
        assert sliced.num_timesteps == 2
        assert sliced.snapshots[0] is snaps[1]
        assert sliced.features[0][0, 0] == 1.0

    def test_stats(self):
        d = DTDG([snap(3, [[0, 1], [1, 2]]), snap(3, [[0, 1]])], name="s")
        stats = d.stats()
        assert stats.name == "s"
        assert stats.total_nnz == 3
        assert 0.0 < stats.mean_overlap <= 1.0
        assert len(stats.row()) == 5

    def test_mean_overlap_single_snapshot(self):
        d = DTDG([snap(3, [[0, 1]])])
        assert d.mean_topology_overlap() == 1.0


class TestNormalizedLaplacian:
    def test_empty_graph_is_identity_normalized(self):
        s = GraphSnapshot(3, np.empty((0, 2), dtype=np.int64))
        lap = normalized_laplacian(s).csr.toarray()
        np.testing.assert_allclose(lap, np.eye(3))

    def test_symmetric_pair(self):
        # undirected edge 0<->1 plus isolated vertex 2
        s = snap(3, [[0, 1], [1, 0]])
        lap = normalized_laplacian(s).csr.toarray()
        # deg(0)=deg(1)=1 -> weight 1/sqrt(2*2) = 0.5 everywhere in block
        np.testing.assert_allclose(lap[:2, :2], np.full((2, 2), 0.5))
        np.testing.assert_allclose(lap[2, 2], 1.0)

    def test_rows_bounded(self):
        rng = np.random.default_rng(0)
        edges = rng.integers(0, 20, size=(60, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        s = GraphSnapshot(20, edges)
        lap = normalized_laplacian(s).csr
        assert np.isfinite(lap.data).all()
        # spectral norm of the normalized operator stays O(1)
        assert abs(lap).sum(axis=1).max() < 2.5

    def test_values_respect_edge_weights(self):
        weighted = GraphSnapshot(2, [[0, 1]], values=[4.0])
        unweighted = GraphSnapshot(2, [[0, 1]], values=[1.0])
        lw = normalized_laplacian(weighted).csr.toarray()
        lu = normalized_laplacian(unweighted).csr.toarray()
        assert lw[0, 1] == pytest.approx(4 * lu[0, 1])

    def test_isolated_vertices_untouched(self):
        s = snap(5, [[0, 1]])
        lap = normalized_laplacian(s).csr.toarray()
        for v in (2, 3, 4):
            np.testing.assert_allclose(lap[v, v], 1.0)
