"""Tests for the graph-difference encoding (paper §3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DatasetError
from repro.graph import (DiffDecoder, GraphSnapshot, apply_diff,
                         diff_snapshots, encode_sequence,
                         sequence_transfer_stats, split_diff_by_blocks)
from repro.graph.diff import SnapshotDiff
from repro.graph.generators import evolving_dtdg
from repro.graph.inc_laplacian import LaplacianMaintainer
from repro.tensor.sparse import VALUE_BYTES


def snap(n, pairs, values=None):
    return GraphSnapshot(n, np.array(pairs, dtype=np.int64).reshape(-1, 2),
                         values)


class TestDiffSnapshots:
    def test_identical_topology(self):
        a = snap(4, [[0, 1], [1, 2]])
        b = snap(4, [[0, 1], [1, 2]], values=[3.0, 4.0])
        d = diff_snapshots(a, b)
        assert len(d.removed) == 0
        assert len(d.added) == 0
        np.testing.assert_array_equal(d.values, [3.0, 4.0])

    def test_pure_addition(self):
        a = snap(4, [[0, 1]])
        b = snap(4, [[0, 1], [2, 3]])
        d = diff_snapshots(a, b)
        assert len(d.removed) == 0
        np.testing.assert_array_equal(d.added, [[2, 3]])

    def test_pure_removal(self):
        a = snap(4, [[0, 1], [2, 3]])
        b = snap(4, [[0, 1]])
        d = diff_snapshots(a, b)
        np.testing.assert_array_equal(d.removed, [[2, 3]])
        assert len(d.added) == 0

    def test_mixed(self):
        a = snap(5, [[0, 1], [1, 2], [3, 4]])
        b = snap(5, [[0, 1], [2, 2], [3, 4]])
        d = diff_snapshots(a, b)
        np.testing.assert_array_equal(d.removed, [[1, 2]])
        np.testing.assert_array_equal(d.added, [[2, 2]])

    def test_vertex_count_mismatch(self):
        with pytest.raises(DatasetError):
            diff_snapshots(snap(3, [[0, 1]]), snap(4, [[0, 1]]))

    def test_payload_accounting(self):
        a = snap(5, [[0, 1], [1, 2], [3, 4]])
        b = snap(5, [[0, 1], [2, 2], [3, 4]])
        d = diff_snapshots(a, b)
        # 2 diff index pairs * 16 bytes + 3 float32 values * 4 bytes
        assert d.payload_nbytes == 2 * 16 + 3 * 4
        assert d.naive_nbytes == 3 * 20
        assert d.savings_ratio == pytest.approx(60 / 44)

    def test_savings_grow_with_overlap(self):
        base = [[i, i + 1] for i in range(50)]
        a = snap(100, base)
        mostly_same = snap(100, base[:-1] + [[60, 61]])
        disjoint = snap(100, [[i + 50, i] for i in range(50)])
        d_similar = diff_snapshots(a, mostly_same)
        d_disjoint = diff_snapshots(a, disjoint)
        assert d_similar.savings_ratio > d_disjoint.savings_ratio
        assert d_disjoint.savings_ratio < 1.0  # GD loses on disjoint graphs


class TestApplyDiff:
    def test_roundtrip_simple(self):
        a = snap(5, [[0, 1], [1, 2], [3, 4]])
        b = snap(5, [[0, 1], [2, 2], [4, 3]], values=[1.5, 2.5, 3.5])
        rebuilt = apply_diff(a, diff_snapshots(a, b))
        assert rebuilt == b

    def test_roundtrip_empty_to_full(self):
        a = snap(4, np.empty((0, 2), dtype=np.int64))
        b = snap(4, [[0, 1], [2, 3]])
        assert apply_diff(a, diff_snapshots(a, b)) == b

    def test_roundtrip_full_to_empty(self):
        a = snap(4, [[0, 1], [2, 3]])
        b = snap(4, np.empty((0, 2), dtype=np.int64))
        assert apply_diff(a, diff_snapshots(a, b)) == b

    def test_wrong_base_detected(self):
        a = snap(5, [[0, 1], [1, 2]])
        b = snap(5, [[0, 1], [2, 3]])
        other = snap(5, [[4, 0]])
        d = diff_snapshots(a, b)
        with pytest.raises(DatasetError):
            apply_diff(other, d)

    @given(st.sets(st.tuples(st.integers(0, 9), st.integers(0, 9)),
                   max_size=30),
           st.sets(st.tuples(st.integers(0, 9), st.integers(0, 9)),
                   max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, ea, eb):
        def mk(pairs):
            arr = (np.array(sorted(pairs), dtype=np.int64).reshape(-1, 2)
                   if pairs else np.empty((0, 2), dtype=np.int64))
            rng = np.random.default_rng(len(pairs))
            return GraphSnapshot(10, arr, rng.normal(size=len(arr)))

        a, b = mk(ea), mk(eb)
        rebuilt = apply_diff(a, diff_snapshots(a, b))
        assert rebuilt == b


class TestDiffEdgeCases:
    """Degenerate transitions the serving ingestor can produce live."""

    def test_empty_to_nonempty_roundtrip_with_values(self):
        empty = snap(6, np.empty((0, 2), dtype=np.int64))
        full = snap(6, [[0, 1], [2, 3], [4, 5]], values=[1.0, 2.0, 3.0])
        d = diff_snapshots(empty, full)
        assert len(d.removed) == 0
        assert len(d.added) == full.num_edges
        assert apply_diff(empty, d) == full
        # and back down to empty again
        back = diff_snapshots(full, empty)
        assert apply_diff(full, back) == empty

    def test_fully_disjoint_topology_roundtrip(self):
        a = snap(10, [[i, i + 1] for i in range(0, 8, 2)])
        b = snap(10, [[i + 1, i] for i in range(0, 8, 2)],
                 values=[2.0, 2.0, 2.0, 2.0])
        d = diff_snapshots(a, b)
        # nothing survives: every index is shipped twice (remove + add)
        assert len(d.removed) == a.num_edges
        assert len(d.added) == b.num_edges
        assert apply_diff(a, d) == b
        # GD strictly loses on disjoint graphs (indices shipped twice)
        assert d.payload_nbytes > d.naive_nbytes
        assert d.savings_ratio < 1.0

    def test_self_delta_zero_extra_index_bytes(self):
        a = snap(8, [[0, 1], [1, 2], [3, 4]], values=[1.0, 2.0, 3.0])
        d = diff_snapshots(a, a)
        assert len(d.removed) == 0 and len(d.added) == 0
        # payload is values only: the index part of the wire format is 0
        index_bytes = d.payload_nbytes - 3 * VALUE_BYTES
        assert index_bytes == 0
        assert apply_diff(a, d) == a

    def test_self_delta_of_empty_snapshot(self):
        empty = snap(4, np.empty((0, 2), dtype=np.int64))
        d = diff_snapshots(empty, empty)
        assert d.payload_nbytes == 0
        assert apply_diff(empty, d) == empty


class TestSequenceEncoding:
    def test_encode_sequence_structure(self):
        dtdg = evolving_dtdg(30, 6, 40, churn=0.2, seed=1)
        first, diffs = encode_sequence(dtdg.snapshots)
        assert first == dtdg.snapshots[0]
        assert len(diffs) == 5

    def test_decoder_replays_sequence(self):
        dtdg = evolving_dtdg(30, 8, 40, churn=0.3, seed=2)
        first, diffs = encode_sequence(dtdg.snapshots)
        decoder = DiffDecoder(first)
        rebuilt = [first]
        for d in diffs:
            rebuilt.append(decoder.push(d))
        for got, want in zip(rebuilt, dtdg.snapshots):
            assert got == want

    def test_encode_empty_rejected(self):
        with pytest.raises(DatasetError):
            encode_sequence([])


class TestSequenceTransferStats:
    def test_low_churn_saves_bytes(self):
        dtdg = evolving_dtdg(40, 10, 80, churn=0.1, seed=3)
        stats = sequence_transfer_stats(dtdg.snapshots)
        assert stats.gd_nbytes < stats.naive_nbytes
        assert stats.savings_ratio > 1.5

    def test_high_churn_saves_little(self):
        low = sequence_transfer_stats(
            evolving_dtdg(40, 10, 80, churn=0.05, seed=4).snapshots)
        high = sequence_transfer_stats(
            evolving_dtdg(40, 10, 80, churn=0.9, seed=4).snapshots)
        assert low.savings_ratio > high.savings_ratio

    def test_chunking_reduces_benefit(self):
        # smaller chunks = more naive first-snapshots = fewer GD wins,
        # the (bsize - P)/bsize effect of paper §6.2
        snaps = evolving_dtdg(40, 16, 80, churn=0.1, seed=5).snapshots
        whole = sequence_transfer_stats(snaps, chunk=16)
        quarters = sequence_transfer_stats(snaps, chunk=4)
        assert whole.savings_ratio > quarters.savings_ratio
        assert quarters.num_full == 4

    def test_single_snapshot(self):
        snaps = evolving_dtdg(20, 1, 30, churn=0.5, seed=6).snapshots
        stats = sequence_transfer_stats(snaps)
        assert stats.gd_nbytes == stats.naive_nbytes
        assert stats.num_diffs == 0

    def test_bad_chunk(self):
        snaps = evolving_dtdg(20, 4, 30, churn=0.5, seed=7).snapshots
        with pytest.raises(DatasetError):
            sequence_transfer_stats(snaps, chunk=0)


class TestDiffDecoderChecksum:
    """The decoder's checksum-mismatch error path: a diff pushed onto
    the wrong resident snapshot must fail fast, not reconstruct
    garbage."""

    def test_push_onto_wrong_resident_raises(self):
        a = snap(8, [[0, 1], [1, 2], [2, 3]])
        b = snap(8, [[0, 1], [1, 2], [3, 4]])
        other = snap(8, [[5, 6], [6, 7]])
        diff = diff_snapshots(a, b)
        decoder = DiffDecoder(other)
        with pytest.raises(DatasetError, match="not the base"):
            decoder.push(diff)

    def test_resident_unchanged_after_failed_push(self):
        a = snap(8, [[0, 1], [1, 2]])
        b = snap(8, [[0, 1], [2, 3]])
        other = snap(8, [[4, 5]])
        decoder = DiffDecoder(other)
        with pytest.raises(DatasetError):
            decoder.push(diff_snapshots(a, b))
        assert decoder.resident == other

    def test_decoder_recovers_after_correct_push(self):
        a = snap(8, [[0, 1], [1, 2]])
        b = snap(8, [[0, 1], [2, 3]])
        decoder = DiffDecoder(a)
        with pytest.raises(DatasetError):
            decoder.push(diff_snapshots(b, a))  # wrong direction
        got = decoder.push(diff_snapshots(a, b))  # right one still works
        assert got == b

    def test_stale_resident_after_one_step_raises(self):
        """Replaying the same diff twice: the second push sees the
        advanced resident and must refuse."""
        a = snap(8, [[0, 1], [1, 2]])
        b = snap(8, [[0, 1], [2, 3]])
        diff = diff_snapshots(a, b)
        decoder = DiffDecoder(a)
        decoder.push(diff)
        with pytest.raises(DatasetError):
            decoder.push(diff)


class TestSplitDiffByBlocks:
    """Degenerate fan-out cases of the sharded delta splitter."""

    def _owners(self, n, blocks):
        return np.arange(n) % blocks

    def test_empty_diff_yields_empty_subdeltas(self):
        a = snap(6, [[0, 1], [2, 3]])
        diff = diff_snapshots(a, a)  # no topology change
        subs = split_diff_by_blocks(diff, a, self._owners(6, 3))
        assert len(subs) == 3
        for sub in subs:
            assert len(sub.removed) == 0
            assert len(sub.added) == 0
        # values of incident current edges still fan out (they are the
        # per-shard refresh payload even when topology is unchanged)
        assert sum(len(s.values) for s in subs) >= a.num_edges

    def test_single_block_plan_gets_everything(self):
        a = snap(6, [[0, 1], [2, 3]])
        b = snap(6, [[0, 1], [3, 4], [4, 5]])
        diff = diff_snapshots(a, b)
        subs = split_diff_by_blocks(diff, b, np.zeros(6, dtype=np.int64),
                                    num_blocks=1)
        assert len(subs) == 1
        np.testing.assert_array_equal(subs[0].removed, diff.removed)
        np.testing.assert_array_equal(subs[0].added, diff.added)
        np.testing.assert_array_equal(subs[0].values, b.values)

    def test_empty_current_snapshot(self):
        a = snap(6, [[0, 1], [2, 3]])
        b = snap(6, [])
        diff = diff_snapshots(a, b)
        subs = split_diff_by_blocks(diff, b, self._owners(6, 2))
        assert len(subs) == 2
        for sub in subs:
            assert len(sub.added) == 0
            assert len(sub.values) == 0
        # every removed edge reaches the shard(s) owning its endpoints
        removed_total = sum(len(s.removed) for s in subs)
        assert removed_total >= a.num_edges

    def test_sub_deltas_carry_no_base_checksum(self):
        a = snap(6, [[0, 1], [2, 3]])
        b = snap(6, [[0, 1], [4, 5]])
        subs = split_diff_by_blocks(diff_snapshots(a, b), b,
                                    self._owners(6, 2))
        assert all(s.base_checksum == -1 for s in subs)

    def test_owner_length_mismatch_rejected(self):
        a = snap(6, [[0, 1]])
        diff = diff_snapshots(a, a)
        with pytest.raises(DatasetError):
            split_diff_by_blocks(diff, a, np.zeros(4, dtype=np.int64))

    def test_owner_out_of_range_rejected(self):
        a = snap(6, [[0, 1]])
        diff = diff_snapshots(a, a)
        with pytest.raises(DatasetError):
            split_diff_by_blocks(diff, a, np.full(6, 7, dtype=np.int64),
                                 num_blocks=2)


class TestSplitDiffValueHints:
    """Per-block diffs must re-index encoder hints into the block-local
    value order — whole-graph positions in a shard-local diff would
    address the wrong edges (regression for the PR-4 value_hint)."""

    def _weighted(self, n, pairs, values):
        return GraphSnapshot(n, np.array(pairs, dtype=np.int64),
                             np.array(values, dtype=np.float64))

    def _scenario(self):
        """Value-changed and added edges crossing the 2-block boundary
        (owners: even vertices → block 0, odd → block 1)."""
        n = 8
        a = self._weighted(n, [[0, 1], [1, 2], [2, 4], [3, 5], [6, 7]],
                           [1.0, 2.0, 3.0, 4.0, 5.0])
        b = self._weighted(n, [[0, 1], [1, 2], [2, 4], [3, 5], [5, 6]],
                           [1.0, 9.0, 3.0, 8.0, 6.0])
        owners = np.arange(n) % 2
        return a, b, diff_snapshots(a, b), owners

    def _block_view(self, snapshot, owners, block):
        mask = (owners[snapshot.edges[:, 0]] == block) | \
            (owners[snapshot.edges[:, 1]] == block)
        return GraphSnapshot(snapshot.num_vertices,
                             snapshot.edges[mask],
                             snapshot.values[mask])

    def test_hints_are_block_local_positions(self):
        a, b, diff, owners = self._scenario()
        subs = split_diff_by_blocks(diff, b, owners)
        for block, sub in enumerate(subs):
            assert sub.value_hint is not None
            added_pos, changed_pos = sub.value_hint
            local = self._block_view(b, owners, block)
            # hinted added positions address exactly the added edges,
            # in the block-local canonical order
            np.testing.assert_array_equal(local.edges[added_pos],
                                          sub.added)
            # hinted changed positions address edges whose value really
            # changed from the previous snapshot
            prev = {tuple(e): v for e, v in zip(a.edges, a.values)}
            for pos in changed_pos:
                edge = tuple(local.edges[pos])
                assert prev[edge] != local.values[pos]

    def test_hinted_and_hintless_maintainers_agree(self):
        """The satellite contract: a shard-local mirror updated through
        the re-indexed hint equals the hint-less (aligned-compare) path
        bit for bit, with no maintainer fallback on either."""
        a, b, diff, owners = self._scenario()
        subs = split_diff_by_blocks(diff, b, owners)
        for block, sub in enumerate(subs):
            base = self._block_view(a, owners, block)
            curr = self._block_view(b, owners, block)

            hinted = LaplacianMaintainer(base)
            hinted.update(curr, sub)
            stripped = SnapshotDiff(removed=sub.removed, added=sub.added,
                                    values=sub.values)
            aligned = LaplacianMaintainer(base)
            aligned.update(curr, stripped)

            assert hinted.incremental_updates == 1
            assert hinted.fallbacks == 0
            assert aligned.incremental_updates == 1
            h, al = hinted.export().csr, aligned.export().csr
            np.testing.assert_array_equal(h.indptr, al.indptr)
            np.testing.assert_array_equal(h.indices, al.indices)
            np.testing.assert_array_equal(h.data, al.data)

    def test_hintless_parent_yields_hintless_subs(self):
        a, b, diff, owners = self._scenario()
        stripped = SnapshotDiff(removed=diff.removed, added=diff.added,
                                values=diff.values,
                                base_checksum=diff.base_checksum)
        subs = split_diff_by_blocks(stripped, b, owners)
        assert all(s.value_hint is None for s in subs)
