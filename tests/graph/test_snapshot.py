"""Tests for GraphSnapshot and canonical edge handling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DatasetError
from repro.graph import GraphSnapshot, canonical_edges
from repro.graph.snapshot import count_common_edges


class TestCanonicalEdges:
    def test_sorts_lexicographically(self):
        edges = np.array([[2, 0], [0, 1], [1, 1]])
        out = canonical_edges(edges)
        np.testing.assert_array_equal(out, [[0, 1], [1, 1], [2, 0]])

    def test_deduplicates(self):
        edges = np.array([[0, 1], [0, 1], [1, 2]])
        assert len(canonical_edges(edges)) == 2

    def test_empty(self):
        assert len(canonical_edges(np.empty((0, 2), dtype=np.int64))) == 0

    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)),
                    max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_idempotent_and_set_preserving(self, pairs):
        edges = np.array(pairs, dtype=np.int64).reshape(-1, 2)
        once = canonical_edges(edges)
        twice = canonical_edges(once)
        np.testing.assert_array_equal(once, twice)
        assert set(map(tuple, once.tolist())) == set(pairs)


class TestGraphSnapshot:
    def test_basic_construction(self):
        s = GraphSnapshot(4, [[0, 1], [2, 3]])
        assert s.num_vertices == 4
        assert s.num_edges == 2

    def test_rejects_out_of_range_edges(self):
        with pytest.raises(DatasetError):
            GraphSnapshot(2, [[0, 5]])

    def test_rejects_negative_vertices(self):
        with pytest.raises(DatasetError):
            GraphSnapshot(0, [])

    def test_default_values_are_ones(self):
        s = GraphSnapshot(3, [[0, 1], [1, 2]])
        np.testing.assert_array_equal(s.values, [1.0, 1.0])

    def test_values_follow_canonical_order(self):
        # raw order (1,0) then (0,2); canonical order flips them
        s = GraphSnapshot(3, [[1, 0], [0, 2]], values=[7.0, 5.0])
        np.testing.assert_array_equal(s.edges, [[0, 2], [1, 0]])
        np.testing.assert_array_equal(s.values, [5.0, 7.0])

    def test_duplicate_edges_sum_values(self):
        s = GraphSnapshot(3, [[0, 1], [0, 1]], values=[2.0, 3.0])
        assert s.num_edges == 1
        np.testing.assert_array_equal(s.values, [5.0])

    def test_value_length_mismatch(self):
        with pytest.raises(DatasetError):
            GraphSnapshot(3, [[0, 1]], values=[1.0, 2.0, 3.0])

    def test_adjacency_matches_edges(self):
        s = GraphSnapshot(3, [[0, 1], [2, 0]], values=[2.0, 4.0])
        dense = s.adjacency().csr.toarray()
        expected = np.zeros((3, 3))
        expected[0, 1] = 2.0
        expected[2, 0] = 4.0
        np.testing.assert_array_equal(dense, expected)

    def test_adjacency_cached(self):
        s = GraphSnapshot(3, [[0, 1]])
        assert s.adjacency() is s.adjacency()

    def test_degrees(self):
        s = GraphSnapshot(3, [[0, 1], [0, 2], [1, 2]])
        np.testing.assert_array_equal(s.out_degrees(), [2.0, 1.0, 0.0])
        np.testing.assert_array_equal(s.in_degrees(), [0.0, 1.0, 2.0])

    def test_degrees_empty_graph(self):
        s = GraphSnapshot(3, np.empty((0, 2), dtype=np.int64))
        np.testing.assert_array_equal(s.out_degrees(), np.zeros(3))

    def test_byte_accounting(self):
        # int64 index pairs (16 B/edge) + float32 wire values (4 B/edge)
        s = GraphSnapshot(5, [[0, 1], [1, 2], [3, 4]])
        assert s.index_nbytes == 3 * 16
        assert s.value_nbytes == 3 * 4
        assert s.nbytes == 3 * 20

    def test_with_values(self):
        s = GraphSnapshot(3, [[0, 1], [1, 2]])
        s2 = s.with_values([5.0, 6.0])
        np.testing.assert_array_equal(s2.values, [5.0, 6.0])
        np.testing.assert_array_equal(s2.edges, s.edges)

    def test_equality(self):
        a = GraphSnapshot(3, [[0, 1]])
        b = GraphSnapshot(3, [[0, 1]])
        c = GraphSnapshot(3, [[0, 2]])
        assert a == b
        assert a != c

    def test_edge_set(self):
        s = GraphSnapshot(3, [[0, 1], [1, 2]])
        assert s.edge_set() == {(0, 1), (1, 2)}


class TestOverlap:
    def test_identical_snapshots(self):
        a = GraphSnapshot(4, [[0, 1], [1, 2]])
        assert a.topology_overlap(a) == 1.0

    def test_disjoint_snapshots(self):
        a = GraphSnapshot(4, [[0, 1]])
        b = GraphSnapshot(4, [[2, 3]])
        assert a.topology_overlap(b) == 0.0

    def test_partial_overlap(self):
        a = GraphSnapshot(4, [[0, 1], [1, 2]])
        b = GraphSnapshot(4, [[0, 1], [2, 3]])
        assert a.topology_overlap(b) == pytest.approx(1.0 / 3.0)

    def test_both_empty(self):
        empty = np.empty((0, 2), dtype=np.int64)
        a = GraphSnapshot(4, empty)
        b = GraphSnapshot(4, empty)
        assert a.topology_overlap(b) == 1.0

    def test_count_common_edges(self):
        a = canonical_edges(np.array([[0, 1], [1, 2], [2, 3]]))
        b = canonical_edges(np.array([[1, 2], [2, 3], [3, 0]]))
        assert count_common_edges(a, b) == 2

    @given(st.sets(st.tuples(st.integers(0, 7), st.integers(0, 7)),
                   max_size=20),
           st.sets(st.tuples(st.integers(0, 7), st.integers(0, 7)),
                   max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_common_edges_matches_set_intersection(self, sa, sb):
        ea = canonical_edges(np.array(sorted(sa), dtype=np.int64).reshape(-1, 2))
        eb = canonical_edges(np.array(sorted(sb), dtype=np.int64).reshape(-1, 2))
        assert count_common_edges(ea, eb) == len(sa & sb)
