"""LaplacianMaintainer: exactness, edge cases, checksum fallback.

The maintainer's contract is *bit-compatibility* with
:func:`repro.graph.laplacian.laplacian_from_adjacency` — incremental
operator maintenance must be indistinguishable from a full rebuild,
for every diff shape the serving and training tiers can produce.
"""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.graph import (GraphSnapshot, LaplacianMaintainer, diff_snapshots,
                         encode_sequence, evolving_dtdg,
                         normalized_laplacian)
from repro.graph.diff import SnapshotDiff, _checksum
from tests.helpers import all_backends_fixture

# the maintainer's bit-compatibility contract must hold on every
# available kernel backend: this module is the conformance suite for
# the degree/splice/rescale primitives
kernel_backend = all_backends_fixture()


def assert_bitwise(maintainer, snapshot):
    """Maintained Ã must equal a fresh full rebuild bit-for-bit."""
    got = maintainer.export().csr
    ref = normalized_laplacian(snapshot).csr
    np.testing.assert_array_equal(got.indptr, ref.indptr)
    np.testing.assert_array_equal(got.indices, ref.indices)
    np.testing.assert_array_equal(got.data, ref.data)


class TestStreaming:
    def test_streamed_timeline_is_bit_exact(self):
        dtdg = evolving_dtdg(num_vertices=120, num_timesteps=10,
                             edges_per_snapshot=500, churn=0.25, seed=7)
        first, diffs = encode_sequence(dtdg.snapshots)
        m = LaplacianMaintainer(first)
        for snap, diff in zip(dtdg.snapshots[1:], diffs):
            m.update(snap, diff)
            assert_bitwise(m, snap)
        assert m.incremental_updates == dtdg.num_timesteps - 1
        assert m.full_rebuilds == 1  # only the initial install
        assert m.fallbacks == 0

    def test_no_hint_path_is_bit_exact(self):
        """Diffs without the encoder value hint (e.g. decoded from the
        store) take the aligned-compare path; same answer."""
        dtdg = evolving_dtdg(num_vertices=80, num_timesteps=6,
                             edges_per_snapshot=300, churn=0.3, seed=3)
        first, diffs = encode_sequence(dtdg.snapshots)
        m = LaplacianMaintainer(first)
        for snap, diff in zip(dtdg.snapshots[1:], diffs):
            bare = SnapshotDiff(diff.removed, diff.added, diff.values,
                                diff.base_checksum)
            m.update(snap, bare)
            assert_bitwise(m, snap)
        assert m.incremental_updates == len(diffs)

    def test_maintained_checksum_tracks_resident(self):
        dtdg = evolving_dtdg(num_vertices=60, num_timesteps=5,
                             edges_per_snapshot=200, churn=0.4, seed=1)
        first, diffs = encode_sequence(dtdg.snapshots)
        m = LaplacianMaintainer(first)
        assert m.base_checksum == _checksum(first.edges, 60)
        for snap, diff in zip(dtdg.snapshots[1:], diffs):
            m.update(snap, diff)
            assert m.base_checksum == _checksum(snap.edges, 60)

    def test_same_snapshot_is_noop(self):
        snap = GraphSnapshot(5, [[0, 1], [1, 2]])
        m = LaplacianMaintainer(snap)
        lap = m.laplacian
        m.update(snap)  # advance over an unchanged resident
        assert m.laplacian is lap
        assert m.full_rebuilds == 1

    def test_none_diff_rebuilds(self):
        a = GraphSnapshot(5, [[0, 1], [1, 2]])
        b = GraphSnapshot(5, [[0, 1], [2, 3]])
        m = LaplacianMaintainer(a)
        m.update(b, None)
        assert m.full_rebuilds == 2
        assert_bitwise(m, b)

    def test_vertex_set_must_stay_fixed(self):
        m = LaplacianMaintainer(GraphSnapshot(4, [[0, 1]]))
        with pytest.raises(DatasetError):
            m.update(GraphSnapshot(5, [[0, 1]]))


class TestEdgeCases:
    def test_empty_diff(self):
        base = GraphSnapshot(6, [[0, 1], [1, 2], [3, 4]])
        same = GraphSnapshot(6, base.edges, base.values)
        m = LaplacianMaintainer(base)
        m.update(same, diff_snapshots(base, same))
        assert m.incremental_updates == 1
        assert_bitwise(m, same)

    def test_degree_drops_to_zero(self):
        base = GraphSnapshot(5, [[0, 1], [1, 2], [3, 1]])
        # vertex 3 loses its only edge; its D entry returns to 1
        nxt = GraphSnapshot(5, [[0, 1], [1, 2]])
        m = LaplacianMaintainer(base)
        m.update(nxt, diff_snapshots(base, nxt))
        assert_bitwise(m, nxt)
        assert m.dinv[3] == 1.0

    def test_weighted_value_changes_only(self):
        edges = [[0, 1], [1, 2], [2, 0], [2, 2]]
        base = GraphSnapshot(4, edges, [1.0, 2.0, 3.0, 4.0])
        nxt = GraphSnapshot(4, edges, [1.0, 5.5, 3.0, 0.25])
        m = LaplacianMaintainer(base)
        m.update(nxt, diff_snapshots(base, nxt))
        assert m.incremental_updates == 1
        assert_bitwise(m, nxt)

    def test_diff_removes_every_edge(self):
        base = GraphSnapshot(5, [[0, 1], [1, 2], [2, 2], [3, 4]])
        empty = GraphSnapshot(5, np.empty((0, 2), dtype=np.int64))
        m = LaplacianMaintainer(base)
        m.update(empty, diff_snapshots(base, empty))
        assert m.incremental_updates == 1
        assert_bitwise(m, empty)  # Ã of the empty graph is I
        # and the resident can be refilled incrementally afterwards
        refill = GraphSnapshot(5, [[4, 0], [0, 0]])
        m.update(refill, diff_snapshots(empty, refill))
        assert_bitwise(m, refill)

    def test_self_loop_add_remove_and_value_change(self):
        a = GraphSnapshot(4, [[0, 1], [1, 1]], [1.0, 2.0])
        b = GraphSnapshot(4, [[0, 1], [2, 2]], [1.0, 9.0])
        c = GraphSnapshot(4, [[0, 1], [2, 2]], [1.0, 0.5])
        m = LaplacianMaintainer(a)
        m.update(b, diff_snapshots(a, b))
        assert_bitwise(m, b)
        m.update(c, diff_snapshots(b, c))
        assert_bitwise(m, c)
        assert m.incremental_updates == 2

    def test_checksum_mismatch_falls_back_to_rebuild(self):
        base = GraphSnapshot(6, [[0, 1], [1, 2]])
        other = GraphSnapshot(6, [[3, 4]])
        target = GraphSnapshot(6, [[3, 4], [4, 5]])
        m = LaplacianMaintainer(base)
        # a diff encoded against a different base must not be applied
        m.update(target, diff_snapshots(other, target))
        assert m.fallbacks == 1
        assert m.full_rebuilds == 2
        assert_bitwise(m, target)

    def test_inconsistent_counts_fall_back(self):
        base = GraphSnapshot(6, [[0, 1], [1, 2]])
        target = GraphSnapshot(6, [[0, 1], [1, 2], [2, 3]])
        # handcrafted diff whose counts cannot reproduce the target
        bogus = SnapshotDiff(removed=np.empty((0, 2), dtype=np.int64),
                             added=np.array([[2, 3], [3, 4]]),
                             values=target.values)
        m = LaplacianMaintainer(base)
        m.update(target, bogus)
        assert m.fallbacks == 1
        assert_bitwise(m, target)


class TestLiveView:
    def test_laplacian_is_live_export_is_frozen(self):
        a = GraphSnapshot(5, [[0, 1], [1, 2]])
        b = GraphSnapshot(5, [[0, 1], [1, 2], [2, 3]])
        m = LaplacianMaintainer(a)
        live = m.laplacian
        frozen = m.export()
        before = frozen.csr.toarray().copy()
        m.update(b, diff_snapshots(a, b))
        # the live view follows the update, the export does not
        np.testing.assert_array_equal(
            m.laplacian.csr.toarray(),
            normalized_laplacian(b).csr.toarray())
        assert live is m.laplacian
        np.testing.assert_array_equal(frozen.csr.toarray(), before)

    def test_live_view_transpose_cache_invalidated(self):
        a = GraphSnapshot(4, [[0, 1], [1, 2]])
        b = GraphSnapshot(4, [[0, 1], [2, 1]])
        m = LaplacianMaintainer(a)
        m.laplacian.transposed_csr()
        m.update(b, diff_snapshots(a, b))
        np.testing.assert_allclose(
            m.laplacian.transposed_csr().toarray(),
            normalized_laplacian(b).csr.toarray().T)
