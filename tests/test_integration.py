"""Cross-module integration tests: full pipelines end to end.

These exercise the same paths the benchmarks use, at smaller sizes, so
regressions in any seam (dataset → smoothing → features → model →
partitioning → trainer → metrics) surface in the unit suite.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster
from repro.graph import (AMLSimConfig, generate_amlsim, load_dataset)
from repro.models import MODEL_NAMES, build_model
from repro.tensor import Adam, Tensor
from repro.train import (CheckpointRunner, DistConfig, DistributedTrainer,
                         LinkPredictionTask, NodeClassificationTask,
                         SingleDeviceTrainer, TrainerConfig,
                         compute_laplacians, degree_features,
                         smooth_for_model)


@pytest.mark.parametrize("model_name", MODEL_NAMES)
def test_full_pipeline_calibrated_dataset(model_name):
    """dataset stand-in → §5.4 smoothing → distributed training →
    evaluation, like the paper's per-epoch studies."""
    raw = load_dataset("epinions", scale=1.5e-4, t_scale=0.024, seed=0)
    raw.set_features(degree_features(raw))
    dtdg = smooth_for_model(raw, model_name, edge_life=3, window=3)
    if dtdg.features is None:
        dtdg.set_features(raw.features)
    model = build_model(model_name, in_features=2, hidden=4, embed_dim=4,
                        seed=0)
    task = LinkPredictionTask(dtdg, embed_dim=4, theta=0.3, seed=0)
    cluster = Cluster.of_size(4)
    trainer = DistributedTrainer(model, dtdg, task, cluster,
                                 DistConfig(num_blocks=2,
                                            learning_rate=0.02))
    results = trainer.fit(4)
    assert results[-1].loss < results[0].loss + 1e-9
    assert results[-1].breakdown.total > 0
    assert 0.0 <= results[-1].test_accuracy <= 1.0


def test_amlsim_node_classification_pipeline():
    """AML simulator → node classification with checkpointing."""
    sim = generate_amlsim(AMLSimConfig(
        num_accounts=60, num_timesteps=8, background_per_step=150,
        num_fan_out=2, num_fan_in=2, num_cycles=2, num_scatter_gather=1,
        pattern_size=5, seed=1))
    dtdg = sim.dtdg
    dtdg.set_features(degree_features(dtdg))
    laps = compute_laplacians(dtdg)
    frames = [Tensor(f) for f in dtdg.features]
    model = build_model("cdgcn", in_features=2, hidden=4, embed_dim=4,
                        seed=0)
    task = NodeClassificationTask(sim.account_labels(),
                                  dtdg.num_timesteps, embed_dim=4, seed=0)
    opt = Adam(model.parameters() + task.head.parameters(), lr=0.05)
    runner = CheckpointRunner(model, num_blocks=2)
    losses = []
    for _ in range(8):
        opt.zero_grad()
        result = runner.run_epoch(laps, frames, task.loss_block)
        opt.step()
        losses.append(result.loss)
    assert losses[-1] < losses[0]


def test_single_device_and_distributed_agree():
    """The single-device checkpointed trainer and the P-rank snapshot
    engine are the same algorithm: per-epoch losses must agree."""
    raw = load_dataset("amlsim", scale=1e-4, t_scale=0.05, seed=2)
    raw.set_features(degree_features(raw))

    def fresh():
        model = build_model("tmgcn", in_features=2, hidden=4, embed_dim=4,
                            seed=0)
        task = LinkPredictionTask(raw, embed_dim=4, theta=0.3, seed=0)
        return model, task

    model_a, task_a = fresh()
    single = SingleDeviceTrainer(
        model_a, raw, task_a,
        TrainerConfig(num_blocks=3, learning_rate=0.02))
    model_b, task_b = fresh()
    distributed = DistributedTrainer(
        model_b, raw, task_b, Cluster.of_size(3),
        DistConfig(num_blocks=3, learning_rate=0.02))
    losses_single = [r.loss for r in single.fit(3)]
    losses_dist = [r.loss for r in distributed.fit(3)]
    np.testing.assert_allclose(losses_single, losses_dist, rtol=1e-8)


class TestBlockSplitInvariance:
    """Property: any way of cutting the timeline into blocks yields the
    same forward outputs — the invariant behind §3.1 and Fig. 3b."""

    @given(st.lists(st.integers(1, 4), min_size=1, max_size=4),
           st.sampled_from(list(MODEL_NAMES)))
    @settings(max_examples=12, deadline=None)
    def test_arbitrary_block_cuts(self, block_sizes, model_name):
        from repro.graph import evolving_dtdg
        t_total = sum(block_sizes)
        dtdg = evolving_dtdg(10, t_total, 25, churn=0.3, seed=t_total)
        dtdg.set_features(degree_features(dtdg))
        laps = compute_laplacians(dtdg)
        frames = [Tensor(f) for f in dtdg.features]
        model = build_model(model_name, in_features=2, hidden=3,
                            embed_dim=3, seed=0)
        full = model(laps, frames)
        carry = model.init_carry(10)
        outs = []
        start = 0
        for size in block_sizes:
            block_out, carry = model.forward_block(
                laps[start:start + size], frames[start:start + size],
                carry)
            outs.extend(block_out)
            start += size
        for got, want in zip(outs, full):
            np.testing.assert_allclose(got.data, want.data, atol=1e-10)
