"""LatencyTracker beyond reservoir capacity: exactness and sampling.

The serving latency tracker must stay truthful on streams far larger
than its reservoir: count/mean exact over the full stream, memory
bounded, percentiles statistically close on a seeded stream.
"""

import numpy as np
import pytest

from repro.serve.metrics import LatencyTracker


class TestBeyondCapacity:
    def test_reservoir_stays_bounded(self):
        tracker = LatencyTracker(reservoir_size=256)
        for v in range(10_000):
            tracker.record(float(v))
        assert tracker.sampled == 256
        assert tracker.count == 10_000

    def test_count_and_mean_exact_over_100k_stream(self):
        rng = np.random.default_rng(42)
        values = rng.exponential(scale=5.0, size=100_000)
        tracker = LatencyTracker(reservoir_size=1024)
        for v in values:
            tracker.record(float(v))
        assert tracker.count == 100_000
        assert tracker.mean == pytest.approx(values.mean(), rel=1e-12)

    def test_percentiles_within_tolerance_on_seeded_stream(self):
        rng = np.random.default_rng(7)
        values = rng.lognormal(mean=1.0, sigma=0.75, size=50_000)
        tracker = LatencyTracker(reservoir_size=4096, seed=0)
        for v in values:
            tracker.record(float(v))
        # a 4096-sample uniform reservoir estimates mid/high quantiles
        # of a 50k stream to within a few percent
        for q, attr in ((50, "p50"), (95, "p95"), (99, "p99")):
            exact = float(np.percentile(values, q))
            estimate = getattr(tracker, attr)
            assert estimate == pytest.approx(exact, rel=0.10), \
                f"p{q}: reservoir {estimate} vs exact {exact}"

    def test_deterministic_given_seed(self):
        def run():
            t = LatencyTracker(reservoir_size=64, seed=3)
            for v in range(5_000):
                t.record(float(v % 97))
            return (t.p50, t.p95, t.p99)

        assert run() == run()


class TestRejection:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_non_finite_latency_rejected(self, bad):
        tracker = LatencyTracker()
        tracker.record(1.0)
        with pytest.raises(ValueError, match="non-finite"):
            tracker.record(bad)
        # the poison never landed: stream stats unaffected
        assert tracker.count == 1
        assert tracker.mean == 1.0
