"""Cross-tier wiring: every tier reports through one Telemetry bundle.

These tests drive real servers/stores/trainers (small AML-Sim worlds)
and assert the observable surface — span names, Prometheus families,
labeled per-shard series — rather than implementation internals.
"""

import numpy as np
import pytest

from repro.graph import AMLSimConfig, generate_amlsim
from repro.models import build_model
from repro.nn.linear import Linear
from repro.obs import Telemetry
from repro.serve import ModelServer, ShardedServer, events_between
from repro.store import GraphStore
from repro.train import (LinkPredictionTask, SingleDeviceTrainer,
                         TrainerConfig)


@pytest.fixture(scope="module")
def stream():
    config = AMLSimConfig(num_accounts=80, num_timesteps=8,
                          background_per_step=120,
                          partner_persistence=0.8, seed=13)
    return generate_amlsim(config).dtdg


def _drive(server, dtdg, t_range):
    for t in t_range:
        server.advance_time()
        server.ingest_events(events_between(dtdg[t - 1], dtdg[t]))
        server.submit_link(0, 1)
        server.submit_link(t % 40, (t + 1) % 40)
        server.drain()


def _span_names(tracer):
    names = set()
    for root in tracer.roots:
        for _, span in root.walk():
            names.add(span.name)
    return names


class TestModelServerWiring:
    def test_delta_hot_path_spans_and_counters(self, stream, tmp_path):
        model = build_model("cdgcn", in_features=2, seed=0)
        fraud = Linear(model.embed_dim, 2, np.random.default_rng(9))
        tel = Telemetry(tracing=True)
        server = ModelServer(model, stream[0], fraud_head=fraud,
                             telemetry=tel)
        store = GraphStore.create(str(tmp_path / "s"),
                                  stream.num_vertices)
        server.attach_store(store)
        _drive(server, stream, range(1, 6))

        names = _span_names(tel.tracer)
        for expected in ("serve.ingest", "serve.commit",
                         "serve.maintainer", "serve.advance",
                         "serve.query", "store.append"):
            assert expected in names, f"missing span {expected}"

        text = server.prometheus()
        assert "serve_events_ingested_total" in text
        assert "serve_queries_completed_total" in text
        assert "serve_maintainer_updates_total" in text
        # the attached store reports into the same registry
        assert "store_wal_records_total" in text
        assert "serve_latency_ms" in text

    def test_store_spans_nest_under_serving_spans(self, stream, tmp_path):
        model = build_model("cdgcn", in_features=2, seed=0)
        tel = Telemetry(tracing=True)
        server = ModelServer(model, stream[0], telemetry=tel)
        store = GraphStore.create(str(tmp_path / "s"),
                                  stream.num_vertices)
        server.attach_store(store)
        # attach_store rebinds the store onto the server's telemetry
        assert store.telemetry is server.telemetry
        _drive(server, stream, range(1, 3))
        ingest_roots = [r for r in tel.tracer.roots
                        if r.name == "serve.ingest"]
        assert ingest_roots
        nested = {s.name for _, s in ingest_roots[-1].walk()}
        assert "store.append" in nested

    def test_stage_seconds_covers_the_pipeline(self, stream):
        model = build_model("cdgcn", in_features=2, seed=0)
        tel = Telemetry(tracing=True)
        server = ModelServer(model, stream[0], telemetry=tel)
        _drive(server, stream, range(1, 4))
        stages = tel.stage_seconds()
        assert {"serve.ingest", "serve.query"} <= stages.keys()
        assert all(v >= 0.0 for v in stages.values())

    def test_disabled_tracing_keeps_metrics(self, stream):
        """Metrics flow even with the span fast path off (default)."""
        model = build_model("cdgcn", in_features=2, seed=0)
        server = ModelServer(model, stream[0])
        _drive(server, stream, range(1, 3))
        assert not server.telemetry.tracer.roots
        text = server.prometheus()
        assert "serve_events_ingested_total" in text
        reg = server.telemetry.registry
        assert reg.value("serve_queries_completed_total") == \
            server.counters.queries_completed


class TestShardedWiring:
    def test_per_shard_halo_bytes_labeled_series(self, stream):
        model = build_model("cdgcn", in_features=2, seed=0)
        fraud = Linear(model.embed_dim, 2, np.random.default_rng(9))
        tel = Telemetry(tracing=True)
        server = ShardedServer(model, stream[0], num_shards=3,
                               fraud_head=fraud, telemetry=tel)
        _drive(server, stream, range(1, 6))

        text = server.prometheus()
        reg = tel.registry
        aggregate = reg.value("shard_halo_bytes_total")
        per_shard = sum(reg.value("shard_halo_bytes_total", shard=str(s))
                        for s in range(3))
        assert aggregate > 0
        assert per_shard == aggregate
        assert 'shard_halo_bytes_total{shard="0"}' in text
        assert 'shard_queries_total{shard=' in text
        assert "shard_load_skew" in text

        names = _span_names(tel.tracer)
        for expected in ("serve.ingest", "serve.fanout",
                         "serve.halo_sync", "serve.advance",
                         "serve.query"):
            assert expected in names, f"missing span {expected}"

    def test_sharded_stats_snapshot_traffic(self, stream):
        """Regression: ShardedStats must deep-copy halo traffic — a
        snapshot's per-shard dicts can't grow with later syncs."""
        model = build_model("cdgcn", in_features=2, seed=0)
        server = ShardedServer(model, stream[0], num_shards=3)
        _drive(server, stream, range(1, 3))
        before = server.stats()
        frozen_bytes = before.traffic.bytes_shipped
        frozen_per_shard = dict(before.traffic.bytes_per_shard)
        _drive(server, stream, range(3, 6))
        assert before.traffic.bytes_shipped == frozen_bytes
        assert dict(before.traffic.bytes_per_shard) == frozen_per_shard
        assert server.stats().traffic.bytes_shipped > frozen_bytes


class TestStoreWiring:
    def test_standalone_store_counters(self, stream, tmp_path):
        tel = Telemetry(tracing=True)
        store = GraphStore.create(str(tmp_path / "s"),
                                  stream.num_vertices, base_interval=3,
                                  telemetry=tel)
        for t in range(1, 7):
            store.append_events(events_between(stream[t - 1], stream[t]))
            store.seal_step()
        store.materialize(3, cached=False)  # non-tip → full replay path

        reg = tel.registry
        store.collect_metrics(reg)
        assert reg.value("store_wal_appends_total") == store.wal.appends
        assert reg.value("store_wal_fsyncs_total") == store.wal.fsyncs
        assert reg.value("store_wal_records_total") > 0
        assert reg.value("store_compaction_bases_total") >= 1
        # replay-depth histogram is attached, not copied
        assert reg.get("store_replay_depth") is store.replay_depth
        assert store.replay_depth.count > 0

        names = _span_names(tel.tracer)
        assert "store.append" in names
        assert "store.materialize" in names


class TestTrainerWiring:
    def test_epoch_metrics_and_reuse_counters(self, stream):
        model = build_model("cdgcn", in_features=2, seed=0)
        task = LinkPredictionTask(stream, embed_dim=model.embed_dim,
                                  seed=1)
        tel = Telemetry(tracing=True)
        trainer = SingleDeviceTrainer(
            model, stream, task,
            TrainerConfig(num_blocks=2, reuse_aggregation=True),
            telemetry=tel)
        trainer.fit(2)

        reg = tel.registry
        assert reg.value("train_epochs_total") == 2.0
        assert reg.value("train_forward_seconds_total") > 0.0
        decisions = sum(
            reg.value("train_agg_decisions_total", mode=m)
            for m in ("memo", "patch", "full"))
        assert decisions > 0
        names = _span_names(tel.tracer)
        assert "train.forward" in names

    def test_single_block_path_traces_backward(self, stream):
        model = build_model("cdgcn", in_features=2, seed=0)
        task = LinkPredictionTask(stream, embed_dim=model.embed_dim,
                                  seed=1)
        tel = Telemetry(tracing=True)
        trainer = SingleDeviceTrainer(model, stream, task,
                                      TrainerConfig(num_blocks=1),
                                      telemetry=tel)
        trainer.fit(1)
        names = _span_names(tel.tracer)
        assert {"train.forward", "train.backward"} <= names
