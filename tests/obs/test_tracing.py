"""Span tracing: tree building, disabled fast path, registry fold-in."""

from repro.obs import NULL_SPAN, MetricsRegistry, Telemetry, Tracer


def fake_clock():
    """Deterministic clock advancing 1.0s per read."""
    state = {"t": 0.0}

    def clock():
        state["t"] += 1.0
        return state["t"]

    return clock


class TestDisabled:
    def test_disabled_returns_shared_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.trace("serve.ingest", events=3)
        assert span is NULL_SPAN
        assert tracer.trace("other") is span  # no allocation per call

    def test_null_span_is_inert(self):
        with NULL_SPAN as s:
            s.set(rows=5)  # must not raise
        assert not Tracer(enabled=False).roots

    def test_enable_disable_live(self):
        tracer = Tracer(enabled=False)
        tracer.enable()
        with tracer.trace("a"):
            pass
        tracer.disable()
        with tracer.trace("b"):
            pass
        assert [s.name for s in tracer.roots] == ["a"]


class TestTree:
    def test_nesting_builds_parent_child(self):
        tracer = Tracer(enabled=True)
        with tracer.trace("serve.ingest", events=7):
            with tracer.trace("serve.commit"):
                pass
            with tracer.trace("serve.maintainer"):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "serve.ingest"
        assert root.attrs == {"events": 7}
        assert [c.name for c in root.children] == ["serve.commit",
                                                   "serve.maintainer"]

    def test_durations_from_injected_clock(self):
        tracer = Tracer(enabled=True, clock=fake_clock())
        with tracer.trace("outer"):      # enter t=1
            with tracer.trace("inner"):  # enter t=2, exit t=3
                pass
        # outer: enter 1, exit 4
        root = tracer.roots[0]
        assert root.duration_s == 3.0
        assert root.children[0].duration_s == 1.0

    def test_walk_preorder(self):
        tracer = Tracer(enabled=True)
        with tracer.trace("a"):
            with tracer.trace("b"):
                with tracer.trace("c"):
                    pass
            with tracer.trace("d"):
                pass
        walked = [(d, s.name) for d, s in tracer.roots[0].walk()]
        assert walked == [(0, "a"), (1, "b"), (2, "c"), (1, "d")]

    def test_set_annotate_and_error_attr(self):
        tracer = Tracer(enabled=True)
        try:
            with tracer.trace("risky") as span:
                span.set(step=3)
                tracer.annotate(deep="yes")
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        root = tracer.roots[0]
        assert root.attrs == {"step": 3, "deep": "yes",
                              "error": "RuntimeError"}

    def test_bounded_roots(self):
        tracer = Tracer(enabled=True, max_roots=4)
        for i in range(10):
            with tracer.trace(f"s{i}"):
                pass
        assert [s.name for s in tracer.roots] == ["s6", "s7", "s8", "s9"]

    def test_clear_drops_roots(self):
        tracer = Tracer(enabled=True)
        with tracer.trace("a"):
            pass
        tracer.clear()
        assert not tracer.roots

    def test_current_tracks_stack(self):
        tracer = Tracer(enabled=True)
        assert tracer.current is None
        with tracer.trace("a") as a:
            assert tracer.current is a
        assert tracer.current is None

    def test_to_dict_nested(self):
        tracer = Tracer(enabled=True)
        with tracer.trace("a", k=1):
            with tracer.trace("b"):
                pass
        d = tracer.roots[0].to_dict()
        assert d["name"] == "a"
        assert d["attrs"] == {"k": 1}
        assert d["children"][0]["name"] == "b"


class TestRegistryFold:
    def test_finished_spans_fold_into_counters(self):
        reg = MetricsRegistry()
        tracer = Tracer(enabled=True, registry=reg, clock=fake_clock())
        with tracer.trace("serve.query"):
            pass
        with tracer.trace("serve.query"):
            pass
        assert reg.value("span_calls_total", span="serve.query") == 2.0
        assert reg.value("span_seconds_total", span="serve.query") == 2.0

    def test_children_fold_too(self):
        reg = MetricsRegistry()
        tracer = Tracer(enabled=True, registry=reg)
        with tracer.trace("outer"):
            with tracer.trace("inner"):
                pass
        assert reg.value("span_calls_total", span="inner") == 1.0


class TestTelemetry:
    def test_bundle_shares_registry(self):
        tel = Telemetry(tracing=True)
        with tel.trace("serve.ingest"):
            pass
        assert tel.stage_seconds().keys() == {"serve.ingest"}
        assert tel.tracer.registry is tel.registry

    def test_tracing_off_by_default(self):
        tel = Telemetry()
        assert tel.trace("x") is NULL_SPAN
        assert tel.stage_seconds() == {}
