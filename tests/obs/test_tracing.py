"""Span tracing: tree building, disabled fast path, registry fold-in."""

from repro.obs import NULL_SPAN, MetricsRegistry, Telemetry, Tracer


def fake_clock():
    """Deterministic clock advancing 1.0s per read."""
    state = {"t": 0.0}

    def clock():
        state["t"] += 1.0
        return state["t"]

    return clock


class TestDisabled:
    def test_disabled_returns_shared_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.trace("serve.ingest", events=3)
        assert span is NULL_SPAN
        assert tracer.trace("other") is span  # no allocation per call

    def test_null_span_is_inert(self):
        with NULL_SPAN as s:
            s.set(rows=5)  # must not raise
        assert not Tracer(enabled=False).roots

    def test_enable_disable_live(self):
        tracer = Tracer(enabled=False)
        tracer.enable()
        with tracer.trace("a"):
            pass
        tracer.disable()
        with tracer.trace("b"):
            pass
        assert [s.name for s in tracer.roots] == ["a"]


class TestTree:
    def test_nesting_builds_parent_child(self):
        tracer = Tracer(enabled=True)
        with tracer.trace("serve.ingest", events=7):
            with tracer.trace("serve.commit"):
                pass
            with tracer.trace("serve.maintainer"):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "serve.ingest"
        assert root.attrs == {"events": 7}
        assert [c.name for c in root.children] == ["serve.commit",
                                                   "serve.maintainer"]

    def test_durations_from_injected_clock(self):
        tracer = Tracer(enabled=True, clock=fake_clock())
        with tracer.trace("outer"):      # enter t=1
            with tracer.trace("inner"):  # enter t=2, exit t=3
                pass
        # outer: enter 1, exit 4
        root = tracer.roots[0]
        assert root.duration_s == 3.0
        assert root.children[0].duration_s == 1.0

    def test_walk_preorder(self):
        tracer = Tracer(enabled=True)
        with tracer.trace("a"):
            with tracer.trace("b"):
                with tracer.trace("c"):
                    pass
            with tracer.trace("d"):
                pass
        walked = [(d, s.name) for d, s in tracer.roots[0].walk()]
        assert walked == [(0, "a"), (1, "b"), (2, "c"), (1, "d")]

    def test_set_annotate_and_error_attr(self):
        tracer = Tracer(enabled=True)
        try:
            with tracer.trace("risky") as span:
                span.set(step=3)
                tracer.annotate(deep="yes")
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        root = tracer.roots[0]
        assert root.attrs == {"step": 3, "deep": "yes",
                              "error": "RuntimeError"}

    def test_bounded_roots(self):
        tracer = Tracer(enabled=True, max_roots=4)
        for i in range(10):
            with tracer.trace(f"s{i}"):
                pass
        assert [s.name for s in tracer.roots] == ["s6", "s7", "s8", "s9"]

    def test_clear_drops_roots(self):
        tracer = Tracer(enabled=True)
        with tracer.trace("a"):
            pass
        tracer.clear()
        assert not tracer.roots

    def test_current_tracks_stack(self):
        tracer = Tracer(enabled=True)
        assert tracer.current is None
        with tracer.trace("a") as a:
            assert tracer.current is a
        assert tracer.current is None

    def test_to_dict_nested(self):
        tracer = Tracer(enabled=True)
        with tracer.trace("a", k=1):
            with tracer.trace("b"):
                pass
        d = tracer.roots[0].to_dict()
        assert d["name"] == "a"
        assert d["attrs"] == {"k": 1}
        assert d["children"][0]["name"] == "b"


class TestRegistryFold:
    def test_finished_spans_fold_into_counters(self):
        reg = MetricsRegistry()
        tracer = Tracer(enabled=True, registry=reg, clock=fake_clock())
        with tracer.trace("serve.query"):
            pass
        with tracer.trace("serve.query"):
            pass
        assert reg.value("span_calls_total", span="serve.query") == 2.0
        assert reg.value("span_seconds_total", span="serve.query") == 2.0

    def test_children_fold_too(self):
        reg = MetricsRegistry()
        tracer = Tracer(enabled=True, registry=reg)
        with tracer.trace("outer"):
            with tracer.trace("inner"):
                pass
        assert reg.value("span_calls_total", span="inner") == 1.0


class TestPropagation:
    def test_ids_node_prefixed_and_parented(self):
        tracer = Tracer(enabled=True, node="main")
        with tracer.trace("outer") as outer:
            with tracer.trace("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        assert outer.span_id == "main:1"
        assert outer.trace_id == outer.span_id  # self-rooted
        assert outer.parent_id is None

    def test_current_context_gates(self):
        tracer = Tracer(enabled=True)
        assert tracer.current_context() is None  # no open span
        with tracer.trace("a") as a:
            assert tracer.current_context() == (a.trace_id, a.span_id)
        assert tracer.current_context() is None
        assert Tracer(enabled=False).current_context() is None

    def test_remote_parent_adopts_callers_trace(self):
        router = Tracer(enabled=True, node="main")
        worker = Tracer(enabled=True, node="worker0")
        with router.trace("exec.rpc") as rpc:
            ctx = router.current_context()
        with worker.trace("worker.rpc", parent=ctx):
            pass
        shipped = worker.roots[0]
        assert shipped.trace_id == rpc.trace_id
        assert shipped.parent_id == rpc.span_id
        assert shipped.span_id == "worker0:1"

    def test_wire_round_trip_exact(self):
        tracer = Tracer(enabled=True, clock=fake_clock())
        with tracer.trace("worker.rpc", method="refresh"):
            with tracer.trace("worker.refresh"):
                pass
        wire = tracer.roots[0].to_wire()
        import json
        json.dumps(wire)  # plain data: must survive any codec
        from repro.obs import Span
        back = Span.from_wire(wire)
        assert back.to_wire() == wire
        assert back.name == "worker.rpc"
        assert back.attrs == {"method": "refresh"}
        assert back.duration_s == tracer.roots[0].duration_s
        assert back.children[0].name == "worker.refresh"

    def test_graft_attaches_under_named_parent(self):
        router = Tracer(enabled=True, node="main")
        worker = Tracer(enabled=True, node="worker0")
        with router.trace("serve.ingest"):
            with router.trace("exec.rpc"):
                ctx = router.current_context()
        with worker.trace("worker.rpc", parent=ctx):
            pass
        assert router.graft(worker.drain_finished()) == 1
        rpc = router.roots[0].children[0]
        assert rpc.name == "exec.rpc"
        assert [c.name for c in rpc.children] == ["worker.rpc"]
        assert not worker.roots  # drained

    def test_graft_orphan_kept_as_root(self):
        router = Tracer(enabled=True)
        wire = {"name": "worker.rpc", "trace_id": "main:9",
                "span_id": "worker0:1", "parent_id": "main:9"}
        assert router.graft([wire]) == 1  # parent evicted: keep anyway
        assert [s.name for s in router.roots] == ["worker.rpc"]

    def test_grafted_spans_do_not_fold_into_counters(self):
        reg = MetricsRegistry()
        router = Tracer(enabled=True, registry=reg)
        with router.trace("exec.rpc"):
            ctx = router.current_context()
        worker = Tracer(enabled=True, node="worker0")
        with worker.trace("worker.rpc", parent=ctx):
            pass
        router.graft(worker.drain_finished())
        # the worker's own registry already counted it; grafting again
        # here would double-count on harvest
        assert reg.value("span_calls_total", span="worker.rpc") == 0.0

    def test_chained_graft_indexes_new_spans(self):
        """A grafted span becomes a graft target itself: a second
        harvest's spans can parent under a first harvest's."""
        router = Tracer(enabled=True)
        with router.trace("exec.rpc"):
            ctx = router.current_context()
        worker = Tracer(enabled=True, node="worker0")
        with worker.trace("worker.rpc", parent=ctx) as w:
            wctx = (w.trace_id, w.span_id)
        router.graft(worker.drain_finished())
        late = Tracer(enabled=True, node="worker0")
        late._seq = 10
        with late.trace("worker.flush", parent=wctx):
            pass
        router.graft(late.drain_finished())
        rpc = router.roots[0]
        assert rpc.children[0].children[0].name == "worker.flush"


class TestTelemetry:
    def test_bundle_shares_registry(self):
        tel = Telemetry(tracing=True)
        with tel.trace("serve.ingest"):
            pass
        assert tel.stage_seconds().keys() == {"serve.ingest"}
        assert tel.tracer.registry is tel.registry

    def test_tracing_off_by_default(self):
        tel = Telemetry()
        assert tel.trace("x") is NULL_SPAN
        assert tel.stage_seconds() == {}
