"""Metrics registry: counters, gauges, histograms, labeled series."""

import math

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5.0

    def test_negative_inc_rejected(self):
        c = Counter()
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_nan_inc_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(float("nan"))

    def test_set_to_is_monotonic(self):
        c = Counter()
        c.set_to(10)
        c.set_to(7)     # stale sync: never moves backwards
        assert c.value == 10.0
        c.set_to(12)
        assert c.value == 12.0


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value == 6.0

    def test_nan_set_rejected(self):
        with pytest.raises(ValueError):
            Gauge().set(float("nan"))


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("serve_x_total") is reg.counter("serve_x_total")

    def test_labeled_series_are_distinct(self):
        reg = MetricsRegistry()
        a = reg.counter("shard_q_total", shard="0")
        b = reg.counter("shard_q_total", shard="1")
        assert a is not b
        a.inc(3)
        assert reg.value("shard_q_total", shard="0") == 3.0
        assert reg.value("shard_q_total", shard="1") == 0.0

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.gauge("g", shard="1", model="cdgcn")
        b = reg.gauge("g", model="cdgcn", shard="1")
        assert a is b

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_invalid_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name!")

    def test_invalid_label_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("ok_total", **{"bad-label": "x"})

    def test_attach_external_histogram(self):
        reg = MetricsRegistry()
        h = Histogram()
        assert reg.attach("lat_ms", h) is h
        assert reg.get("lat_ms") is h
        # re-attach (a recovered owner re-homing its tracker) replaces
        h2 = Histogram()
        reg.attach("lat_ms", h2)
        assert reg.get("lat_ms") is h2

    def test_attach_rejects_non_metric(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.attach("x", object())

    def test_value_of_missing_series_is_zero(self):
        assert MetricsRegistry().value("nope") == 0.0

    def test_families_sorted_and_complete(self):
        reg = MetricsRegistry()
        reg.counter("b_total").inc()
        reg.gauge("a")
        names = [name for name, _, _, _ in reg.families()]
        assert names == ["a", "b_total"]

    def test_snapshot_json_friendly(self):
        import json
        reg = MetricsRegistry()
        reg.counter("c_total", "help text").inc(2)
        reg.histogram("h").observe(1.0)
        snap = reg.snapshot()
        assert snap["c_total"]["series"][0]["value"] == 2.0
        assert snap["h"]["series"][0]["value"]["count"] == 1
        json.dumps(snap)  # must not raise


class TestHistogram:
    def test_exact_below_reservoir(self):
        h = Histogram(reservoir_size=100)
        for v in range(10):
            h.observe(float(v))
        assert h.count == 10
        assert h.sum == 45.0
        assert h.percentile(0) == 0.0
        assert h.percentile(100) == 9.0

    def test_non_finite_rejected(self):
        h = Histogram()
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                h.observe(bad)
        assert h.count == 0

    def test_empty_percentile_is_nan(self):
        assert math.isnan(Histogram().percentile(50))
        assert math.isnan(Histogram().mean)

    def test_bad_reservoir_size_rejected(self):
        with pytest.raises(ValueError):
            Histogram(reservoir_size=0)
