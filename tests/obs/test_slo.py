"""SLO engine: quantile and ratio targets, burn rates, dashboard."""

import math

import pytest

from repro.obs import (MetricsRegistry, SloEngine, Telemetry,
                       render_dashboard)


def engine(window=5):
    reg = MetricsRegistry()
    return reg, SloEngine(reg, window=window)


class TestQuantileTarget:
    def test_met_target(self):
        reg, slo = engine()
        slo.quantile("p99-latency", "serve_latency_ms", q=99.0,
                     threshold=10.0)
        h = reg.histogram("serve_latency_ms")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        (status,) = slo.evaluate()
        assert status.ok and status.label == "ok"
        assert status.value == pytest.approx(h.p99)
        assert status.burn == 0.0  # nothing over threshold

    def test_violated_target_and_burn(self):
        reg, slo = engine()
        slo.quantile("p50-latency", "serve_latency_ms", q=50.0,
                     threshold=5.0)
        h = reg.histogram("serve_latency_ms")
        for v in (1.0, 9.0, 9.0, 9.0):
            h.observe(v)
        (status,) = slo.evaluate()
        assert not status.ok and status.label == "VIOLATED"
        # 3/4 samples over threshold against a 50% budget: 1.5x burn
        assert status.burn == pytest.approx(0.75 / 0.5)
        assert "serve_latency_ms" in status.detail

    def test_no_data_is_ok(self):
        reg, slo = engine()
        slo.quantile("p99", "serve_latency_ms", threshold=1.0)
        (status,) = slo.evaluate()  # series does not exist yet
        assert status.ok and math.isnan(status.value)
        assert status.detail == "no data"
        reg.histogram("serve_latency_ms")  # exists but empty
        (status,) = slo.evaluate()
        assert status.ok and math.isnan(status.value)

    def test_labeled_series(self):
        reg, slo = engine()
        slo.quantile("shard1-p99", "exec_rpc_latency_ms", threshold=1.0,
                     labels={"shard": "1"})
        reg.histogram("exec_rpc_latency_ms", shard="0").observe(99.0)
        (status,) = slo.evaluate()
        assert status.ok  # wrong shard's spike is invisible
        reg.histogram("exec_rpc_latency_ms", shard="1").observe(99.0)
        (status,) = slo.evaluate()
        assert not status.ok

    def test_bad_quantile_rejected(self):
        _, slo = engine()
        with pytest.raises(ValueError):
            slo.quantile("x", "m", q=100.0, threshold=1.0)


class TestRatioTarget:
    def test_ratio_within_threshold(self):
        reg, slo = engine()
        slo.ratio("shed-rate", "serve_queries_shed_total",
                  "serve_queries_submitted_total", threshold=0.1)
        reg.counter("serve_queries_submitted_total").inc(100)
        reg.counter("serve_queries_shed_total").inc(5)
        slo.evaluate()  # first tick seeds the window
        reg.counter("serve_queries_submitted_total").inc(100)
        reg.counter("serve_queries_shed_total").inc(5)
        (status,) = slo.evaluate()
        assert status.ok
        assert status.value == pytest.approx(0.05)
        assert status.burn == pytest.approx(0.5)

    def test_no_traffic_is_ok(self):
        _, slo = engine()
        slo.ratio("shed-rate", "bad_total", "ok_total", threshold=0.01)
        (status,) = slo.evaluate()
        assert status.ok and math.isnan(status.value)
        assert "no window traffic" in status.detail

    def test_burst_leaves_the_window(self):
        """A violation stops being one once the bad burst scrolls out
        of the rolling window — the SLO judges recent traffic."""
        reg, slo = engine(window=3)
        slo.ratio("shed-rate", "serve_queries_shed_total",
                  "serve_queries_submitted_total", threshold=0.1)
        bad = reg.counter("serve_queries_shed_total")
        total = reg.counter("serve_queries_submitted_total")
        total.inc(10)
        slo.evaluate()
        bad.inc(10)        # tick 2: 100% shed burst
        total.inc(10)
        (status,) = slo.evaluate()
        assert not status.ok and status.value == pytest.approx(1.0)
        for _ in range(4):  # clean ticks push the burst out
            total.inc(10)
            (status,) = slo.evaluate()
        assert status.ok and status.value == 0.0

    def test_negative_threshold_rejected(self):
        _, slo = engine()
        with pytest.raises(ValueError):
            slo.ratio("x", "a_total", "b_total", threshold=-0.1)


class TestEngine:
    def test_chaining_and_len(self):
        reg, slo = engine()
        assert slo.quantile("a", "m", threshold=1.0) \
                  .ratio("b", "x_total", "y_total", threshold=0.1) is slo
        assert len(slo) == 2
        assert len(slo.evaluate()) == 2

    def test_healthy_all_targets(self):
        reg, slo = engine()
        slo.quantile("lat", "serve_latency_ms", q=50.0, threshold=5.0)
        assert slo.healthy()  # no data: healthy
        reg.histogram("serve_latency_ms").observe(100.0)
        assert not slo.healthy()

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            SloEngine(MetricsRegistry(), window=0)


class TestDashboard:
    def test_empty_registry_renders_title_only(self):
        tel = Telemetry()
        out = render_dashboard(tel, title="empty cluster")
        assert out.startswith("== empty cluster ==")
        assert "worker" not in out
        assert "slo" not in out

    def test_sections_appear_with_backing_series(self):
        tel = Telemetry()
        reg = tel.registry
        reg.counter("serve_queries_submitted_total").inc(10)
        reg.counter("serve_queries_completed_total").inc(9)
        h = reg.histogram("serve_latency_ms")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        reg.counter("exec_rpc_roundtrips_total", shard="0").inc(4)
        reg.gauge("worker_busy_seconds", worker="0").set(0.5)
        reg.counter("shard_halo_rows_total").inc(12)
        reg.counter("shard_halo_bytes_total").inc(2048)
        reg.counter("span_seconds_total", span="serve.ingest").inc(0.25)

        slo = SloEngine(reg, window=5)
        slo.quantile("p99", "serve_latency_ms", threshold=100.0)
        out = render_dashboard(tel, slo=slo, title="t")

        assert "queries  10 submitted / 9 completed" in out
        assert "latency ms  p50" in out
        assert "worker" in out and "busy_s" in out  # per-worker table
        assert "halo rows 12" in out
        assert "[ok]" in out and "p99" in out
        assert "spans    serve.ingest 0.250s" in out

    def test_rendering_is_pure(self):
        tel = Telemetry()
        tel.registry.counter("serve_queries_submitted_total").inc(3)
        first = render_dashboard(tel)
        assert render_dashboard(tel) == first
