"""Registry federation: delta harvests and lossless merges.

These are the invariants the router's cluster registry leans on: a
worker's ``harvest()`` ships only what changed, ``merge()`` folds it in
losslessly on count/sum, redelivery cannot double-count, and the
harvester's labels are authoritative on collision.
"""

import math

from repro.obs import MetricsRegistry


def worker_registry(source="worker0") -> MetricsRegistry:
    reg = MetricsRegistry(source=source)
    reg.counter("worker_rows_recomputed_total", "Rows recomputed").inc(100)
    reg.gauge("worker_busy_seconds").set(1.5)
    h = reg.histogram("worker_step_ms")
    for v in (1.0, 2.0, 3.0, 4.0):
        h.observe(v)
    return reg


class TestHarvest:
    def test_first_harvest_ships_everything(self):
        harvest = worker_registry().harvest()
        assert harvest["source"] == "worker0"
        assert harvest["seq"] == 1
        fams = harvest["families"]
        assert fams["worker_rows_recomputed_total"]["series"][0]["value"] \
            == 100.0
        assert fams["worker_busy_seconds"]["series"][0]["value"] == 1.5
        hist = fams["worker_step_ms"]["series"][0]
        assert hist["count"] == 4 and hist["sum"] == 10.0
        assert sorted(hist["samples"]) == [1.0, 2.0, 3.0, 4.0]

    def test_unchanged_registry_harvests_empty(self):
        reg = worker_registry()
        reg.harvest()
        second = reg.harvest()
        assert second["families"] == {}
        assert second["seq"] == 2  # seq still advances

    def test_deltas_only_since_last_harvest(self):
        reg = worker_registry()
        reg.harvest()
        reg.counter("worker_rows_recomputed_total").inc(7)
        reg.histogram("worker_step_ms").observe(9.0)
        delta = reg.harvest()["families"]
        assert delta["worker_rows_recomputed_total"]["series"][0]["value"] \
            == 7.0
        hist = delta["worker_step_ms"]["series"][0]
        assert hist["count"] == 1 and hist["sum"] == 9.0
        assert hist["samples"] == [9.0]
        assert "worker_busy_seconds" not in delta  # gauge unchanged

    def test_gauge_emitted_on_first_harvest_even_at_zero(self):
        reg = MetricsRegistry(source="w")
        reg.gauge("worker_queue_depth")  # never set: value 0.0
        fams = reg.harvest()["families"]
        assert fams["worker_queue_depth"]["series"][0]["value"] == 0.0
        assert reg.harvest()["families"] == {}


class TestMerge:
    def test_merge_relabels_and_counts_series(self):
        agg = MetricsRegistry()
        updated = agg.merge(worker_registry().harvest(),
                            labels={"worker": "0"})
        assert updated == 3
        assert agg.value("worker_rows_recomputed_total",
                         worker="0") == 100.0
        hist = agg.get("worker_step_ms", worker="0")
        assert hist.count == 4 and hist.sum == 10.0

    def test_redelivered_harvest_is_a_noop(self):
        agg = MetricsRegistry()
        harvest = worker_registry().harvest()
        assert agg.merge(harvest, labels={"worker": "0"}) == 3
        # at-least-once delivery: the retry must not double-count
        assert agg.merge(harvest, labels={"worker": "0"}) == 0
        assert agg.value("worker_rows_recomputed_total",
                         worker="0") == 100.0

    def test_same_harvest_to_distinct_labels_both_apply(self):
        # dedup is per (source, merge labels): two logical workers that
        # happen to share a source string stay independent
        agg = MetricsRegistry()
        harvest = worker_registry().harvest()
        assert agg.merge(harvest, labels={"worker": "0"}) == 3
        assert agg.merge(harvest, labels={"worker": "1"}) == 3

    def test_stale_seq_rejected(self):
        reg = worker_registry()
        first = reg.harvest()
        reg.counter("worker_rows_recomputed_total").inc(1)
        second = reg.harvest()
        agg = MetricsRegistry()
        agg.merge(second, labels={"worker": "0"})
        assert agg.merge(first, labels={"worker": "0"}) == 0

    def test_merge_labels_win_on_collision(self):
        reg = MetricsRegistry(source="w")
        reg.counter("c_total", worker="LIAR", verb="refresh").inc(5)
        agg = MetricsRegistry()
        agg.merge(reg.harvest(), labels={"worker": "3"})
        # the harvester is the authority on worker identity; the
        # non-colliding label survives
        assert agg.value("c_total", worker="3", verb="refresh") == 5.0
        assert agg.get("c_total", worker="LIAR", verb="refresh") is None

    def test_sourceless_harvest_always_applies(self):
        reg = MetricsRegistry()  # source=None: no dedup envelope
        reg.counter("c_total").inc(2)
        agg = MetricsRegistry()
        h = reg.harvest()
        assert agg.merge(h) == 1
        assert agg.merge(h) == 1  # caller owns idempotence
        assert agg.value("c_total") == 4.0


class TestMergeAlgebra:
    def test_incremental_merge_equals_one_shot(self):
        """merge(h1); merge(h2) == merge of a single harvest taken at
        the end — counters and histogram count/sum are associative."""
        stepwise_src = worker_registry()
        oneshot_src = worker_registry()
        agg_step = MetricsRegistry()
        agg_once = MetricsRegistry()

        agg_step.merge(stepwise_src.harvest(), labels={"worker": "0"})
        for reg in (stepwise_src, oneshot_src):
            reg.counter("worker_rows_recomputed_total").inc(11)
            reg.gauge("worker_busy_seconds").set(2.25)
            reg.histogram("worker_step_ms").observe(8.0)
        agg_step.merge(stepwise_src.harvest(), labels={"worker": "0"})
        agg_once.merge(oneshot_src.harvest(), labels={"worker": "0"})

        for agg in (agg_step, agg_once):
            assert agg.value("worker_rows_recomputed_total",
                             worker="0") == 111.0
            assert agg.get("worker_busy_seconds", worker="0").value == 2.25
            h = agg.get("worker_step_ms", worker="0")
            assert h.count == 5 and h.sum == 18.0
        assert sorted(agg_step.get("worker_step_ms", worker="0")._samples) \
            == sorted(agg_once.get("worker_step_ms", worker="0")._samples)

    def test_merge_order_does_not_change_totals(self):
        a = MetricsRegistry(source="w0")
        a.counter("c_total").inc(3)
        b = MetricsRegistry(source="w1")
        b.counter("c_total").inc(4)
        ha, hb = a.harvest(), b.harvest()

        ab = MetricsRegistry()
        ab.merge(ha, labels={"worker": "0"})
        ab.merge(hb, labels={"worker": "1"})
        ba = MetricsRegistry()
        ba.merge(hb, labels={"worker": "1"})
        ba.merge(ha, labels={"worker": "0"})
        for agg in (ab, ba):
            assert agg.value("c_total", worker="0") == 3.0
            assert agg.value("c_total", worker="1") == 4.0

    def test_histogram_count_sum_exact_under_truncation(self):
        """Push far past the reservoir: the sample set is a bounded
        estimate, but merged count/sum must equal the true stream."""
        reg = MetricsRegistry(source="w")
        hist = reg.histogram("h_ms", reservoir_size=16)
        agg = MetricsRegistry()
        expected_count, expected_sum = 0, 0.0
        for chunk in range(5):
            for i in range(100):
                v = float(chunk * 100 + i)
                hist.observe(v)
                expected_count += 1
                expected_sum += v
            agg.merge(reg.harvest(), labels={"worker": "0"})
        merged = agg.get("h_ms", worker="0")
        assert merged.count == expected_count == 500
        assert merged.sum == expected_sum
        assert math.isclose(merged.mean, expected_sum / expected_count)
        # the reservoir never exceeds its bound and only holds real
        # observations from the stream
        assert merged.sampled <= 16
        assert all(0.0 <= v < 500.0 for v in merged._samples)

    def test_merged_reservoir_respects_source_size(self):
        reg = MetricsRegistry(source="w")
        h = reg.histogram("h_ms", reservoir_size=8)
        for v in range(50):
            h.observe(float(v))
        agg = MetricsRegistry()
        agg.merge(reg.harvest(), labels={"worker": "0"})
        assert agg.get("h_ms", worker="0").reservoir_size == 8
