"""Exporters: Prometheus text, JSONL events, human-readable dumps."""

import io
import json

from repro.obs import (JsonlSink, MetricsRegistry, Telemetry, Tracer,
                       metrics_events, prometheus_text, render_metrics,
                       render_span_tree, span_events)


def small_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("serve_queries_total", "Queries answered").inc(42)
    reg.counter("shard_halo_bytes_total", shard="0").inc(1024)
    reg.counter("shard_halo_bytes_total", shard="1").inc(2048)
    reg.gauge("serve_queue_depth").set(3)
    h = reg.histogram("serve_latency_ms")
    for v in (1.0, 2.0, 3.0, 4.0):
        h.observe(v)
    return reg


class TestPrometheus:
    def test_help_type_and_samples(self):
        text = prometheus_text(small_registry())
        assert "# HELP serve_queries_total Queries answered" in text
        assert "# TYPE serve_queries_total counter" in text
        assert "serve_queries_total 42" in text
        assert 'shard_halo_bytes_total{shard="0"} 1024' in text
        assert 'shard_halo_bytes_total{shard="1"} 2048' in text
        assert "serve_queue_depth 3" in text

    def test_histogram_as_summary(self):
        text = prometheus_text(small_registry())
        assert "# TYPE serve_latency_ms summary" in text
        assert 'serve_latency_ms{quantile="0.5"} 2.5' in text
        assert "serve_latency_ms_sum 10" in text
        assert "serve_latency_ms_count 4" in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("c_total", path='a"b\\c\nd').inc()
        text = prometheus_text(reg)
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_empty_registry(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_empty_histogram_emits_no_quantile_lines(self):
        """Regression: an empty histogram used to export
        ``quantile="0.5"} nan`` lines, which strict exposition-format
        parsers reject.  Quantiles are suppressed until the first
        observation; _sum/_count always export."""
        reg = MetricsRegistry()
        reg.histogram("serve_latency_ms", "Latency")
        text = prometheus_text(reg)
        assert "quantile=" not in text
        assert "nan" not in text.lower()
        assert "serve_latency_ms_sum 0" in text
        assert "serve_latency_ms_count 0" in text
        # first observation turns the quantile lines on
        reg.histogram("serve_latency_ms").observe(2.0)
        text = prometheus_text(reg)
        assert 'serve_latency_ms{quantile="0.5"} 2' in text

    def test_mixed_empty_and_live_series(self):
        """Suppression is per-series: a live labeled sibling keeps its
        quantiles while the empty one exports only _sum/_count."""
        reg = MetricsRegistry()
        reg.histogram("exec_rpc_latency_ms", shard="0")
        reg.histogram("exec_rpc_latency_ms", shard="1").observe(3.0)
        text = prometheus_text(reg)
        assert 'exec_rpc_latency_ms{quantile="0.5",shard="1"}' in text \
            or 'exec_rpc_latency_ms{shard="1",quantile="0.5"}' in text
        assert 'shard="0",quantile=' not in text
        assert 'quantile="0.5",shard="0"' not in text
        assert 'exec_rpc_latency_ms_count{shard="0"} 0' in text


class TestJsonl:
    def test_metrics_events_shape(self):
        events = metrics_events(small_registry())
        by_name = {}
        for e in events:
            by_name.setdefault(e["name"], []).append(e)
        assert by_name["serve_queries_total"][0]["value"] == 42.0
        assert len(by_name["shard_halo_bytes_total"]) == 2
        hist = by_name["serve_latency_ms"][0]
        assert hist["count"] == 4 and hist["sum"] == 10.0

    def test_span_events_nested(self):
        tracer = Tracer(enabled=True)
        with tracer.trace("a", k=1):
            with tracer.trace("b"):
                pass
        events = span_events(tracer)
        assert len(events) == 1
        assert events[0]["type"] == "span"
        assert events[0]["children"][0]["name"] == "b"

    def test_sink_writes_valid_json_lines(self):
        buf = io.StringIO()
        with JsonlSink(buf) as sink:
            sink.emit({"type": "metric", "value": 1.5})
            sink.emit_many([{"a": 1}, {"b": 2}])
        lines = buf.getvalue().strip().splitlines()
        assert len(lines) == 3
        for line in lines:
            json.loads(line)

    def test_sink_nan_becomes_null(self):
        buf = io.StringIO()
        JsonlSink(buf).emit({"v": float("nan"),
                             "nested": [float("inf"), 2.0]})
        parsed = json.loads(buf.getvalue())
        assert parsed == {"v": None, "nested": [None, 2.0]}

    def test_sink_path_append(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with JsonlSink(path) as sink:
            sink.emit({"n": 1})
        with JsonlSink(path) as sink:
            sink.emit({"n": 2})
        lines = open(path).read().strip().splitlines()
        assert [json.loads(l)["n"] for l in lines] == [1, 2]

    def test_telemetry_export_jsonl_counts(self):
        tel = Telemetry(tracing=True)
        tel.counter("c_total").inc()
        with tel.trace("s"):
            pass
        buf = io.StringIO()
        # c_total + span_seconds + span_calls + 1 span tree
        assert tel.export_jsonl(buf) == 4
        assert tel.export_jsonl(io.StringIO(), spans=False) == 3


class TestRender:
    def test_span_tree_indents(self):
        tracer = Tracer(enabled=True)
        with tracer.trace("serve.ingest", events=9):
            with tracer.trace("serve.commit"):
                pass
        out = render_span_tree(tracer)
        lines = out.splitlines()
        assert lines[0].startswith("serve.ingest")
        assert "events=9" in lines[0]
        assert lines[1].startswith("  serve.commit")

    def test_metrics_table_lists_everything(self):
        out = render_metrics(small_registry())
        assert "serve_queries_total" in out
        assert 'shard_halo_bytes_total{shard="1"}' in out
        assert "count=4" in out
